//! Offline shim for the `rand` crate: the `RngCore`/`Rng`/`SeedableRng`
//! traits and uniform range sampling over the types this workspace draws
//! (`f64` ranges for the turbulence generator).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1), affinely mapped onto the range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Affine rounding can land exactly on `end`; clamp back into [start, end).
        if v >= self.end {
            self.start.max(prev_down(self.end))
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide = (f64::from(self.start)..f64::from(self.end)).sample_single(rng) as f32;
        if wide >= self.end {
            self.start
        } else {
            wide
        }
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        // Rejection sampling over the largest multiple of `span` below 2^64.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample_single(rng) as usize
    }
}

fn prev_down(x: f64) -> f64 {
    // Largest float strictly below a finite positive-or-negative x.
    if x == 0.0 {
        -f64::MIN_POSITIVE
    } else {
        f64::from_bits(if x > 0.0 {
            x.to_bits() - 1
        } else {
            x.to_bits() + 1
        })
    }
}

/// Convenience sampling methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Raw seed material (e.g. `[u8; 32]`).
    type Seed;

    /// Builds from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a 64-bit seed, expanded to full seed material.
    fn seed_from_u64(state: u64) -> Self;
}

/// Re-exports matching `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Default generator: splitmix64 (fast, decent equidistribution).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            state: u64::from_le_bytes(seed),
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self { state }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn u64_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(10u64..15) as usize - 10] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values should appear: {seen:?}"
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
