//! Offline shim for the `criterion` crate: a minimal wall-clock bench
//! harness with criterion's API shape. Each benchmark runs a short warm-up,
//! then a fixed number of timed samples, and prints mean/min time per
//! iteration (plus throughput when configured). No statistical analysis,
//! plots, or baseline comparison — enough to run `cargo bench` and compare
//! numbers by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing context handed to bench closures.
pub struct Bencher {
    samples: u32,
    elapsed: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, repeating it enough to get stable per-sample times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run once, then size the per-sample iteration count so one
        // sample takes roughly 10ms (bounded to keep total time sane).
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark (criterion default is 100; the shim
    /// divides by 10 since it does no statistics).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Annotates benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim keeps its own timing budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: (self.sample_size / 10).max(3),
            elapsed: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        if b.elapsed.is_empty() {
            println!("{}/{:<32} (no samples)", self.name, id.id);
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / b.iters_per_sample as f64;
        let mean = b.elapsed.iter().map(per_iter).sum::<f64>() / b.elapsed.len() as f64;
        let min = b.elapsed.iter().map(per_iter).fold(f64::INFINITY, f64::min);
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / mean / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<32} mean {}  min {}{}",
            self.name,
            id.id,
            fmt_time(mean),
            fmt_time(min),
            thr
        );
        self.criterion.benchmarks_run += 1;
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.3} s ")
    }
}

/// Top-level bench harness state.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: u64,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function(BenchmarkId::from_parameter("bench"), f);
        self
    }
}

/// Prevents the optimiser from discarding a value (criterion API).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into a runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (ignores criterion CLI flags beyond
/// `--bench`/`--test` markers cargo passes).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip timing there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(10);
            g.throughput(Throughput::Elements(4));
            g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("sum_n", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("warm").id, "warm");
    }
}
