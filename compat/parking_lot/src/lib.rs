//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! Matches the parking_lot API surface this workspace uses: non-poisoning
//! `Mutex` (a panicked holder does not poison the lock for everyone else)
//! and a `Condvar` that waits on a `&mut MutexGuard`.

use std::sync::PoisonError;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it
/// out (std's wait consumes the guard) and put the re-acquired one back.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let held = guard.inner.take().expect("guard present");
        let reacquired = self.0.wait(held).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// lock while waiting.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let held = guard.inner.take().expect("guard present");
        let (reacquired, result) = self
            .0
            .wait_timeout(held, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must not be poisoned");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(3);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 4);
    }
}
