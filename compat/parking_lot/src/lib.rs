//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! Matches the parking_lot API surface this workspace uses: non-poisoning
//! `Mutex` (a panicked holder does not poison the lock for everyone else)
//! and a `Condvar` that waits on a `&mut MutexGuard`.
//!
//! Debug builds additionally carry a dynamic lock-order tracker (see
//! [`lock_order`]): when enabled it maintains a per-thread stack of held
//! locks and a global acquisition-order graph, and panics the moment an
//! acquisition would close a cycle — turning a would-be deadlock that
//! hangs a test into an immediate failure naming both locks. The static
//! complement is tdb-lint's `lock-graph` rule.
//!
//! Every primitive is additionally instrumented with *model-checker
//! yield points* (see [`model`]): when the `tdb-check` deterministic
//! scheduler has marked the calling thread as a virtual thread, lock
//! acquisition, release, condvar waits/notifies and [`AtomicCell`]
//! operations route through the installed [`model::Hooks`] so the
//! checker controls every interleaving. Outside a model run the cost is
//! one relaxed atomic load per operation.

use std::sync::PoisonError;

/// Model-checker instrumentation seam.
///
/// `tdb-check` installs a process-global [`Hooks`] implementation once;
/// the hooks decide per-thread whether they are active (only the
/// checker's virtual threads are). When active, blocking is *virtual*:
/// the primitive asks the hooks for the operation, the hooks park the
/// virtual thread inside the checker's scheduler until the operation is
/// granted, and only then does the shim touch the underlying `std`
/// primitive (which is guaranteed uncontended among virtual threads at
/// that point). Condvar waits never touch the `std` condvar at all —
/// parking, wakeup and timeout are entirely scheduler decisions, which
/// is what makes lost notifications and timeout races explorable.
pub mod model {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    /// The checker-side implementation of every yield point. Object
    /// identities are the primitive's address (stable for its lifetime).
    pub trait Hooks: Sync {
        /// Whether the calling thread is a checker-managed virtual
        /// thread. All other hook methods are only called when true.
        fn active(&self) -> bool;
        /// Blocks virtually until the mutex at `m` is granted.
        fn mutex_lock(&self, m: usize);
        /// Releases the mutex at `m` (called after the `std` guard drop).
        fn mutex_unlock(&self, m: usize);
        /// Blocks virtually until the rwlock at `l` grants shared
        /// (`write = false`) or exclusive (`write = true`) access.
        fn rw_lock(&self, l: usize, write: bool);
        /// Releases a shared or exclusive grant on the rwlock at `l`.
        fn rw_unlock(&self, l: usize, write: bool);
        /// Parks on the condvar at `cv`, releasing the (already
        /// `std`-released) mutex at `m`; returns once notified — or, for
        /// `timed` waits, once the scheduler chose the timeout path —
        /// and the mutex has been re-granted. Returns whether the wait
        /// timed out.
        fn condvar_wait(&self, cv: usize, m: usize, timed: bool) -> bool;
        /// Wakes one (`all = false`) or every (`all = true`) waiter of
        /// the condvar at `cv`. A notify with no waiters is lost,
        /// exactly like the real primitive.
        fn notify(&self, cv: usize, all: bool);
        /// Yield point before an [`super::AtomicCell`] operation.
        fn atomic_op(&self, cell: usize);
    }

    static INSTALLED: AtomicBool = AtomicBool::new(false);
    static HOOKS: OnceLock<&'static dyn Hooks> = OnceLock::new();

    /// Installs the process-global hooks (first caller wins; installing
    /// is one-way). Idempotent for the same checker singleton.
    pub fn install(hooks: &'static dyn Hooks) {
        let _ = HOOKS.set(hooks);
        INSTALLED.store(true, Ordering::Release);
    }

    /// The installed hooks, when the calling thread is a virtual thread.
    #[inline]
    pub(crate) fn active_hooks() -> Option<&'static dyn Hooks> {
        if !INSTALLED.load(Ordering::Acquire) {
            return None;
        }
        let h = *HOOKS.get()?;
        if h.active() {
            Some(h)
        } else {
            None
        }
    }

    /// A primitive's model identity: its data address.
    #[inline]
    pub(crate) fn addr<T: ?Sized>(p: *const T) -> usize {
        p.cast::<u8>() as usize
    }
}

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU64, Ordering};

/// Dynamic lock-order inversion detection (debug builds only).
///
/// Off by default; enabled for the whole process by the `TDB_LOCK_ORDER`
/// environment variable (any value but `0`) or programmatically via
/// [`force_enable`]. Every tracked acquisition records `held → acquired`
/// edges in a global order graph; an acquisition whose reverse path
/// already exists panics with both lock ids before blocking, so the
/// inversion surfaces even when the other thread never arrives.
#[cfg(debug_assertions)]
pub mod lock_order {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex as StdMutex, Once, OnceLock, PoisonError};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static INIT: Once = Once::new();

    /// Whether tracking is active for this process.
    pub fn enabled() -> bool {
        INIT.call_once(|| {
            if std::env::var_os("TDB_LOCK_ORDER").is_some_and(|v| v != "0") {
                ENABLED.store(true, Ordering::Relaxed);
            }
        });
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns tracking on regardless of the environment (test hook).
    pub fn force_enable() {
        INIT.call_once(|| {});
        ENABLED.store(true, Ordering::Relaxed);
    }

    thread_local! {
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// `held → acquired-later` edges observed so far, process-wide.
    fn graph() -> &'static StdMutex<HashMap<u64, Vec<u64>>> {
        static GRAPH: OnceLock<StdMutex<HashMap<u64, Vec<u64>>>> = OnceLock::new();
        GRAPH.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    fn reaches(g: &HashMap<u64, Vec<u64>>, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for &next in g.get(&n).into_iter().flatten() {
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Called before blocking on lock `id`: panics on a re-entrant
    /// acquisition or an order inversion, then records the new edges.
    pub(crate) fn check_acquire(id: u64) {
        HELD.with(|held| {
            let held = held.borrow();
            if held.contains(&id) {
                panic!("lock-order: recursive acquisition of lock #{id} on one thread");
            }
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in held.iter() {
                if reaches(&g, id, h) {
                    panic!(
                        "lock-order inversion: acquiring lock #{id} while holding \
                         lock #{h}, but #{h} is elsewhere acquired while #{id} is \
                         held — consistent global order required"
                    );
                }
            }
            for &h in held.iter() {
                let out = g.entry(h).or_default();
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        });
    }

    /// Called once lock `id` is held.
    pub(crate) fn acquired(id: u64) {
        HELD.with(|held| held.borrow_mut().push(id));
    }

    /// Called when the guard of lock `id` releases (drop or condvar wait).
    pub(crate) fn released(id: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == id) {
                held.remove(pos);
            }
        });
    }

    /// Number of locks the calling thread currently holds (test hook).
    pub fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(debug_assertions)]
static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    /// Unique id for the order tracker, assigned lazily on first lock
    /// (0 = not yet assigned) so `new` stays `const`.
    #[cfg(debug_assertions)]
    order_id: AtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            order_id: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(h) = model::active_hooks() {
            h.mutex_lock(model::addr(self as *const Self));
            // granted by the scheduler: the std mutex below is free of
            // virtual-thread holders, so this cannot park out of band
            return MutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                order_id: 0,
                model: true,
            };
        }
        let order_id = self.tracked_id();
        #[cfg(debug_assertions)]
        if order_id != 0 {
            lock_order::check_acquire(order_id);
        }
        let guard = MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            order_id,
            model: false,
        };
        #[cfg(debug_assertions)]
        if order_id != 0 {
            lock_order::acquired(order_id);
        }
        guard
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// This mutex's tracker id (assigned on first use), or 0 when the
    /// tracker is off.
    #[cfg(debug_assertions)]
    fn tracked_id(&self) -> u64 {
        if !lock_order::enabled() {
            return 0;
        }
        let id = self.order_id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .order_id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    #[cfg(not(debug_assertions))]
    fn tracked_id(&self) -> u64 {
        0
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it
/// out (std's wait consumes the guard) and put the re-acquired one back.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    /// Back-reference to the owning mutex so a virtualized
    /// [`Condvar::wait`] can re-acquire it after parking.
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Tracker id of the owning mutex (0 = untracked).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    order_id: u64,
    /// Whether this guard was granted by the model scheduler (its drop
    /// must report the release back to the hooks).
    model: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            // release the std lock before telling the scheduler, so the
            // next granted virtual thread never contends on it
            self.inner = None;
            if let Some(h) = model::active_hooks() {
                h.mutex_unlock(model::addr(self.lock as *const Mutex<T>));
            }
            return;
        }
        #[cfg(debug_assertions)]
        if self.order_id != 0 {
            lock_order::released(self.order_id);
        }
    }
}

/// Reader-writer lock without poisoning.
///
/// Not wired into the lock-order tracker: shared-mode acquisitions are
/// legitimately held concurrently (and briefly) across threads, which
/// the exclusive-lock order graph would misreport as inversions. Keep
/// critical sections short and never nest another lock under a guard.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model_id = if let Some(h) = model::active_hooks() {
            let id = model::addr(self as *const Self);
            h.rw_lock(id, false);
            id
        } else {
            0
        };
        RwLockReadGuard {
            inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
            model_id,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model_id = if let Some(h) = model::active_hooks() {
            let id = model::addr(self as *const Self);
            h.rw_lock(id, true);
            id
        } else {
            0
        };
        RwLockWriteGuard {
            inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            model_id,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    /// Model identity of the owning lock (0 = not a model grant).
    model_id: usize,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.model_id != 0 {
            self.inner = None;
            if let Some(h) = model::active_hooks() {
                h.rw_unlock(self.model_id, false);
            }
        }
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    /// Model identity of the owning lock (0 = not a model grant).
    model_id: usize,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.model_id != 0 {
            self.inner = None;
            if let Some(h) = model::active_hooks() {
                h.rw_unlock(self.model_id, true);
            }
        }
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.model {
            if let Some(h) = model::active_hooks() {
                // virtual wait: the std condvar is never involved. Drop
                // the std lock, park in the scheduler until a notify
                // re-granted the mutex, then re-take the (uncontended)
                // std lock.
                guard.inner = None;
                h.condvar_wait(
                    model::addr(self as *const Self),
                    model::addr(guard.lock as *const Mutex<T>),
                    false,
                );
                guard.inner = Some(
                    guard
                        .lock
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
                return;
            }
        }
        let held = guard.inner.take().expect("guard present");
        // the wait releases the lock: the held stack must not show it as
        // held while parked, and the re-acquisition re-checks ordering
        #[cfg(debug_assertions)]
        if guard.order_id != 0 {
            lock_order::released(guard.order_id);
        }
        let reacquired = self.0.wait(held).unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        if guard.order_id != 0 {
            lock_order::check_acquire(guard.order_id);
            lock_order::acquired(guard.order_id);
        }
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// lock while waiting.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        if guard.model {
            if let Some(h) = model::active_hooks() {
                // timed virtual wait: whether the timeout "fires" is a
                // scheduler decision, not a clock — both outcomes are
                // explorable states. The duration itself is irrelevant.
                guard.inner = None;
                let timed_out = h.condvar_wait(
                    model::addr(self as *const Self),
                    model::addr(guard.lock as *const Mutex<T>),
                    true,
                );
                guard.inner = Some(
                    guard
                        .lock
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
                return WaitTimeoutResult(timed_out);
            }
        }
        let held = guard.inner.take().expect("guard present");
        #[cfg(debug_assertions)]
        if guard.order_id != 0 {
            lock_order::released(guard.order_id);
        }
        let (reacquired, result) = self
            .0
            .wait_timeout(held, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        if guard.order_id != 0 {
            lock_order::check_acquire(guard.order_id);
            lock_order::acquired(guard.order_id);
        }
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let Some(h) = model::active_hooks() {
            h.notify(model::addr(self as *const Self), false);
            return;
        }
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some(h) = model::active_hooks() {
            h.notify(model::addr(self as *const Self), true);
            return;
        }
        self.0.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A lock-free-looking cell for hot flags and counters, modeled after
/// `crossbeam::atomic::AtomicCell` but instrumented as a model-checker
/// yield point: under `tdb-check`, every operation is a scheduling
/// decision, which is what makes non-atomic check-then-act sequences
/// (`load` … `store`) explorable as distinct interleavings. Each method
/// is itself one atomic step.
#[derive(Debug, Default)]
pub struct AtomicCell<T> {
    value: std::sync::Mutex<T>,
}

impl<T: Copy> AtomicCell<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            value: std::sync::Mutex::new(value),
        }
    }

    /// Yield point: under the checker this parks until the scheduler
    /// grants the step; outside it is one relaxed atomic load.
    #[inline]
    fn step(&self) {
        if let Some(h) = model::active_hooks() {
            h.atomic_op(model::addr(self as *const Self));
        }
    }

    fn cell(&self) -> std::sync::MutexGuard<'_, T> {
        self.value.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads the value.
    pub fn load(&self) -> T {
        self.step();
        *self.cell()
    }

    /// Overwrites the value.
    pub fn store(&self, value: T) {
        self.step();
        *self.cell() = value;
    }

    /// Replaces the value, returning the previous one.
    pub fn swap(&self, value: T) -> T {
        self.step();
        let mut cell = self.cell();
        std::mem::replace(&mut *cell, value)
    }

    /// Applies `f` to the value as one atomic step, returning the
    /// previous value.
    pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
        self.step();
        let mut cell = self.cell();
        let prev = *cell;
        *cell = f(prev);
        prev
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Copy + PartialEq> AtomicCell<T> {
    /// Stores `new` iff the value equals `current`, as one atomic step.
    /// Returns the previous value as `Ok` on success, `Err` on mismatch.
    pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T> {
        self.step();
        let mut cell = self.cell();
        let prev = *cell;
        if prev == current {
            *cell = new;
            Ok(prev)
        } else {
            Err(prev)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must not be poisoned");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn atomic_cell_single_steps() {
        let c = AtomicCell::new(1u32);
        assert_eq!(c.load(), 1);
        c.store(2);
        assert_eq!(c.swap(3), 2);
        assert_eq!(c.update(|v| v + 1), 3);
        assert_eq!(c.compare_exchange(4, 9), Ok(4));
        assert_eq!(c.compare_exchange(4, 9), Err(9));
        assert_eq!(c.into_inner(), 9);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(3);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_reads_share_and_writes_exclude() {
        let l = Arc::new(RwLock::new(1));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (1, 1));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        // a panicked writer must not poison the lock
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 2);
    }

    #[cfg(debug_assertions)]
    mod tracker {
        use super::super::*;
        use std::sync::Arc;

        #[test]
        fn inversion_panics_and_consistent_order_does_not() {
            lock_order::force_enable();
            let a = Arc::new(Mutex::new(0u8));
            let b = Arc::new(Mutex::new(0u8));
            // consistent order on another thread: a then b
            {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                std::thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
                .join()
                .unwrap();
            }
            // same order again is fine
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // reverse order must panic before blocking
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let r = std::thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            })
            .join();
            let err = r.expect_err("inversion must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("lock-order inversion"), "{msg}");
        }

        #[test]
        fn recursive_acquisition_panics() {
            lock_order::force_enable();
            let m = Arc::new(Mutex::new(0u8));
            let m2 = Arc::clone(&m);
            let r = std::thread::spawn(move || {
                let _g1 = m2.lock();
                let _g2 = m2.lock();
            })
            .join();
            assert!(r.is_err(), "self-deadlock must panic, not hang");
        }

        #[test]
        fn condvar_wait_balances_held_stack() {
            lock_order::force_enable();
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let waiter = std::thread::spawn(move || {
                let (lock, cv) = &*pair2;
                let mut ready = lock.lock();
                while !*ready {
                    assert_eq!(lock_order::held_count(), 1);
                    cv.wait(&mut ready);
                }
                assert_eq!(lock_order::held_count(), 1);
                drop(ready);
                assert_eq!(lock_order::held_count(), 0);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            {
                let (lock, cv) = &*pair;
                *lock.lock() = true;
                cv.notify_all();
            }
            waiter.join().unwrap();
        }
    }
}
