//! Offline shim for the `rand_chacha` crate: a genuine 8-round ChaCha
//! keystream generator implementing the rand shim's traits. Deterministic
//! per seed with high-quality output; not guaranteed bit-compatible with
//! upstream `rand_chacha` (callers here only rely on determinism and
//! statistical quality).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit output words drawn from the keystream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means exhausted.
    pos: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: counter alone separates blocks per key.
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        // Expand 64 seed bits to a 256-bit key with splitmix64.
        let mut seed = [0u8; 32];
        let mut s = state;
        for chunk in seed.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_doubles_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn quarter_round_matches_rfc7539_vector() {
        // RFC 7539 §2.1.1 test vector for one quarter round.
        let mut st = [0u32; 16];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }
}
