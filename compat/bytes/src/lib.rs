//! Offline shim for the `bytes` crate.
//!
//! `Bytes` is a cheaply cloneable view into shared immutable storage,
//! `BytesMut` a growable buffer that freezes into `Bytes`, and the
//! `Buf`/`BufMut` traits provide the big-endian / little-endian accessors
//! the block codec relies on. Only the surface this workspace uses is
//! implemented.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable, shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies a slice into owned storage.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same storage (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice out of bounds: {lo}..{hi} of {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &**self)
    }
}

/// Growable byte buffer that can freeze into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into immutable shared storage.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes as a slice.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize) {
        self.take_bytes(cnt);
    }

    /// Next byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Next 4 bytes, big-endian.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Next 8 bytes, big-endian.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Next 4 bytes, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Next f32, little-endian.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Next f32, big-endian.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let start = self.start;
        self.start += n;
        &self.data[start..start + n]
    }
}

/// Write-side cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends 4 bytes, big-endian.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends 8 bytes, big-endian.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends 4 bytes, little-endian.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends an f32, little-endian.
    fn put_f32_le(&mut self, n: f32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends an f32, big-endian.
    fn put_f32(&mut self, n: f32) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_endianness() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        let mut cur = frozen.clone();
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert!(!cur.has_remaining());
        assert_eq!(frozen.len(), 17);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&*s2, &[3, 4]);
    }

    #[test]
    fn buf_on_plain_slice() {
        let data = [0u8, 0, 0, 42, 9];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u32(), 42);
        assert_eq!(cur.remaining(), 1);
        assert_eq!(cur.get_u8(), 9);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32();
    }
}
