//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic random tester: each `proptest!` test runs its body for
//! `ProptestConfig::cases` inputs drawn from the argument strategies, with
//! the generator seeded from the test's module path and case index so runs
//! are reproducible. No shrinking or failure persistence — a failing case
//! panics via the `prop_assert*` macros with the offending values visible
//! through the standard assertion message.

pub mod test_runner {
    /// Per-test configuration, set via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic generator (splitmix64) seeded per test and case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test identifier and case index (FNV-1a over the id).
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            self.next_u64() % bound
        }

        /// Uniform draw from `[lo, hi]` (inclusive), via i128 to avoid overflow.
        pub fn in_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo + 1) as u128;
            lo + (u128::from(self.next_u64()) % span) as i128
        }

        /// Uniform float in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases into a cheaply cloneable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.sample(rng))
        }

        /// Recursive strategy: up to `depth` levels of `recurse` wrapped
        /// around this leaf strategy, mixing leaves in at every level so
        /// generated trees vary in shape. `desired_size`/`expected_branch`
        /// are accepted for API compatibility and unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                let l = leaf.clone();
                strat = BoxedStrategy::from_fn(move |rng| {
                    if rng.below(3) == 0 {
                        l.sample(rng)
                    } else {
                        branch.sample(rng)
                    }
                });
            }
            strat
        }
    }

    /// Cloneable type-erased strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a sampling closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            Self { f: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between strategies (the `prop_oneof!` macro's output).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Delegate so `&S` works wherever a strategy is expected.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    rng.in_inclusive(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range");
                    rng.in_inclusive(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    /// Regex-subset strategies on `&str` patterns: a single char-class atom
    /// (`[...]` with ranges and escapes, or `\PC` for any non-control char)
    /// followed by an optional `{lo,hi}` repetition count.
    impl Strategy for str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// Characters `\PC` (non-control) draws from: printable ASCII plus a few
    /// multi-byte code points to exercise UTF-8 handling.
    const NON_CONTROL_EXTRA: &[char] = &['é', 'π', 'ω', '中', '😀', '\u{00a0}'];

    pub(crate) fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i;
        let pool: Vec<char> = if chars.first() == Some(&'\\')
            && chars.get(1) == Some(&'P')
            && chars.get(2) == Some(&'C')
        {
            i = 3;
            let mut p: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
            p.extend_from_slice(NON_CONTROL_EXTRA);
            p
        } else if chars.first() == Some(&'[') {
            i = 1;
            let mut p = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                // `a-z` range (a `-` not followed by `]`)
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
                    let hi = chars[i + 2];
                    for u in c as u32..=hi as u32 {
                        p.extend(char::from_u32(u));
                    }
                    i += 3;
                } else {
                    p.push(c);
                    i += 1;
                }
            }
            assert!(
                chars.get(i) == Some(&']'),
                "unterminated char class: {pattern:?}"
            );
            i += 1;
            p
        } else {
            panic!("unsupported pattern in proptest shim: {pattern:?}");
        };
        assert!(!pool.is_empty(), "empty char class: {pattern:?}");

        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let rest: String = chars[i + 1..].iter().collect();
            let body = rest.split('}').next().expect("closing brace");
            let (a, b) = body.split_once(',').unwrap_or((body, body));
            (
                a.parse::<usize>().expect("repeat lower bound"),
                b.parse::<usize>().expect("repeat upper bound"),
            )
        } else {
            (1, 1)
        };

        let count = rng.in_inclusive(lo as i128, hi as i128) as usize;
        (0..count)
            .map(|_| pool[rng.below(pool.len() as u64) as usize])
            .collect()
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values spread over a wide but non-pathological span.
            ((rng.unit_f64() - 0.5) * 2e12) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.unit_f64() - 0.5) * 2e18
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Self(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// `Vec` strategy with length drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.sizes.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` strategy; draws a target size from `sizes` and inserts
    /// until reached or the element space appears exhausted.
    pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, sizes }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.sizes.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 50 * target + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeMap` strategy; like [`btree_set`] keyed by `keys`.
    pub fn btree_map<K, V>(keys: K, values: V, sizes: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            sizes,
        }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        sizes: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.sizes.sample(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 50 * target + 100 {
                out.insert(self.keys.sample(rng), self.values.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `[T; 3]` strategy sampling `element` three times.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }

    /// Strategy returned by [`uniform3`].
    #[derive(Debug, Clone)]
    pub struct Uniform3<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.element.sample(rng),
                self.element.sample(rng),
                self.element.sample(rng),
            ]
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`, the module alias tests use for
    /// `prop::collection::*` and `prop::array::*`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::sample(&(1u8..=4), &mut rng);
            assert!((1..=4).contains(&w));
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn char_class_patterns() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::regex", 0);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&"\\PC{0,64}", &mut rng);
            assert!(t.chars().count() <= 64);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::coll", 1);
        for _ in 0..50 {
            let v = Strategy::sample(&prop::collection::vec(0u32..100, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::sample(&prop::collection::btree_set(0u64..500, 1..80), &mut rng);
            assert!(!s.is_empty() && s.len() < 80);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_draws_every_argument(x in 0u32..10, mut ys in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(x < 10);
            ys.push(0);
            prop_assert!(ys.len() <= 4, "len {}", ys.len());
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive_compose(v in arb_nested()) {
            prop_assert!(depth(&v) <= 4);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Nested {
        Leaf(bool),
        List(Vec<Nested>),
    }

    fn arb_nested() -> impl Strategy<Value = Nested> {
        let leaf = prop_oneof![
            Just(Nested::Leaf(false)),
            any::<bool>().prop_map(Nested::Leaf)
        ];
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner.clone(), 0..4).prop_map(Nested::List)
        })
    }

    fn depth(n: &Nested) -> usize {
        match n {
            Nested::Leaf(_) => 1,
            Nested::List(xs) => 1 + xs.iter().map(depth).max().unwrap_or(0),
        }
    }
}
