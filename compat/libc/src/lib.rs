//! Offline shim for the `libc` crate: only the items this workspace uses
//! (per-thread CPU clocks and advisory file locks on Linux).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// Linux clock id for the calling thread's consumed CPU time.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// `flock(2)`: acquire an exclusive advisory lock (blocks until granted).
pub const LOCK_EX: c_int = 2;
/// `flock(2)`: release the lock held on the file description.
pub const LOCK_UN: c_int = 8;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn flock(fd: c_int, operation: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_ticks() {
        let mut ts = timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_sec >= 0 && ts.tv_nsec >= 0);
    }
}
