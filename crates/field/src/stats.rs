//! Field statistics: moments, extrema, histograms.
//!
//! The probability density function of a derived field's norm (paper Fig. 2)
//! "can be used by scientists to guide the selection of threshold values";
//! it is computed with the same scan strategy as threshold queries.

use crate::scalar::ScalarField;

/// Streaming summary statistics of a scalar sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    pub count: u64,
    pub mean: f64,
    pub rms: f64,
    pub min: f64,
    pub max: f64,
}

impl FieldStats {
    /// Accumulator with no samples.
    pub fn empty() -> Accumulator {
        Accumulator::default()
    }

    /// Statistics of every point of a field.
    pub fn of(field: &ScalarField) -> FieldStats {
        let mut acc = Self::empty();
        acc.extend(field.as_slice().iter().map(|&v| f64::from(v)));
        acc.finish()
    }
}

/// Mergeable accumulator behind [`FieldStats`] — nodes accumulate locally
/// and the mediator merges.
#[derive(Debug, Clone, Copy)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accumulator {
    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds many samples.
    pub fn extend(&mut self, it: impl IntoIterator<Item = f64>) {
        for v in it {
            self.push(v);
        }
    }

    /// Merges another accumulator (distributive aggregation).
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Final statistics.
    ///
    /// # Panics
    /// Panics when no samples were accumulated.
    pub fn finish(&self) -> FieldStats {
        assert!(self.count > 0, "no samples");
        let n = self.count as f64;
        FieldStats {
            count: self.count,
            mean: self.sum / n,
            rms: (self.sum_sq / n).sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Fixed-width histogram with an unbounded overflow bin, mirroring the
/// paper's Fig. 2 binning (`[0,10) [10,20) … [90,∞)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    origin: f64,
    width: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// `nbins` regular bins of `width` starting at `origin`, plus an
    /// overflow bin; values below `origin` clamp into the first bin.
    pub fn new(origin: f64, width: f64, nbins: usize) -> Self {
        assert!(width > 0.0 && nbins > 0);
        Self {
            origin,
            width,
            counts: vec![0; nbins + 1],
        }
    }

    /// Number of regular bins (excluding overflow).
    pub fn nbins(&self) -> usize {
        self.counts.len() - 1
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, v: f64) {
        let i = ((v - self.origin) / self.width).floor().max(0.0) as usize;
        let i = i.min(self.counts.len() - 1);
        self.counts[i] += 1;
    }

    /// Count in regular bin `i` (or the overflow bin at `i == nbins`).
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All counts, overflow last.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Half-open value range of bin `i`; the overflow bin's end is `+∞`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let lo = self.origin + self.width * i as f64;
        if i + 1 == self.counts.len() {
            (lo, f64::INFINITY)
        } else {
            (lo, lo + self.width)
        }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Replaces the counts wholesale (cache restore); the slice length
    /// must match the binning.
    pub fn set_counts(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.counts.len(), "bin count mismatch");
        self.counts.copy_from_slice(counts);
    }

    /// Merges another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.origin == other.origin
                && self.width == other.width
                && self.counts.len() == other.counts.len(),
            "histogram binning mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stats_of_constant_field() {
        let f = ScalarField::from_fn(4, 4, 4, |_, _, _| 3.0);
        let s = FieldStats::of(&f);
        assert_eq!(s.count, 64);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.rms - 3.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (3.0, 3.0));
    }

    #[test]
    fn rms_of_symmetric_values() {
        let mut acc = FieldStats::empty();
        acc.extend([-2.0, 2.0, -2.0, 2.0]);
        let s = acc.finish();
        assert!((s.mean).abs() < 1e-12);
        assert!((s.rms - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_paper_binning() {
        // Fig. 2 uses [0,10) ... [90, ..) — 9 regular bins + overflow.
        let mut h = Histogram::new(0.0, 10.0, 9);
        for v in [0.0, 9.999, 10.0, 45.0, 89.9, 90.0, 1000.0] {
            h.push(v);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(8), 1);
        assert_eq!(h.count(9), 2); // overflow
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_range(9).1, f64::INFINITY);
    }

    proptest! {
        #[test]
        fn merge_equals_bulk(mut xs in prop::collection::vec(-100.0f64..100.0, 1..200),
                             split in 0usize..200) {
            let split = split.min(xs.len());
            let (a, b) = xs.split_at(split);
            let mut acc_a = FieldStats::empty();
            acc_a.extend(a.iter().copied());
            let mut acc_b = FieldStats::empty();
            acc_b.extend(b.iter().copied());
            acc_a.merge(&acc_b);
            let merged = acc_a.finish();

            let mut bulk = FieldStats::empty();
            bulk.extend(xs.drain(..));
            let bulk = bulk.finish();
            prop_assert_eq!(merged.count, bulk.count);
            prop_assert!((merged.mean - bulk.mean).abs() < 1e-9);
            prop_assert!((merged.rms - bulk.rms).abs() < 1e-9);
            prop_assert_eq!(merged.min, bulk.min);
            prop_assert_eq!(merged.max, bulk.max);
        }

        #[test]
        fn histogram_total_and_merge(xs in prop::collection::vec(-10.0f64..200.0, 0..100)) {
            let mut whole = Histogram::new(0.0, 10.0, 9);
            let mut h1 = Histogram::new(0.0, 10.0, 9);
            let mut h2 = Histogram::new(0.0, 10.0, 9);
            for (i, &v) in xs.iter().enumerate() {
                whole.push(v);
                if i % 2 == 0 { h1.push(v) } else { h2.push(v) }
            }
            h1.merge(&h2);
            prop_assert_eq!(h1, whole.clone());
            prop_assert_eq!(whole.total(), xs.len() as u64);
        }
    }
}
