//! Dense 3-D field containers and grid geometry for ThresholDB.
//!
//! Simulation output lives on a regular three-dimensional spatial grid
//! (with the exception of channel flow, whose `y` axis is stretched —
//! paper §2). This crate provides the in-memory representation of that
//! data:
//!
//! * [`grid::Grid3`] — grid geometry (extents, spacing, periodicity,
//!   optionally stretched `y` coordinates),
//! * [`scalar::ScalarField`] — a dense `f32` array, x-fastest,
//! * [`vector::VectorField`] — planar (structure-of-arrays) multi-component
//!   fields,
//! * [`halo::PaddedScalar`] / [`halo::PaddedVector`] — fields with ghost
//!   layers for kernel computations,
//! * [`stats`] — RMS, extrema and histogram/PDF utilities.

pub mod grid;
pub mod halo;
pub mod scalar;
pub mod stats;
pub mod vector;

pub use grid::{Grid3, Spacing};
pub use halo::{PaddedScalar, PaddedVector};
pub use scalar::ScalarField;
pub use stats::{FieldStats, Histogram};
pub use vector::VectorField;
