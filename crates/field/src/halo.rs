//! Fields with ghost (halo) layers.
//!
//! Kernel computations need "a band of data ... equal to a kernel
//! half-width ... on each of the sides of the box forming the domain of the
//! computation" (paper §4). A padded field owns an interior region plus `h`
//! ghost layers on every side; interior coordinates are addressed with
//! signed indices so that ghost points are `-h .. 0` and `n .. n+h`.

use crate::scalar::ScalarField;
use crate::vector::VectorField;

/// Scalar field with `h` ghost layers on each side of the interior.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddedScalar {
    halo: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    storage: ScalarField,
}

impl PaddedScalar {
    /// Zero-filled padded field with interior `(nx, ny, nz)` and halo `h`.
    pub fn zeros(nx: usize, ny: usize, nz: usize, h: usize) -> Self {
        Self {
            halo: h,
            nx,
            ny,
            nz,
            storage: ScalarField::zeros(nx + 2 * h, ny + 2 * h, nz + 2 * h),
        }
    }

    /// Halo width.
    #[inline]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Interior extents.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Value at signed interior coordinates (ghost region included).
    #[inline]
    pub fn get(&self, x: isize, y: isize, z: isize) -> f32 {
        let h = self.halo as isize;
        debug_assert!(
            x >= -h && y >= -h && z >= -h,
            "index ({x},{y},{z}) below halo"
        );
        self.storage
            .get((x + h) as usize, (y + h) as usize, (z + h) as usize)
    }

    /// One contiguous padded x-row (ghosts included) at signed interior
    /// row coordinates `(y, z)`. The returned slice starts at storage
    /// `x = 0`, i.e. interior `x = -halo`, and spans `nx + 2*halo` points.
    ///
    /// This is the flat-slice entry point for chunked kernels: a stencil
    /// term at offset `o` for the whole interior row is
    /// `&row[(halo as isize + o) as usize..][..nx]`.
    #[inline]
    pub fn padded_row(&self, y: isize, z: isize) -> &[f32] {
        let h = self.halo as isize;
        debug_assert!(y >= -h && z >= -h, "row ({y},{z}) below halo");
        self.storage.row((y + h) as usize, (z + h) as usize)
    }

    /// Sets a value at signed interior coordinates.
    #[inline]
    pub fn set(&mut self, x: isize, y: isize, z: isize, v: f32) {
        let h = self.halo as isize;
        self.storage
            .set((x + h) as usize, (y + h) as usize, (z + h) as usize, v);
    }

    /// Fills the whole padded cube (interior + ghosts) from a function of
    /// *signed interior* coordinates. Used to apply periodic wrapping or
    /// remote halo data.
    pub fn fill(&mut self, mut f: impl FnMut(isize, isize, isize) -> f32) {
        let h = self.halo as isize;
        let (sx, sy, sz) = self.storage.dims();
        for z in 0..sz {
            for y in 0..sy {
                for x in 0..sx {
                    self.storage
                        .set(x, y, z, f(x as isize - h, y as isize - h, z as isize - h));
                }
            }
        }
    }

    /// Copies the interior (ghosts dropped) into a plain field.
    pub fn interior(&self) -> ScalarField {
        let h = self.halo;
        let mut out = ScalarField::zeros(self.nx, self.ny, self.nz);
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    out.set(x, y, z, self.storage.get(x + h, y + h, z + h));
                }
            }
        }
        out
    }
}

/// Vector field with ghost layers; one [`PaddedScalar`] per component.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddedVector<const C: usize> {
    components: [PaddedScalar; C],
}

impl<const C: usize> PaddedVector<C> {
    /// Zero-filled padded vector field.
    pub fn zeros(nx: usize, ny: usize, nz: usize, h: usize) -> Self {
        Self {
            components: std::array::from_fn(|_| PaddedScalar::zeros(nx, ny, nz, h)),
        }
    }

    /// Halo width.
    #[inline]
    pub fn halo(&self) -> usize {
        self.components[0].halo()
    }

    /// Interior extents.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.components[0].dims()
    }

    /// Borrow of component `c`.
    #[inline]
    pub fn comp(&self, c: usize) -> &PaddedScalar {
        &self.components[c]
    }

    /// Mutable borrow of component `c`.
    #[inline]
    pub fn comp_mut(&mut self, c: usize) -> &mut PaddedScalar {
        &mut self.components[c]
    }

    /// Component values at signed interior coordinates.
    #[inline]
    pub fn at(&self, x: isize, y: isize, z: isize) -> [f32; C] {
        std::array::from_fn(|c| self.components[c].get(x, y, z))
    }

    /// Fills all components from a periodic source field. The interior of
    /// the padded field corresponds to `src` restricted to the box with
    /// lower corner `origin`; ghost points wrap around the `src` domain.
    pub fn fill_periodic_from(&mut self, src: &VectorField<C>, origin: [usize; 3]) {
        let (snx, sny, snz) = src.dims();
        let dims = [snx as isize, sny as isize, snz as isize];
        for c in 0..C {
            let comp = src.comp(c);
            self.components[c].fill(|x, y, z| {
                let gx = (origin[0] as isize + x).rem_euclid(dims[0]) as usize;
                let gy = (origin[1] as isize + y).rem_euclid(dims[1]) as usize;
                let gz = (origin[2] as isize + z).rem_euclid(dims[2]) as usize;
                comp.get(gx, gy, gz)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::VectorField3;

    #[test]
    fn signed_indexing_reaches_ghosts() {
        let mut p = PaddedScalar::zeros(4, 4, 4, 2);
        p.set(-2, 0, 0, 7.0);
        p.set(5, 3, 3, 9.0);
        assert_eq!(p.get(-2, 0, 0), 7.0);
        assert_eq!(p.get(5, 3, 3), 9.0);
        assert_eq!(p.get(0, 0, 0), 0.0);
    }

    #[test]
    fn interior_drops_ghosts() {
        let mut p = PaddedScalar::zeros(3, 3, 3, 1);
        p.fill(|x, y, z| (x * 100 + y * 10 + z) as f32);
        let i = p.interior();
        assert_eq!(i.dims(), (3, 3, 3));
        assert_eq!(i.get(0, 0, 0), 0.0);
        assert_eq!(i.get(2, 1, 0), 210.0);
    }

    #[test]
    fn periodic_fill_wraps() {
        let fx = ScalarField::from_fn(4, 4, 4, |x, _, _| x as f32);
        let fy = ScalarField::from_fn(4, 4, 4, |_, y, _| y as f32);
        let fz = ScalarField::from_fn(4, 4, 4, |_, _, z| z as f32);
        let v = VectorField3::from_components([fx, fy, fz]);
        let mut p: PaddedVector<3> = PaddedVector::zeros(2, 2, 2, 1);
        p.fill_periodic_from(&v, [0, 0, 0]);
        // ghost at x = -1 wraps to x = 3
        assert_eq!(p.at(-1, 0, 0), [3.0, 0.0, 0.0]);
        // ghost at z = 2 maps straight to z = 2 (still inside src)
        assert_eq!(p.at(0, 0, 2), [0.0, 0.0, 2.0]);
        // interior passthrough
        assert_eq!(p.at(1, 1, 1), [1.0, 1.0, 1.0]);
    }

    #[test]
    fn periodic_fill_with_offset_origin() {
        let fx = ScalarField::from_fn(4, 4, 4, |x, y, z| (x + 10 * y + 100 * z) as f32);
        let v = VectorField::<1>::from_components([fx]);
        let mut p: PaddedVector<1> = PaddedVector::zeros(2, 2, 2, 1);
        p.fill_periodic_from(&v, [3, 0, 0]);
        // interior (0,0,0) = src (3,0,0); interior (1,0,0) wraps to src (0,0,0)
        assert_eq!(p.at(0, 0, 0), [3.0]);
        assert_eq!(p.at(1, 0, 0), [0.0]);
        assert_eq!(p.at(2, 0, 0), [1.0]);
    }
}
