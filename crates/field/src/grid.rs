//! Grid geometry.

/// Spacing of one grid axis.
#[derive(Debug, Clone, PartialEq)]
pub enum Spacing {
    /// Uniform spacing `h` between adjacent nodes.
    Uniform(f64),
    /// Explicit node coordinates (channel-flow `y` axis). Must be strictly
    /// increasing and have one entry per grid node.
    Stretched(Vec<f64>),
}

impl Spacing {
    /// Coordinate of node `i`.
    pub fn coord(&self, i: usize) -> f64 {
        match self {
            Spacing::Uniform(h) => h * i as f64,
            Spacing::Stretched(xs) => xs[i],
        }
    }

    /// Whether the axis is uniformly spaced.
    pub fn is_uniform(&self) -> bool {
        matches!(self, Spacing::Uniform(_))
    }
}

/// Geometry of a simulation grid.
///
/// Extents are in grid points; `periodic` marks axes on which the domain
/// wraps (isotropic and MHD datasets are fully periodic; channel flow has
/// walls in `y`).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub sx: Spacing,
    pub sy: Spacing,
    pub sz: Spacing,
    pub periodic: [bool; 3],
}

impl Grid3 {
    /// Fully periodic cube of edge `n` over a domain of physical size `len`
    /// — the geometry of the isotropic and MHD datasets (domain `2π`).
    pub fn periodic_cube(n: usize, len: f64) -> Self {
        assert!(n > 0 && len > 0.0);
        let h = len / n as f64;
        Self {
            nx: n,
            ny: n,
            nz: n,
            sx: Spacing::Uniform(h),
            sy: Spacing::Uniform(h),
            sz: Spacing::Uniform(h),
            periodic: [true, true, true],
        }
    }

    /// Channel-flow-like grid: periodic in `x`/`z`, wall-bounded stretched
    /// `y` with nodes clustered near the walls (hyperbolic-tangent map onto
    /// `[-1, 1]`).
    pub fn channel(nx: usize, ny: usize, nz: usize, lx: f64, lz: f64, beta: f64) -> Self {
        assert!(nx > 0 && ny > 1 && nz > 0 && beta > 0.0);
        let ys: Vec<f64> = (0..ny)
            .map(|j| {
                let s = 2.0 * j as f64 / (ny - 1) as f64 - 1.0; // [-1, 1]
                (beta * s).tanh() / beta.tanh()
            })
            .collect();
        Self {
            nx,
            ny,
            nz,
            sx: Spacing::Uniform(lx / nx as f64),
            sy: Spacing::Stretched(ys),
            sz: Spacing::Uniform(lz / nz as f64),
            periodic: [true, false, true],
        }
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    /// Extents as a tuple.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Spacing along axis `ax` (0 = x); panics for a stretched axis, which
    /// must be handled through [`Spacing::coord`] instead.
    pub fn uniform_h(&self, ax: usize) -> f64 {
        let s = match ax {
            0 => &self.sx,
            1 => &self.sy,
            2 => &self.sz,
            _ => panic!("axis {ax} out of range"),
        };
        match s {
            Spacing::Uniform(h) => *h,
            Spacing::Stretched(_) => panic!("axis {ax} is stretched"),
        }
    }

    /// Spacing description of axis `ax`.
    pub fn spacing(&self, ax: usize) -> &Spacing {
        match ax {
            0 => &self.sx,
            1 => &self.sy,
            2 => &self.sz,
            _ => panic!("axis {ax} out of range"),
        }
    }

    /// Extent along axis `ax`.
    pub fn extent(&self, ax: usize) -> usize {
        match ax {
            0 => self.nx,
            1 => self.ny,
            2 => self.nz,
            _ => panic!("axis {ax} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_cube_geometry() {
        let g = Grid3::periodic_cube(64, std::f64::consts::TAU);
        assert_eq!(g.num_points(), 64 * 64 * 64);
        assert!(g.periodic.iter().all(|&p| p));
        let h = g.uniform_h(0);
        assert!((h - std::f64::consts::TAU / 64.0).abs() < 1e-12);
        assert!((g.sx.coord(3) - 3.0 * h).abs() < 1e-12);
    }

    #[test]
    fn channel_grid_is_stretched_and_wall_bounded() {
        let g = Grid3::channel(32, 49, 16, 8.0, 3.0, 2.0);
        assert_eq!(g.periodic, [true, false, true]);
        let Spacing::Stretched(ys) = &g.sy else {
            panic!("expected stretched y");
        };
        assert_eq!(ys.len(), 49);
        assert!((ys[0] + 1.0).abs() < 1e-12 && (ys[48] - 1.0).abs() < 1e-12);
        // strictly increasing, clustered near walls
        assert!(ys.windows(2).all(|w| w[1] > w[0]));
        let near_wall = ys[1] - ys[0];
        let mid = ys[25] - ys[24];
        assert!(near_wall < mid);
    }

    #[test]
    #[should_panic(expected = "stretched")]
    fn uniform_h_panics_on_stretched_axis() {
        let g = Grid3::channel(8, 9, 8, 1.0, 1.0, 2.0);
        let _ = g.uniform_h(1);
    }
}
