//! Multi-component fields in planar (structure-of-arrays) layout.

use crate::scalar::ScalarField;
use tdb_zorder::{AtomCoord, Box3, ATOM_POINTS};

/// A field with `C` scalar components stored planar, one [`ScalarField`]
/// per component. Planar layout keeps finite-difference sweeps over a single
/// component cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorField<const C: usize> {
    components: [ScalarField; C],
}

/// Three-component vector field (velocity, magnetic field, vorticity, ...).
pub type VectorField3 = VectorField<3>;

impl<const C: usize> VectorField<C> {
    /// Zero-filled field.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            components: std::array::from_fn(|_| ScalarField::zeros(nx, ny, nz)),
        }
    }

    /// Assembles a field from per-component scalars of identical shape.
    pub fn from_components(components: [ScalarField; C]) -> Self {
        let dims = components[0].dims();
        assert!(
            components.iter().all(|c| c.dims() == dims),
            "component shape mismatch"
        );
        Self { components }
    }

    /// Extents.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.components[0].dims()
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        C
    }

    /// Borrow of component `c`.
    #[inline]
    pub fn comp(&self, c: usize) -> &ScalarField {
        &self.components[c]
    }

    /// Mutable borrow of component `c`.
    #[inline]
    pub fn comp_mut(&mut self, c: usize) -> &mut ScalarField {
        &mut self.components[c]
    }

    /// All components.
    #[inline]
    pub fn components(&self) -> &[ScalarField; C] {
        &self.components
    }

    /// Value of every component at one point.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> [f32; C] {
        std::array::from_fn(|c| self.components[c].get(x, y, z))
    }

    /// Sets every component at one point.
    #[inline]
    pub fn set_at(&mut self, x: usize, y: usize, z: usize, v: [f32; C]) {
        for (c, val) in v.into_iter().enumerate() {
            self.components[c].set(x, y, z, val);
        }
    }

    /// Euclidean norm of the component vector at one point.
    #[inline]
    pub fn norm_at(&self, x: usize, y: usize, z: usize) -> f32 {
        self.at(x, y, z).iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Pointwise Euclidean norm as a scalar field.
    pub fn norm(&self) -> ScalarField {
        let (nx, ny, nz) = self.dims();
        let mut out = ScalarField::zeros(nx, ny, nz);
        {
            let dst = out.as_mut_slice();
            for comp in &self.components {
                for (d, s) in dst.iter_mut().zip(comp.as_slice()) {
                    *d += s * s;
                }
            }
            for d in dst.iter_mut() {
                *d = d.sqrt();
            }
        }
        out
    }

    /// Extracts a sub-box into a new field with origin `b.lo`.
    pub fn extract_box(&self, b: &Box3) -> Self {
        Self {
            components: std::array::from_fn(|c| self.components[c].extract_box(b)),
        }
    }

    /// Extracts one atom as `C` concatenated 512-value component planes
    /// (matching the storage record layout: all of comp 0, then comp 1, ...).
    pub fn extract_atom(&self, atom: AtomCoord) -> Vec<f32> {
        let mut out = Vec::with_capacity(C * ATOM_POINTS);
        for comp in &self.components {
            out.extend_from_slice(&comp.extract_atom(atom));
        }
        out
    }

    /// Inverse of [`VectorField::extract_atom`].
    pub fn insert_atom(&mut self, atom: AtomCoord, payload: &[f32]) {
        assert_eq!(payload.len(), C * ATOM_POINTS, "payload length mismatch");
        for (c, comp) in self.components.iter_mut().enumerate() {
            comp.insert_atom(atom, &payload[c * ATOM_POINTS..(c + 1) * ATOM_POINTS]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VectorField3 {
        let fx = ScalarField::from_fn(8, 8, 8, |x, _, _| x as f32);
        let fy = ScalarField::from_fn(8, 8, 8, |_, y, _| 2.0 * y as f32);
        let fz = ScalarField::from_fn(8, 8, 8, |_, _, z| -(z as f32));
        VectorField::from_components([fx, fy, fz])
    }

    #[test]
    fn at_and_norm() {
        let v = sample();
        assert_eq!(v.at(3, 2, 1), [3.0, 4.0, -1.0]);
        let n = v.norm_at(3, 2, 1);
        assert!((n - (26.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(v.norm().get(3, 2, 1), n);
    }

    #[test]
    fn norm_field_matches_pointwise() {
        let v = sample();
        let n = v.norm();
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    assert!((n.get(x, y, z) - v.norm_at(x, y, z)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn atom_roundtrip_planar_layout() {
        let v = sample();
        let atom = AtomCoord::new(0, 0, 0);
        let payload = v.extract_atom(atom);
        assert_eq!(payload.len(), 3 * ATOM_POINTS);
        // component planes are concatenated
        assert_eq!(payload[1], 1.0); // comp x at (1,0,0)
        assert_eq!(payload[ATOM_POINTS + 8], 2.0); // comp y at (0,1,0)
        let mut w = VectorField3::zeros(8, 8, 8);
        w.insert_atom(atom, &payload);
        assert_eq!(w.at(5, 6, 7), v.at(5, 6, 7));
    }

    #[test]
    #[should_panic(expected = "component shape mismatch")]
    fn from_components_rejects_mixed_shapes() {
        let a = ScalarField::zeros(4, 4, 4);
        let b = ScalarField::zeros(4, 4, 5);
        let _ = VectorField::from_components([a.clone(), a, b]);
    }
}
