//! Dense scalar fields.

use tdb_zorder::{AtomCoord, Box3, ATOM_POINTS, ATOM_WIDTH};

/// A dense 3-D `f32` array with x-fastest (Fortran-like first-axis-fastest)
/// layout: `idx = x + nx * (y + ny * z)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarField {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f32>,
}

impl ScalarField {
    /// Zero-filled field.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Self {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    /// Builds a field from a function of the grid indices.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut s = Self::zeros(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                let row = s.row_index(0, y, z);
                for x in 0..nx {
                    s.data[row + x] = f(x, y, z);
                }
            }
        }
        s
    }

    /// Wraps an existing buffer. `data.len()` must equal `nx*ny*nz`.
    pub fn from_vec(nx: usize, ny: usize, nz: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "buffer length mismatch");
        Self { nx, ny, nz, data }
    }

    /// Extents.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field has zero points (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn row_index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Value at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.row_index(x, y, z)]
    }

    /// Sets the value at `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.row_index(x, y, z);
        self.data[i] = v;
    }

    /// Raw storage, x-fastest.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One contiguous x-row.
    #[inline]
    pub fn row(&self, y: usize, z: usize) -> &[f32] {
        let start = self.row_index(0, y, z);
        &self.data[start..start + self.nx]
    }

    /// Copies the sub-box `b` (grid coordinates, inclusive) into a new
    /// field whose origin is `b.lo`.
    pub fn extract_box(&self, b: &Box3) -> ScalarField {
        assert!(
            (b.hi[0] as usize) < self.nx
                && (b.hi[1] as usize) < self.ny
                && (b.hi[2] as usize) < self.nz,
            "box {b:?} outside field {:?}",
            self.dims()
        );
        let [ex, ey, ez] = b.extent();
        let (ex, ey, ez) = (ex as usize, ey as usize, ez as usize);
        let mut out = ScalarField::zeros(ex, ey, ez);
        for z in 0..ez {
            for y in 0..ey {
                let src =
                    self.row_index(b.lo[0] as usize, b.lo[1] as usize + y, b.lo[2] as usize + z);
                let dst = out.row_index(0, y, z);
                out.data[dst..dst + ex].copy_from_slice(&self.data[src..src + ex]);
            }
        }
        out
    }

    /// Extracts one 8³ atom as a 512-element x-fastest payload.
    ///
    /// The atom must lie fully inside the field (grid extents are multiples
    /// of the atom width in every stored dataset).
    pub fn extract_atom(&self, atom: AtomCoord) -> [f32; ATOM_POINTS] {
        let (ox, oy, oz) = atom.grid_origin();
        let (ox, oy, oz) = (ox as usize, oy as usize, oz as usize);
        assert!(
            ox + ATOM_WIDTH <= self.nx && oy + ATOM_WIDTH <= self.ny && oz + ATOM_WIDTH <= self.nz,
            "atom {atom:?} outside field {:?}",
            self.dims()
        );
        let mut out = [0.0f32; ATOM_POINTS];
        for dz in 0..ATOM_WIDTH {
            for dy in 0..ATOM_WIDTH {
                let src = self.row_index(ox, oy + dy, oz + dz);
                let dst = ATOM_WIDTH * (dy + ATOM_WIDTH * dz);
                out[dst..dst + ATOM_WIDTH].copy_from_slice(&self.data[src..src + ATOM_WIDTH]);
            }
        }
        out
    }

    /// Writes an 8³ atom payload into the field at the atom's position.
    pub fn insert_atom(&mut self, atom: AtomCoord, payload: &[f32]) {
        assert_eq!(payload.len(), ATOM_POINTS);
        let (ox, oy, oz) = atom.grid_origin();
        let (ox, oy, oz) = (ox as usize, oy as usize, oz as usize);
        assert!(
            ox + ATOM_WIDTH <= self.nx && oy + ATOM_WIDTH <= self.ny && oz + ATOM_WIDTH <= self.nz,
            "atom {atom:?} outside field {:?}",
            self.dims()
        );
        for dz in 0..ATOM_WIDTH {
            for dy in 0..ATOM_WIDTH {
                let dst = self.row_index(ox, oy + dy, oz + dz);
                let src = ATOM_WIDTH * (dy + ATOM_WIDTH * dz);
                self.data[dst..dst + ATOM_WIDTH].copy_from_slice(&payload[src..src + ATOM_WIDTH]);
            }
        }
    }

    /// In-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Pointwise combination with another field of identical shape.
    pub fn zip_inplace(&mut self, other: &ScalarField, mut f: impl FnMut(f32, f32) -> f32) {
        assert_eq!(self.dims(), other.dims());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp(nx: usize, ny: usize, nz: usize) -> ScalarField {
        ScalarField::from_fn(nx, ny, nz, |x, y, z| (x + 10 * y + 100 * z) as f32)
    }

    #[test]
    fn layout_is_x_fastest() {
        let f = ramp(4, 3, 2);
        assert_eq!(f.as_slice()[0], 0.0);
        assert_eq!(f.as_slice()[1], 1.0); // x+1
        assert_eq!(f.as_slice()[4], 10.0); // y+1
        assert_eq!(f.as_slice()[12], 100.0); // z+1
        assert_eq!(f.get(3, 2, 1), 123.0);
        assert_eq!(f.row(2, 1), &[120.0, 121.0, 122.0, 123.0]);
    }

    #[test]
    fn extract_box_preserves_values() {
        let f = ramp(8, 8, 8);
        let b = Box3::new([2, 3, 4], [5, 6, 7]);
        let sub = f.extract_box(&b);
        assert_eq!(sub.dims(), (4, 4, 4));
        for (x, y, z) in b.points() {
            let v = sub.get(
                (x - b.lo[0]) as usize,
                (y - b.lo[1]) as usize,
                (z - b.lo[2]) as usize,
            );
            assert_eq!(v, f.get(x as usize, y as usize, z as usize));
        }
    }

    #[test]
    fn atom_roundtrip() {
        let f = ramp(16, 16, 16);
        let atom = AtomCoord::new(1, 0, 1);
        let payload = f.extract_atom(atom);
        let mut g = ScalarField::zeros(16, 16, 16);
        g.insert_atom(atom, &payload);
        for (gx, gy, gz) in atom.grid_points() {
            assert_eq!(
                g.get(gx as usize, gy as usize, gz as usize),
                f.get(gx as usize, gy as usize, gz as usize)
            );
        }
        assert_eq!(g.get(0, 0, 0), 0.0); // untouched elsewhere
    }

    #[test]
    #[should_panic(expected = "outside field")]
    fn extract_atom_checks_bounds() {
        let f = ramp(8, 8, 8);
        let _ = f.extract_atom(AtomCoord::new(1, 0, 0));
    }

    proptest! {
        #[test]
        fn get_set_roundtrip(x in 0usize..6, y in 0usize..5, z in 0usize..4, v in -1e6f32..1e6) {
            let mut f = ScalarField::zeros(6, 5, 4);
            f.set(x, y, z, v);
            prop_assert_eq!(f.get(x, y, z), v);
            prop_assert_eq!(f.as_slice().iter().filter(|&&w| w != 0.0).count(),
                            usize::from(v != 0.0));
        }
    }
}
