//! Multi-version store with snapshot isolation.
//!
//! "All modifications of and queries to the cache are executed within a
//! transaction with snapshot isolation level to avoid dirty-reads or an
//! inconsistent view of the cache ... \[and\] to avoid locking the tables"
//! (paper §4). The cache tables (`cacheInfo`, `cacheData`) live in stores
//! like this one: readers see a frozen snapshot, writers never block
//! readers, and write-write conflicts abort the later committer
//! (first-committer-wins).

use std::collections::BTreeMap;
use std::ops::RangeBounds;
use std::sync::Arc;

use parking_lot::Mutex;

/// Commit failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// Another transaction committed a conflicting write after this
    /// transaction's snapshot was taken.
    WriteConflict,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::WriteConflict => write!(f, "snapshot-isolation write-write conflict"),
        }
    }
}

impl std::error::Error for CommitError {}

#[derive(Debug, Clone)]
struct Version<V> {
    begin: u64,
    end: u64,
    /// `None` is a tombstone.
    value: Option<V>,
}

#[derive(Debug)]
struct Inner<K, V> {
    clock: u64,
    rows: BTreeMap<K, Vec<Version<V>>>,
}

/// A snapshot-isolated multi-version key-value store.
#[derive(Debug, Clone)]
pub struct MvccStore<K, V> {
    inner: Arc<Mutex<Inner<K, V>>>,
}

impl<K: Ord + Clone, V: Clone> Default for MvccStore<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> MvccStore<K, V> {
    /// Empty store at timestamp 0.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                clock: 0,
                rows: BTreeMap::new(),
            })),
        }
    }

    /// Starts a transaction whose reads all observe the current snapshot.
    pub fn begin(&self) -> Txn<K, V> {
        let snapshot = self.inner.lock().clock;
        Txn {
            store: self.clone(),
            snapshot,
            writes: BTreeMap::new(),
        }
    }

    /// Current commit timestamp.
    pub fn now(&self) -> u64 {
        self.inner.lock().clock
    }

    /// Drops versions no longer visible to any snapshot at or after
    /// `horizon`, and rows that are fully dead.
    pub fn gc(&self, horizon: u64) {
        let mut inner = self.inner.lock();
        inner.rows.retain(|_, versions| {
            versions.retain(|v| v.end > horizon);
            versions.iter().any(|v| v.value.is_some())
        });
    }

    /// Number of live rows at the latest snapshot.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        let now = inner.clock;
        inner
            .rows
            .values()
            .filter(|vs| visible(vs, now).is_some())
            .count()
    }

    /// Whether no rows are visible at the latest snapshot.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn visible<V>(versions: &[Version<V>], snapshot: u64) -> Option<&V> {
    versions
        .iter()
        .rev()
        .find(|v| v.begin <= snapshot && snapshot < v.end)
        .and_then(|v| v.value.as_ref())
}

/// An open transaction. Dropping it without `commit` aborts it.
pub struct Txn<K: Ord + Clone, V: Clone> {
    store: MvccStore<K, V>,
    snapshot: u64,
    writes: BTreeMap<K, Option<V>>,
}

impl<K: Ord + Clone, V: Clone> Txn<K, V> {
    /// Snapshot timestamp of this transaction.
    pub fn snapshot(&self) -> u64 {
        self.snapshot
    }

    /// Reads a key: own uncommitted writes first, then the snapshot.
    pub fn get(&self, key: &K) -> Option<V> {
        if let Some(w) = self.writes.get(key) {
            return w.clone();
        }
        let inner = self.store.inner.lock();
        inner
            .rows
            .get(key)
            .and_then(|vs| visible(vs, self.snapshot))
            .cloned()
    }

    /// Snapshot-consistent range scan (own writes merged in).
    pub fn range<R: RangeBounds<K> + Clone>(&self, r: R) -> Vec<(K, V)> {
        let inner = self.store.inner.lock();
        let mut out: BTreeMap<K, V> = inner
            .rows
            .range(r.clone())
            .filter_map(|(k, vs)| visible(vs, self.snapshot).map(|v| (k.clone(), v.clone())))
            .collect();
        for (k, w) in self.writes.range(r) {
            match w {
                Some(v) => {
                    out.insert(k.clone(), v.clone());
                }
                None => {
                    out.remove(k);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Buffers a write.
    pub fn put(&mut self, key: K, value: V) {
        self.writes.insert(key, Some(value));
    }

    /// Buffers a delete.
    pub fn delete(&mut self, key: K) {
        self.writes.insert(key, None);
    }

    /// Atomically publishes all writes, or fails with
    /// [`CommitError::WriteConflict`] if any written key was committed by
    /// another transaction after this snapshot (first-committer-wins).
    pub fn commit(self) -> Result<u64, CommitError> {
        let mut inner = self.store.inner.lock();
        for key in self.writes.keys() {
            if let Some(versions) = inner.rows.get(key) {
                if versions.iter().any(|v| v.begin > self.snapshot) {
                    return Err(CommitError::WriteConflict);
                }
            }
        }
        inner.clock += 1;
        let ts = inner.clock;
        for (key, value) in self.writes {
            let versions = inner.rows.entry(key).or_default();
            if let Some(open) = versions.last_mut() {
                if open.end == u64::MAX {
                    open.end = ts;
                }
            }
            versions.push(Version {
                begin: ts,
                end: u64::MAX,
                value,
            });
        }
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_writes_before_commit() {
        let store: MvccStore<u32, String> = MvccStore::new();
        let mut t = store.begin();
        t.put(1, "a".into());
        assert_eq!(t.get(&1), Some("a".into()));
        // other transactions cannot see it (no dirty reads)
        let t2 = store.begin();
        assert_eq!(t2.get(&1), None);
        t.commit().unwrap();
        // t2's snapshot predates the commit: still invisible
        assert_eq!(t2.get(&1), None);
        // a fresh transaction sees it
        assert_eq!(store.begin().get(&1), Some("a".into()));
    }

    #[test]
    fn snapshot_is_stable_across_concurrent_commits() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut t = store.begin();
        t.put(1, 10);
        t.commit().unwrap();
        let reader = store.begin();
        assert_eq!(reader.get(&1), Some(10));
        let mut writer = store.begin();
        writer.put(1, 20);
        writer.commit().unwrap();
        // reader's view is frozen
        assert_eq!(reader.get(&1), Some(10));
        assert_eq!(store.begin().get(&1), Some(20));
    }

    #[test]
    fn first_committer_wins() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut a = store.begin();
        let mut b = store.begin();
        a.put(7, 1);
        b.put(7, 2);
        a.commit().unwrap();
        assert_eq!(b.commit(), Err(CommitError::WriteConflict));
        assert_eq!(store.begin().get(&7), Some(1));
    }

    #[test]
    fn disjoint_writes_do_not_conflict() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut a = store.begin();
        let mut b = store.begin();
        a.put(1, 1);
        b.put(2, 2);
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn delete_creates_tombstone() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut t = store.begin();
        t.put(1, 5);
        t.commit().unwrap();
        let old = store.begin();
        let mut d = store.begin();
        d.delete(1);
        d.commit().unwrap();
        assert_eq!(store.begin().get(&1), None);
        // older snapshot still sees the value
        assert_eq!(old.get(&1), Some(5));
        assert!(store.is_empty());
    }

    #[test]
    fn range_scan_merges_own_writes() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut seed = store.begin();
        for k in 0..5 {
            seed.put(k, k * 10);
        }
        seed.commit().unwrap();
        let mut t = store.begin();
        t.put(2, 999);
        t.delete(3);
        t.put(10, 100);
        let got = t.range(0..=10);
        assert_eq!(got, vec![(0, 0), (1, 10), (2, 999), (4, 40), (10, 100)]);
    }

    #[test]
    fn range_scan_is_snapshot_consistent() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut a = store.begin();
        a.put(1, 1);
        a.commit().unwrap();
        let reader = store.begin();
        let mut b = store.begin();
        b.put(2, 2);
        b.commit().unwrap();
        assert_eq!(reader.range(0..10), vec![(1, 1)]);
    }

    #[test]
    fn gc_prunes_dead_versions() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        for i in 0..5 {
            let mut t = store.begin();
            t.put(1, i);
            t.commit().unwrap();
        }
        let mut d = store.begin();
        d.delete(1);
        d.commit().unwrap();
        store.gc(store.now());
        assert!(store.is_empty());
        let inner = store.inner.lock();
        assert!(inner.rows.is_empty(), "fully dead rows dropped");
    }

    #[test]
    fn concurrent_commits_from_threads() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut handles = Vec::new();
        for thread in 0..8u32 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                for i in 0..50u32 {
                    let mut t = s.begin();
                    t.put(thread * 1000 + i, i);
                    if t.commit().is_ok() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // disjoint keys: every commit must succeed
        assert_eq!(total, 400);
        assert_eq!(store.len(), 400);
    }

    #[test]
    fn contended_counter_loses_exactly_the_conflicts() {
        let store: MvccStore<u32, u32> = MvccStore::new();
        let mut init = store.begin();
        init.put(0, 0);
        init.commit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for _ in 0..100 {
                    let mut t = s.begin();
                    let v = t.get(&0).unwrap();
                    t.put(0, v + 1);
                    if t.commit().is_ok() {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let wins: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // lost-update anomaly is prevented: final value == committed increments
        assert_eq!(store.begin().get(&0), Some(wins));
    }
}
