//! Device models and per-query I/O accounting.
//!
//! The reproduction runs on one machine, so elapsed I/O time tells us
//! nothing about the paper's cluster. Instead every disk access is recorded
//! against the device it would have hit (a node's HDD arrays, its cache
//! SSD, the LAN, the user's WAN link), and a query's I/O time is *modelled*
//! from the recorded access pattern: per device `ops × latency +
//! bytes / bandwidth`, devices within one session running in parallel
//! (RAID arrays are driven concurrently — paper §5.3), so the session's
//! I/O time is the per-device makespan.

use std::collections::HashMap;

/// Identifies a registered device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// Latency/bandwidth profile of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    pub name: String,
    /// Fixed cost per operation (seek / request round-trip), seconds.
    pub latency_s: f64,
    /// Sustained transfer rate, bytes per second.
    pub bandwidth_bps: f64,
    /// Pass-through stages (controllers, network links): a request's wait
    /// is already accounted on the end device, so these never add to a
    /// serial schedule — they only bound parallel throughput.
    pub pass_through: bool,
}

impl DeviceProfile {
    /// A 4-disk RAID-5 SATA array of the paper's era (§5.1). The
    /// per-request latency is the *effective* cost of one 64 KiB block
    /// read in a clustered z-order scan (seeks amortised by read-ahead):
    /// calibrated so a single-process scan moves ~20-25 MB/s — the rate
    /// the paper's Fig. 8 I/O-only runs imply (≈3 GB per node in ≈140 s).
    pub fn hdd_array() -> Self {
        Self {
            name: "hdd-raid5".into(),
            latency_s: 2.5e-3,
            bandwidth_bps: 300e6,
            pass_through: false,
        }
    }

    /// A SATA SSD holding the cache tables.
    pub fn ssd() -> Self {
        Self {
            name: "ssd".into(),
            latency_s: 120e-6,
            bandwidth_bps: 450e6,
            pass_through: false,
        }
    }

    /// A node's shared disk controller / bus: every byte any array moves
    /// also passes through it, capping aggregate I/O parallelism — the
    /// reason the paper's I/O time stops improving with more processes.
    pub fn node_controller() -> Self {
        Self {
            name: "controller".into(),
            latency_s: 1.25e-3,
            bandwidth_bps: 600e6,
            pass_through: true,
        }
    }

    /// Data-centre LAN between mediator and database nodes.
    pub fn lan() -> Self {
        Self {
            name: "lan".into(),
            latency_s: 0.5e-3,
            bandwidth_bps: 10e9 / 8.0,
            pass_through: true,
        }
    }

    /// The end user's link to the service — JHTDB users are typically on
    /// university networks a few hops from the cluster.
    pub fn user_wan() -> Self {
        Self {
            name: "wan".into(),
            latency_s: 10e-3,
            bandwidth_bps: 100e6 / 8.0,
            pass_through: true,
        }
    }

    /// Modelled time for `ops` operations moving `bytes` bytes.
    pub fn time(&self, ops: u64, bytes: u64) -> f64 {
        ops as f64 * self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Registry of every device in the simulated cluster.
#[derive(Debug, Default, Clone)]
pub struct DeviceRegistry {
    profiles: Vec<DeviceProfile>,
}

impl DeviceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device and returns its id.
    pub fn register(&mut self, profile: DeviceProfile) -> DeviceId {
        self.profiles.push(profile);
        DeviceId(self.profiles.len() as u32 - 1)
    }

    /// Profile of a registered device. An id this registry never issued
    /// (a session merged across registries) resolves to an inert
    /// zero-cost pass-through profile rather than panicking mid-query.
    pub fn profile(&self, id: DeviceId) -> &DeviceProfile {
        static UNKNOWN: DeviceProfile = DeviceProfile {
            name: String::new(),
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
            pass_through: true,
        };
        self.profiles.get(id.0 as usize).unwrap_or(&UNKNOWN)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Per-device access counts recorded during one unit of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Access {
    pub ops: u64,
    pub bytes: u64,
}

/// I/O recorder carried through a query (or one worker's share of it).
#[derive(Debug, Clone, Default)]
pub struct IoSession {
    accesses: HashMap<DeviceId, Access>,
    /// Buffer-pool hits (no device charge).
    pub pool_hits: u64,
    /// Buffer-pool misses (device charged).
    pub pool_misses: u64,
    /// Modelled seconds added by injected faults (latency faults and
    /// retry backoff). Charged serially on top of the device schedule —
    /// a stalled request blocks its issuing process.
    pub injected_delay_s: f64,
}

impl IoSession {
    /// Fresh session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `ops` operations moving `bytes` on `device`.
    pub fn charge(&mut self, device: DeviceId, ops: u64, bytes: u64) {
        let a = self.accesses.entry(device).or_default();
        a.ops += ops;
        a.bytes += bytes;
    }

    /// Merges the accesses of another session (e.g. a finished worker).
    pub fn merge(&mut self, other: &IoSession) {
        for (dev, a) in &other.accesses {
            let e = self.accesses.entry(*dev).or_default();
            e.ops += a.ops;
            e.bytes += a.bytes;
        }
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.injected_delay_s += other.injected_delay_s;
    }

    /// All devices touched, with their accesses (unordered).
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, Access)> + '_ {
        self.accesses.iter().map(|(d, a)| (*d, *a))
    }

    /// Access recorded against one device.
    pub fn access(&self, device: DeviceId) -> Access {
        self.accesses.get(&device).copied().unwrap_or_default()
    }

    /// Total bytes across devices.
    pub fn total_bytes(&self) -> u64 {
        self.accesses.values().map(|a| a.bytes).sum()
    }

    /// Total operations across devices.
    pub fn total_ops(&self) -> u64 {
        self.accesses.values().map(|a| a.ops).sum()
    }

    /// Modelled I/O time: devices run in parallel, so the session time is
    /// the slowest device's schedule.
    pub fn makespan(&self, registry: &DeviceRegistry) -> f64 {
        self.accesses
            .iter()
            .map(|(dev, a)| registry.profile(*dev).time(a.ops, a.bytes))
            .fold(0.0, f64::max)
            + self.injected_delay_s
    }

    /// Modelled time if the devices were driven serially (lower bound on a
    /// single-process scan with no internal parallelism).
    pub fn serial_time(&self, registry: &DeviceRegistry) -> f64 {
        self.accesses
            .iter()
            .map(|(dev, a)| registry.profile(*dev).time(a.ops, a.bytes))
            .sum::<f64>()
            + self.injected_delay_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_time_combines_latency_and_bandwidth() {
        let p = DeviceProfile {
            name: "t".into(),
            latency_s: 0.01,
            bandwidth_bps: 1000.0,
            pass_through: false,
        };
        let t = p.time(3, 5000);
        assert!((t - (0.03 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_serial_is_sum() {
        let mut reg = DeviceRegistry::new();
        let a = reg.register(DeviceProfile {
            name: "a".into(),
            latency_s: 0.0,
            bandwidth_bps: 100.0,
            pass_through: false,
        });
        let b = reg.register(DeviceProfile {
            name: "b".into(),
            latency_s: 0.0,
            bandwidth_bps: 200.0,
            pass_through: false,
        });
        let mut s = IoSession::new();
        s.charge(a, 1, 100); // 1 s
        s.charge(b, 1, 100); // 0.5 s
        assert!((s.makespan(&reg) - 1.0).abs() < 1e-12);
        assert!((s.serial_time(&reg) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut reg = DeviceRegistry::new();
        let d = reg.register(DeviceProfile::ssd());
        let mut s1 = IoSession::new();
        s1.charge(d, 2, 10);
        s1.pool_hits = 1;
        let mut s2 = IoSession::new();
        s2.charge(d, 3, 20);
        s2.pool_misses = 4;
        s1.merge(&s2);
        assert_eq!(s1.access(d), Access { ops: 5, bytes: 30 });
        assert_eq!((s1.pool_hits, s1.pool_misses), (1, 4));
        assert_eq!(s1.total_bytes(), 30);
        assert_eq!(s1.total_ops(), 5);
    }

    #[test]
    fn canned_profiles_are_ordered_sensibly() {
        let hdd = DeviceProfile::hdd_array();
        let ssd = DeviceProfile::ssd();
        let wan = DeviceProfile::user_wan();
        let lan = DeviceProfile::lan();
        assert!(ssd.latency_s < hdd.latency_s);
        assert!(lan.bandwidth_bps > wan.bandwidth_bps);
        // an 8 KiB random read: SSD much faster than HDD array
        assert!(ssd.time(1, 8192) * 10.0 < hdd.time(1, 8192));
    }

    #[test]
    fn empty_session_has_zero_makespan() {
        let reg = DeviceRegistry::new();
        assert_eq!(IoSession::new().makespan(&reg), 0.0);
    }

    #[test]
    fn injected_delay_is_serial_and_merges() {
        let mut reg = DeviceRegistry::new();
        let d = reg.register(DeviceProfile {
            name: "d".into(),
            latency_s: 0.0,
            bandwidth_bps: 100.0,
            pass_through: false,
        });
        let mut s = IoSession::new();
        s.charge(d, 1, 100); // 1 s on the device
        s.injected_delay_s = 0.5;
        assert!((s.makespan(&reg) - 1.5).abs() < 1e-12);
        assert!((s.serial_time(&reg) - 1.5).abs() < 1e-12);
        let mut other = IoSession::new();
        other.injected_delay_s = 0.25;
        s.merge(&other);
        assert!((s.injected_delay_s - 0.75).abs() < 1e-12);
    }
}
