//! Partitioned tables over disk arrays.
//!
//! "The tables storing the data are partitioned spatially along contiguous
//! ranges of the Morton z-curve and the data for each partition reside in
//! one database file" striped over the node's disk arrays (paper §5.1).
//! Ingestion is timestep-major, which matches the clustered key order, so
//! every partition file is a single sorted run.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tdb_compress::CompressionConfig;
use tdb_zorder::ZRange;

use crate::device::{DeviceId, IoSession};
use crate::error::{IoResultExt, StorageError, StorageResult};
use crate::record::{AtomKey, AtomRecord};
use crate::sstable::BlockCache;
use crate::sstable::{PartitionReader, PartitionWriter};

/// Streaming bulk loader for one table. Partitions are defined by
/// contiguous z-ranges; `append_timestep` routes records to partitions.
pub struct TableBuilder {
    name: String,
    ncomp: u8,
    zones: Vec<ZRange>,
    writers: Vec<PartitionWriter>,
    paths: Vec<PathBuf>,
    devices: Vec<DeviceId>,
    next_timestep: u32,
}

impl TableBuilder {
    /// Creates partition files `dir/{name}_part{i}.tdb`, one per z-range,
    /// assigned round-robin to `devices` (the node's disk arrays), with
    /// blocks written under `codec` ([`CompressionConfig::default`] keeps
    /// the seed on-disk format byte for byte).
    pub fn new(
        dir: impl AsRef<Path>,
        name: &str,
        ncomp: u8,
        zones: Vec<ZRange>,
        devices: &[DeviceId],
        codec: CompressionConfig,
    ) -> StorageResult<Self> {
        assert!(!zones.is_empty(), "table needs at least one partition");
        assert!(!devices.is_empty(), "table needs at least one device");
        assert!(
            zones
                .iter()
                .zip(zones.iter().skip(1))
                .all(|(a, b)| a.end < b.start),
            "partition z-ranges must be sorted and disjoint"
        );
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).at_file(dir.display().to_string())?;
        let mut writers = Vec::with_capacity(zones.len());
        let mut paths = Vec::with_capacity(zones.len());
        let mut devs = Vec::with_capacity(zones.len());
        for (i, dev) in devices.iter().cycle().take(zones.len()).enumerate() {
            let path = dir.join(format!("{name}_part{i}.tdb"));
            writers.push(PartitionWriter::create_with(&path, ncomp, codec)?);
            paths.push(path);
            devs.push(*dev);
        }
        Ok(Self {
            name: name.to_string(),
            ncomp,
            zones,
            writers,
            paths,
            devices: devs,
            next_timestep: 0,
        })
    }

    /// Appends one time-step's records (sorted by zindex). Time-steps must
    /// arrive in increasing order — the archive ingest pattern.
    pub fn append_timestep(
        &mut self,
        timestep: u32,
        records: impl IntoIterator<Item = AtomRecord>,
    ) -> StorageResult<()> {
        if timestep < self.next_timestep {
            return Err(StorageError::KeyOrder {
                detail: format!(
                    "timestep {timestep} after {}",
                    self.next_timestep.saturating_sub(1)
                ),
            });
        }
        self.next_timestep = timestep + 1;
        for rec in records {
            if rec.key.timestep != timestep {
                return Err(StorageError::KeyOrder {
                    detail: format!("record {:?} in timestep {timestep} batch", rec.key),
                });
            }
            let zone = self
                .zones
                .partition_point(|z| z.end < rec.key.zindex)
                .min(self.zones.len() - 1);
            match (self.zones.get(zone), self.writers.get_mut(zone)) {
                (Some(z), Some(w)) if z.contains(rec.key.zindex) => w.append(rec)?,
                _ => {
                    return Err(StorageError::KeyOrder {
                        detail: format!("zindex {} outside every partition zone", rec.key.zindex),
                    })
                }
            }
        }
        Ok(())
    }

    /// Finishes every partition and opens the table for reading through
    /// `pool`. `file_id_base` namespaces buffer-pool keys across tables.
    pub fn finish(self, pool: Arc<BlockCache>, file_id_base: u64) -> StorageResult<Table> {
        let mut partitions = Vec::with_capacity(self.writers.len());
        let parts = self
            .writers
            .into_iter()
            .zip(self.paths)
            .zip(self.devices)
            .zip(self.zones);
        for (i, (((w, path), device), zone)) in parts.enumerate() {
            w.finish()?;
            let reader =
                PartitionReader::open(&path, file_id_base + i as u64, device, Arc::clone(&pool))?;
            partitions.push(PartitionHandle { zone, reader });
        }
        Ok(Table {
            name: self.name,
            ncomp: self.ncomp,
            partitions,
        })
    }
}

struct PartitionHandle {
    zone: ZRange,
    reader: PartitionReader,
}

/// A read-only partitioned table.
pub struct Table {
    name: String,
    ncomp: u8,
    partitions: Vec<PartitionHandle>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Component count of the stored field.
    pub fn ncomp(&self) -> u8 {
        self.ncomp
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Records of `timestep` whose zindex falls in any of `zranges`
    /// (sorted, disjoint), in key order.
    pub fn scan(
        &self,
        timestep: u32,
        zranges: &[ZRange],
        session: &mut IoSession,
    ) -> StorageResult<Vec<AtomRecord>> {
        let mut out = Vec::new();
        for zr in zranges {
            for p in &self.partitions {
                if !p.zone.overlaps(zr) {
                    continue;
                }
                let lo = AtomKey::new(timestep, zr.start.max(p.zone.start));
                let hi = AtomKey::new(timestep, zr.end.min(p.zone.end));
                out.extend(p.reader.scan_range(lo, hi, session)?);
            }
        }
        out.sort_unstable_by_key(|r| r.key);
        Ok(out)
    }

    /// Batched point lookups: `zindexes` (sorted, unique) of one timestep
    /// are grouped into contiguous runs, each served by a single
    /// clustered-index range scan — scattered halo atoms therefore pay one
    /// seek per run, not one per atom.
    pub fn get_many(
        &self,
        timestep: u32,
        zindexes: &[u64],
        session: &mut IoSession,
    ) -> StorageResult<Vec<AtomRecord>> {
        debug_assert!(
            zindexes
                .iter()
                .zip(zindexes.iter().skip(1))
                .all(|(a, b)| a < b),
            "sorted unique"
        );
        let mut runs: Vec<ZRange> = Vec::new();
        for &z in zindexes {
            match runs.last_mut() {
                Some(r) if r.end + 1 == z => r.end = z,
                _ => runs.push(ZRange::new(z, z)),
            }
        }
        let mut out = self.scan(timestep, &runs, session)?;
        // a run may cover codes that exist in storage but were not asked
        // for (cannot happen for unit runs, defensive otherwise)
        out.retain(|r| zindexes.binary_search(&r.key.zindex).is_ok());
        Ok(out)
    }

    /// Point lookup of one atom.
    pub fn get(&self, key: AtomKey, session: &mut IoSession) -> StorageResult<Option<AtomRecord>> {
        for p in &self.partitions {
            if p.zone.contains(key.zindex) {
                return p.reader.get(key, session);
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceProfile, DeviceRegistry};
    use tdb_zorder::ATOM_POINTS;

    fn rec(ts: u32, z: u64) -> AtomRecord {
        AtomRecord::new(AtomKey::new(ts, z), 1, vec![z as f32; ATOM_POINTS]).unwrap()
    }

    fn setup(tag: &str, zones: Vec<ZRange>, timesteps: u32) -> (Table, DeviceRegistry) {
        let dir = std::env::temp_dir().join(format!("tdb_table_{tag}_{}", std::process::id()));
        let mut reg = DeviceRegistry::new();
        let devs: Vec<DeviceId> = (0..2)
            .map(|_| reg.register(DeviceProfile::hdd_array()))
            .collect();
        let mut b = TableBuilder::new(
            &dir,
            "velocity",
            1,
            zones.clone(),
            &devs,
            CompressionConfig::default(),
        )
        .unwrap();
        for t in 0..timesteps {
            let recs: Vec<AtomRecord> = zones
                .iter()
                .flat_map(|z| (z.start..=z.end).map(move |zi| rec(t, zi)))
                .collect();
            b.append_timestep(t, recs).unwrap();
        }
        let table = b.finish(Arc::new(BlockCache::new(1 << 22)), 0).unwrap();
        (table, reg)
    }

    #[test]
    fn scan_honours_zranges_and_timestep() {
        let zones = vec![ZRange::new(0, 31), ZRange::new(32, 63)];
        let (table, _) = setup("scan", zones, 3);
        assert_eq!(table.num_partitions(), 2);
        let mut s = IoSession::new();
        let got = table.scan(1, &[ZRange::new(10, 40)], &mut s).unwrap();
        let zs: Vec<u64> = got.iter().map(|r| r.key.zindex).collect();
        assert_eq!(zs, (10..=40).collect::<Vec<_>>());
        assert!(got.iter().all(|r| r.key.timestep == 1));
    }

    #[test]
    fn scan_multiple_ranges_sorted_output() {
        let zones = vec![ZRange::new(0, 63)];
        let (table, _) = setup("multi", zones, 1);
        let mut s = IoSession::new();
        let got = table
            .scan(0, &[ZRange::new(5, 7), ZRange::new(20, 21)], &mut s)
            .unwrap();
        let zs: Vec<u64> = got.iter().map(|r| r.key.zindex).collect();
        assert_eq!(zs, vec![5, 6, 7, 20, 21]);
    }

    #[test]
    fn partitions_charge_different_devices() {
        let zones = vec![ZRange::new(0, 199), ZRange::new(200, 399)];
        let (table, _reg) = setup("devices", zones, 1);
        let mut s = IoSession::new();
        table.scan(0, &[ZRange::new(0, 399)], &mut s).unwrap();
        // two partitions → two devices charged
        assert!(s.access(DeviceId(0)).bytes > 0);
        assert!(s.access(DeviceId(1)).bytes > 0);
    }

    #[test]
    fn get_finds_atom_or_none() {
        let zones = vec![ZRange::new(0, 15)];
        let (table, _) = setup("get", zones, 2);
        let mut s = IoSession::new();
        assert!(table.get(AtomKey::new(1, 7), &mut s).unwrap().is_some());
        assert!(table.get(AtomKey::new(1, 99), &mut s).unwrap().is_none());
        assert!(table.get(AtomKey::new(5, 7), &mut s).unwrap().is_none());
    }

    #[test]
    fn builder_rejects_bad_input() {
        let dir = std::env::temp_dir().join(format!("tdb_table_bad_{}", std::process::id()));
        let mut reg = DeviceRegistry::new();
        let d = reg.register(DeviceProfile::hdd_array());
        let mut b = TableBuilder::new(
            &dir,
            "f",
            1,
            vec![ZRange::new(0, 7)],
            &[d],
            CompressionConfig::default(),
        )
        .unwrap();
        b.append_timestep(1, vec![rec(1, 0)]).unwrap();
        // timestep going backwards
        assert!(b.append_timestep(0, vec![rec(0, 0)]).is_err());
        // record outside any zone
        assert!(b.append_timestep(2, vec![rec(2, 100)]).is_err());
        // record with mismatched timestep
        assert!(b.append_timestep(3, vec![rec(4, 0)]).is_err());
    }
}
