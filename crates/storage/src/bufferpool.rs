//! Shared block cache — the node's buffer pool.
//!
//! "SQL Server also benefits from a larger buffer pool, which reduces the
//! I/O time" (paper §5.3). Blocks read from partition files land here;
//! hits cost no device charge, so the modelled I/O time of a warm scan
//! shrinks exactly the way a real buffer pool would shrink it.
//!
//! The pool is generic over the cached value so callers can cache the
//! *decoded* form of a block (checksum verified and records parsed once,
//! on the miss path) while the eviction budget still tracks the on-disk
//! footprint through [`PoolValue::weight`]. Victim selection is delegated
//! to a pluggable [`EvictionPolicy`] (LRU by default; CLOCK and SIEVE via
//! [`BufferPool::with_policy`]); the byte budget, the oversized-block
//! `len() > 1` admission guard and fault injection are policy-independent.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::device::IoSession;
use crate::error::StorageResult;
use crate::eviction::{EvictionPolicy, EvictionPolicyKind};
use crate::faults::FaultPlan;

/// Cache key: a block within a partition file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    pub file_id: u64,
    pub block_no: u32,
}

/// A value the pool can hold: cheap to clone, with a byte weight for the
/// eviction budget.
pub trait PoolValue: Clone {
    /// Bytes this entry accounts against the pool capacity.
    fn weight(&self) -> usize;
}

impl PoolValue for Bytes {
    fn weight(&self) -> usize {
        self.len()
    }
}

struct PoolInner<V> {
    capacity_bytes: usize,
    used_bytes: usize,
    blocks: HashMap<BlockKey, V>,
    policy: Box<dyn EvictionPolicy>,
}

/// A byte-bounded cache of partition blocks, shared by all worker
/// processes of a node. Loads happen under the pool lock, which also
/// serialises concurrent misses the way a single set of disks would.
pub struct BufferPool<V: PoolValue = Bytes> {
    inner: Mutex<PoolInner<V>>,
    policy_kind: EvictionPolicyKind,
    faults: Option<Arc<FaultPlan>>,
    obs_hits: tdb_obs::Counter,
    obs_misses: tdb_obs::Counter,
    obs_evictions: tdb_obs::Counter,
}

impl<V: PoolValue> BufferPool<V> {
    /// Pool bounded at `capacity_bytes`, evicting LRU.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_faults(capacity_bytes, None)
    }

    /// Pool with an attached fault-injection plan consulted by loaders
    /// (see [`crate::sstable::PartitionReader`]). Pool hits are never
    /// faulted: a cached block needs no device access.
    pub fn with_faults(capacity_bytes: usize, faults: Option<Arc<FaultPlan>>) -> Self {
        Self::with_policy(capacity_bytes, EvictionPolicyKind::default(), faults)
    }

    /// Pool with an explicit eviction policy (and optional fault plan).
    pub fn with_policy(
        capacity_bytes: usize,
        kind: EvictionPolicyKind,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let reg = tdb_obs::global();
        Self {
            inner: Mutex::new(PoolInner {
                capacity_bytes,
                used_bytes: 0,
                blocks: HashMap::new(),
                policy: kind.build(),
            }),
            policy_kind: kind,
            faults,
            obs_hits: reg.counter("bufferpool.hits"),
            obs_misses: reg.counter("bufferpool.misses"),
            obs_evictions: reg.counter("bufferpool.evictions"),
        }
    }

    /// The eviction policy this pool was built with.
    pub fn policy_kind(&self) -> EvictionPolicyKind {
        self.policy_kind
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Returns the cached block or loads it via `load`, charging the miss
    /// to `session` inside `load` (the loader performs the device charge).
    pub fn get_or_load(
        &self,
        key: BlockKey,
        session: &mut IoSession,
        load: impl FnOnce(&mut IoSession) -> StorageResult<V>,
    ) -> StorageResult<V> {
        let mut inner = self.inner.lock();
        if let Some(data) = inner.blocks.get(&key) {
            let data = data.clone();
            inner.policy.on_hit(key);
            session.pool_hits += 1;
            self.obs_hits.inc();
            return Ok(data);
        }
        let data = load(session)?;
        session.pool_misses += 1;
        self.obs_misses.inc();
        inner.used_bytes += data.weight();
        inner.blocks.insert(key, data.clone());
        inner.policy.on_insert(key);
        while inner.used_bytes > inner.capacity_bytes && inner.blocks.len() > 1 {
            let Some(victim) = inner.policy.evict() else {
                break;
            };
            if let Some(evicted) = inner.blocks.remove(&victim) {
                inner.used_bytes -= evicted.weight();
                self.obs_evictions.inc();
            }
        }
        Ok(data)
    }

    /// Drops every cached block (cold-cache experiment setup).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.blocks.clear();
        inner.policy.clear();
        inner.used_bytes = 0;
    }

    /// Bytes currently cached (by [`PoolValue::weight`]).
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().blocks.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(i: u32) -> BlockKey {
        BlockKey {
            file_id: 1,
            block_no: i,
        }
    }

    fn load_n(n: usize) -> impl FnOnce(&mut IoSession) -> StorageResult<Bytes> {
        move |_s| Ok(Bytes::from(vec![0u8; n]))
    }

    #[test]
    fn hit_after_load() {
        let pool: BufferPool = BufferPool::new(1024);
        let mut s = IoSession::new();
        let a = pool.get_or_load(key(0), &mut s, load_n(10)).unwrap();
        let b = pool
            .get_or_load(key(0), &mut s, |_| panic!("must not reload"))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!((s.pool_hits, s.pool_misses), (1, 1));
    }

    #[test]
    fn eviction_respects_lru_order() {
        let pool: BufferPool = BufferPool::new(25);
        let mut s = IoSession::new();
        pool.get_or_load(key(0), &mut s, load_n(10)).unwrap();
        pool.get_or_load(key(1), &mut s, load_n(10)).unwrap();
        // touch 0 so 1 becomes the LRU victim
        pool.get_or_load(key(0), &mut s, |_| panic!("hit expected"))
            .unwrap();
        pool.get_or_load(key(2), &mut s, load_n(10)).unwrap(); // evicts 1
        assert_eq!(pool.len(), 2);
        // key 0 survived the eviction (it was recently touched) ...
        pool.get_or_load(key(0), &mut s, |_| panic!("hit expected"))
            .unwrap();
        // ... while key 1 (the LRU victim) must reload
        let mut reloaded = false;
        pool.get_or_load(key(1), &mut s, |_| {
            reloaded = true;
            Ok(Bytes::from_static(&[0; 10]))
        })
        .unwrap();
        assert!(reloaded, "key 1 should have been evicted");
    }

    #[test]
    fn clear_empties_pool() {
        let pool: BufferPool = BufferPool::new(1024);
        let mut s = IoSession::new();
        pool.get_or_load(key(0), &mut s, load_n(10)).unwrap();
        assert!(!pool.is_empty());
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn oversized_block_still_cacheable_once() {
        // a single block larger than capacity is admitted (len > 1 guard)
        let pool: BufferPool = BufferPool::new(5);
        let mut s = IoSession::new();
        pool.get_or_load(key(0), &mut s, load_n(50)).unwrap();
        assert_eq!(pool.len(), 1);
        pool.get_or_load(key(1), &mut s, load_n(50)).unwrap();
        assert_eq!(pool.len(), 1, "previous oversized block evicted");
    }

    #[test]
    fn load_error_propagates_and_does_not_cache() {
        let pool: BufferPool = BufferPool::new(100);
        let mut s = IoSession::new();
        let r = pool.get_or_load(key(0), &mut s, |_| {
            Err(crate::error::StorageError::KeyOrder { detail: "x".into() })
        });
        assert!(r.is_err());
        assert!(pool.is_empty());
    }

    #[test]
    fn custom_pool_value_weight_drives_eviction() {
        #[derive(Clone, PartialEq, Debug)]
        struct Weighted(u32, usize);
        impl PoolValue for Weighted {
            fn weight(&self) -> usize {
                self.1
            }
        }
        let pool: BufferPool<Weighted> = BufferPool::new(100);
        let mut s = IoSession::new();
        pool.get_or_load(key(0), &mut s, |_| Ok(Weighted(0, 60)))
            .unwrap();
        pool.get_or_load(key(1), &mut s, |_| Ok(Weighted(1, 60)))
            .unwrap();
        // 120 > 100: key 0 evicted
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.used_bytes(), 60);
        let v = pool
            .get_or_load(key(1), &mut s, |_| panic!("hit expected"))
            .unwrap();
        assert_eq!(v, Weighted(1, 60));
    }

    #[test]
    fn policy_kind_is_config_selectable() {
        for kind in EvictionPolicyKind::all() {
            let pool: BufferPool = BufferPool::with_policy(1024, kind, None);
            assert_eq!(pool.policy_kind(), kind);
        }
        let pool: BufferPool = BufferPool::new(1024);
        assert_eq!(pool.policy_kind(), EvictionPolicyKind::Lru);
    }

    #[test]
    fn clock_second_chance_protects_referenced_block() {
        let pool: BufferPool = BufferPool::with_policy(25, EvictionPolicyKind::Clock, None);
        let mut s = IoSession::new();
        pool.get_or_load(key(0), &mut s, load_n(10)).unwrap();
        pool.get_or_load(key(1), &mut s, load_n(10)).unwrap();
        // reference 0 so the hand skips it and evicts 1
        pool.get_or_load(key(0), &mut s, |_| panic!("hit expected"))
            .unwrap();
        pool.get_or_load(key(2), &mut s, load_n(10)).unwrap();
        pool.get_or_load(key(0), &mut s, |_| panic!("0 must survive"))
            .unwrap();
        let mut reloaded = false;
        pool.get_or_load(key(1), &mut s, |_| {
            reloaded = true;
            Ok(Bytes::from_static(&[0; 10]))
        })
        .unwrap();
        assert!(reloaded, "key 1 should have been the CLOCK victim");
    }

    #[test]
    fn sieve_evicts_unvisited_block_first() {
        let pool: BufferPool = BufferPool::with_policy(25, EvictionPolicyKind::Sieve, None);
        let mut s = IoSession::new();
        pool.get_or_load(key(0), &mut s, load_n(10)).unwrap();
        pool.get_or_load(key(1), &mut s, load_n(10)).unwrap();
        // visit 0 (the oldest); the hand clears its bit and evicts 1
        pool.get_or_load(key(0), &mut s, |_| panic!("hit expected"))
            .unwrap();
        pool.get_or_load(key(2), &mut s, load_n(10)).unwrap();
        pool.get_or_load(key(0), &mut s, |_| panic!("0 must survive"))
            .unwrap();
        let mut reloaded = false;
        pool.get_or_load(key(1), &mut s, |_| {
            reloaded = true;
            Ok(Bytes::from_static(&[0; 10]))
        })
        .unwrap();
        assert!(reloaded, "key 1 should have been the SIEVE victim");
    }

    // Every policy honours the byte budget: after any access sequence the
    // pool is within capacity unless a single oversized block remains.
    proptest! {
        #[test]
        fn every_policy_honours_byte_budget(
            // each op packs (key, weight): key = op % 16, weight = 1 + op / 16
            ops in prop::collection::vec(0u32..16 * 59, 1..60usize),
        ) {
            for kind in EvictionPolicyKind::all() {
                let pool: BufferPool = BufferPool::with_policy(100, kind, None);
                let mut s = IoSession::new();
                for &op in &ops {
                    let (k, n) = (op % 16, 1 + (op / 16) as usize);
                    pool.get_or_load(key(k), &mut s, load_n(n)).unwrap();
                    prop_assert!(
                        pool.used_bytes() <= 100 || pool.len() == 1,
                        "{}: {} bytes in {} blocks", kind.name(), pool.used_bytes(), pool.len()
                    );
                }
                pool.clear();
                prop_assert_eq!(pool.used_bytes(), 0);
                prop_assert!(pool.is_empty());
            }
        }
    }
}
