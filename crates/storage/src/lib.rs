//! The per-node storage engine.
//!
//! Each JHTDB database node stores its share of the simulation in tables
//! "partitioned spatially along contiguous ranges of the Morton z-curve",
//! with "the data for each partition resid\[ing\] in one database file"
//! striped over four RAID-5 disk arrays, plus SSD-resident cache tables
//! queried under snapshot isolation (paper §2, §4, §5.1). This crate is
//! that engine, built from scratch:
//!
//! * [`record`] — the `(timestep, zindex) → atom payload` record format,
//! * [`block`] — checksummed block encoding (CRC-32),
//! * [`sstable`] — immutable sorted partition files with a fence index
//!   (the clustered index of the paper: lookups are key-range scans),
//! * [`bufferpool`] — a shared block cache (SQL Server's buffer pool) with
//!   pluggable [`eviction`] policies (LRU, CLOCK, SIEVE),
//! * [`table`] — a partitioned table spread over disk arrays,
//! * [`device`] — device profiles and per-query I/O accounting used by the
//!   evaluation's modelled time breakdown (DESIGN.md §4),
//! * [`mvcc`] — a multi-version store with snapshot isolation for the
//!   mutable cache tables,
//! * [`faults`] — deterministic, seeded fault injection threaded through
//!   block reads, cache inserts and node evaluation (robustness testing).

pub mod block;
pub mod bufferpool;
pub mod device;
pub mod error;
pub mod eviction;
pub mod faults;
pub mod mvcc;
pub mod record;
pub mod sstable;
pub mod table;

pub use block::{checksum, decode_block_meta, encode_block_with, BlockCodecStats, BlockMeta};
pub use bufferpool::BufferPool;
pub use device::{DeviceId, DeviceProfile, DeviceRegistry, IoSession};
pub use error::{IoResultExt, StorageError, StorageResult};
pub use eviction::{EvictionPolicy, EvictionPolicyKind};
pub use faults::{BlockReadFault, FaultCounts, FaultKind, FaultPlan, FaultRule, FaultSite};
pub use mvcc::{CommitError, MvccStore, Txn};
pub use record::{AtomKey, AtomRecord};
pub use sstable::{BlockCache, DecodedBlock, PartitionReader, PartitionWriter};
pub use table::{Table, TableBuilder};
pub use tdb_compress::{CompressionConfig, CompressionMode};
