//! Pluggable buffer-pool eviction policies.
//!
//! The paper's SQL Server buffer pool is LRU-like, but modern block caches
//! favour scan-resistant policies; the pool accepts any [`EvictionPolicy`]
//! so experiments can compare them on identical traces:
//!
//! * [`LruPolicy`] — strict least-recently-used (logical-clock stamps, the
//!   pool's historical behaviour and still the default),
//! * [`ClockPolicy`] — the classic second-chance ring: a hit sets a
//!   reference bit, the hand clears bits until it finds a cold block,
//! * [`SievePolicy`] — SIEVE (NSDI '24): lazy promotion via visited bits
//!   with a hand that sweeps from the oldest entry toward the newest and
//!   *stays in place* across evictions, giving scan resistance without
//!   moving entries on hit.
//!
//! Policies track recency only; residency, byte accounting and the
//! eviction *loop* stay in [`crate::bufferpool::BufferPool`], so every
//! policy inherits the same byte-budget and oversized-block semantics.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::bufferpool::BlockKey;

/// Recency bookkeeping for a buffer pool.
///
/// The pool calls [`on_insert`](Self::on_insert) exactly once per resident
/// block, [`on_hit`](Self::on_hit) on every cache hit, and
/// [`evict`](Self::evict) to pick victims while over budget. A policy must
/// return each inserted key from `evict` exactly once (until re-inserted)
/// and must never return a key it was not told about.
pub trait EvictionPolicy: Send {
    /// A block became resident under `key`.
    fn on_insert(&mut self, key: BlockKey);
    /// The resident block `key` was hit.
    fn on_hit(&mut self, key: BlockKey);
    /// Choose and forget the next victim, or `None` if nothing is tracked.
    fn evict(&mut self) -> Option<BlockKey>;
    /// Forget everything (pool [`clear`](crate::bufferpool::BufferPool::clear)).
    fn clear(&mut self);
}

/// Which eviction policy a pool should use; selectable from cluster
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicyKind {
    /// Strict least-recently-used (the default).
    #[default]
    Lru,
    /// Second-chance CLOCK.
    Clock,
    /// SIEVE: lazy promotion, stationary hand.
    Sieve,
}

impl EvictionPolicyKind {
    /// All kinds, for benches and config validation messages.
    pub fn all() -> [EvictionPolicyKind; 3] {
        [
            EvictionPolicyKind::Lru,
            EvictionPolicyKind::Clock,
            EvictionPolicyKind::Sieve,
        ]
    }

    /// Stable lower-case name (`lru` / `clock` / `sieve`).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::Clock => "clock",
            EvictionPolicyKind::Sieve => "sieve",
        }
    }

    /// Parses a [`name`](Self::name), case-insensitively.
    pub fn parse(s: &str) -> Option<EvictionPolicyKind> {
        EvictionPolicyKind::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s.trim()))
    }

    /// Builds a fresh policy instance of this kind.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionPolicyKind::Lru => Box::new(LruPolicy::default()),
            EvictionPolicyKind::Clock => Box::new(ClockPolicy::default()),
            EvictionPolicyKind::Sieve => Box::new(SievePolicy::default()),
        }
    }
}

impl std::fmt::Display for EvictionPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EvictionPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EvictionPolicyKind::parse(s)
            .ok_or_else(|| format!("unknown eviction policy {s:?} (expected lru, clock or sieve)"))
    }
}

/// Strict LRU via logical-clock stamps: a `BTreeMap` keyed by stamp keeps
/// the least recent entry at the front, and both hit and insert restamp.
#[derive(Default)]
pub struct LruPolicy {
    clock: u64,
    stamps: HashMap<BlockKey, u64>,
    order: BTreeMap<u64, BlockKey>,
}

impl LruPolicy {
    fn touch(&mut self, key: BlockKey) {
        self.clock += 1;
        let now = self.clock;
        if let Some(old) = self.stamps.insert(key, now) {
            self.order.remove(&old);
        }
        self.order.insert(now, key);
    }
}

impl EvictionPolicy for LruPolicy {
    fn on_insert(&mut self, key: BlockKey) {
        self.touch(key);
    }

    fn on_hit(&mut self, key: BlockKey) {
        self.touch(key);
    }

    fn evict(&mut self) -> Option<BlockKey> {
        let (_, key) = self.order.pop_first()?;
        self.stamps.remove(&key);
        Some(key)
    }

    fn clear(&mut self) {
        self.stamps.clear();
        self.order.clear();
    }
}

/// Second-chance CLOCK: a FIFO ring where a hit sets the entry's reference
/// bit; the hand (the ring front) clears set bits and rotates the entry to
/// the back, evicting the first entry found cold.
#[derive(Default)]
pub struct ClockPolicy {
    ring: VecDeque<BlockKey>,
    referenced: HashMap<BlockKey, bool>,
}

impl EvictionPolicy for ClockPolicy {
    fn on_insert(&mut self, key: BlockKey) {
        self.ring.push_back(key);
        self.referenced.insert(key, false);
    }

    fn on_hit(&mut self, key: BlockKey) {
        if let Some(bit) = self.referenced.get_mut(&key) {
            *bit = true;
        }
    }

    fn evict(&mut self) -> Option<BlockKey> {
        // Terminates: every pass either evicts or clears one set bit, and
        // bits are only set by hits, which cannot run mid-eviction (the
        // pool holds its lock).
        while let Some(key) = self.ring.pop_front() {
            match self.referenced.get_mut(&key) {
                Some(bit) if *bit => {
                    *bit = false;
                    self.ring.push_back(key);
                }
                _ => {
                    self.referenced.remove(&key);
                    return Some(key);
                }
            }
        }
        None
    }

    fn clear(&mut self) {
        self.ring.clear();
        self.referenced.clear();
    }
}

/// SIEVE: entries sit in insertion order (front = newest); a hit lazily
/// sets a visited bit without moving the entry. The hand starts at the
/// oldest entry and sweeps toward newer ones, clearing visited bits it
/// passes and evicting the first unvisited entry it finds — and it *stays
/// put* after an eviction instead of resetting, which is what makes SIEVE
/// scan-resistant.
#[derive(Default)]
pub struct SievePolicy {
    /// Front = most recently inserted, back = oldest.
    queue: VecDeque<BlockKey>,
    visited: HashMap<BlockKey, bool>,
    /// Hand position as an index from the *back* (oldest = 0), so
    /// insertions at the front never shift it.
    hand: usize,
}

impl EvictionPolicy for SievePolicy {
    fn on_insert(&mut self, key: BlockKey) {
        self.queue.push_front(key);
        self.visited.insert(key, false);
    }

    fn on_hit(&mut self, key: BlockKey) {
        if let Some(bit) = self.visited.get_mut(&key) {
            *bit = true;
        }
    }

    fn evict(&mut self) -> Option<BlockKey> {
        // Terminates: each iteration either evicts or clears one visited
        // bit (possibly after a single wrap), and no bits are set while
        // the pool lock is held.
        loop {
            let len = self.queue.len();
            if len == 0 {
                return None;
            }
            if self.hand >= len {
                self.hand = 0;
            }
            let idx = len - 1 - self.hand;
            let key = *self.queue.get(idx)?;
            match self.visited.get_mut(&key) {
                Some(bit) if *bit => {
                    *bit = false;
                    self.hand += 1;
                }
                _ => {
                    self.queue.remove(idx);
                    self.visited.remove(&key);
                    // The hand keeps its index-from-back: it now points at
                    // the entry that was just in front of the victim.
                    return Some(key);
                }
            }
        }
    }

    fn clear(&mut self) {
        self.queue.clear();
        self.visited.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(i: u32) -> BlockKey {
        BlockKey {
            file_id: 1,
            block_no: i,
        }
    }

    #[test]
    fn kind_parse_roundtrip() {
        for kind in EvictionPolicyKind::all() {
            assert_eq!(EvictionPolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(
                EvictionPolicyKind::parse(&kind.name().to_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(EvictionPolicyKind::parse("mru"), None);
        assert_eq!(EvictionPolicyKind::default(), EvictionPolicyKind::Lru);
        assert!("fifo".parse::<EvictionPolicyKind>().is_err());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = LruPolicy::default();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_insert(key(2));
        p.on_hit(key(0)); // 1 is now least recent
        assert_eq!(p.evict(), Some(key(1)));
        assert_eq!(p.evict(), Some(key(2)));
        assert_eq!(p.evict(), Some(key(0)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_entries() {
        let mut p = ClockPolicy::default();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_insert(key(2));
        p.on_hit(key(0));
        // 0 is referenced → hand clears its bit and rotates past it
        assert_eq!(p.evict(), Some(key(1)));
        // 0's bit is now cleared: it goes next (before 2, it rotated behind)
        assert_eq!(p.evict(), Some(key(2)));
        assert_eq!(p.evict(), Some(key(0)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn sieve_evicts_oldest_unvisited_and_hand_survives_eviction() {
        let mut p = SievePolicy::default();
        for i in 0..4 {
            p.on_insert(key(i));
        }
        p.on_hit(key(0)); // oldest is visited
                          // Hand passes 0 (clearing its bit), evicts 1.
        assert_eq!(p.evict(), Some(key(1)));
        // Hand stayed: next sweep starts at 2, not back at 0.
        assert_eq!(p.evict(), Some(key(2)));
        assert_eq!(p.evict(), Some(key(3)));
        // Wraps to 0, whose bit was cleared on the first sweep.
        assert_eq!(p.evict(), Some(key(0)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn sieve_new_inserts_do_not_move_the_hand() {
        let mut p = SievePolicy::default();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_hit(key(0));
        assert_eq!(p.evict(), Some(key(1))); // hand now past 0
        p.on_insert(key(2));
        p.on_insert(key(3));
        // Hand is at index-from-back 1 → entry 2 (0 is ifb 0, untouched).
        assert_eq!(p.evict(), Some(key(2)));
    }

    // Every policy returns each tracked key exactly once, regardless of
    // the hit pattern: drain order is a permutation of the inserted set.
    proptest! {
        #[test]
        fn every_policy_drains_to_a_permutation(
            inserts in prop::collection::vec(0u32..32, 1..40usize),
            hits in prop::collection::vec(0u32..32, 0..40usize),
        ) {
            for kind in EvictionPolicyKind::all() {
                let mut p = kind.build();
                let mut resident = std::collections::BTreeSet::new();
                for &i in &inserts {
                    if resident.insert(i) {
                        p.on_insert(key(i));
                    }
                }
                for &h in &hits {
                    if resident.contains(&h) {
                        p.on_hit(key(h));
                    }
                }
                let mut drained = std::collections::BTreeSet::new();
                while let Some(k) = p.evict() {
                    prop_assert!(
                        drained.insert(k.block_no),
                        "{kind}: key {} evicted twice", k.block_no
                    );
                }
                prop_assert_eq!(&drained, &resident, "{}: drain mismatch", kind);
            }
        }
    }
}
