//! Atom records: the unit the database stores.
//!
//! "Each time-step is spatially subdivided into database atoms, which are
//! of size 8³. Each such atom is indexed by the time-step ... and by the
//! Morton code of its lower left corner. This combination of index and data
//! forms a record in the database." (paper §2)

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tdb_zorder::ATOM_POINTS;

use crate::error::{StorageError, StorageResult};

/// Clustered-index key of an atom record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomKey {
    pub timestep: u32,
    pub zindex: u64,
}

impl AtomKey {
    /// Creates a key.
    pub fn new(timestep: u32, zindex: u64) -> Self {
        Self { timestep, zindex }
    }

    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 12;

    /// Appends the key encoding (big-endian so byte order = key order).
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u32(self.timestep);
        out.put_u64(self.zindex);
    }

    /// Decodes a key.
    pub fn decode(buf: &mut impl Buf) -> AtomKey {
        let timestep = buf.get_u32();
        let zindex = buf.get_u64();
        AtomKey { timestep, zindex }
    }
}

/// One atom record: key plus `ncomp` planes of 512 `f32` samples
/// (component-major, x-fastest within each plane).
#[derive(Debug, Clone, PartialEq)]
pub struct AtomRecord {
    pub key: AtomKey,
    pub ncomp: u8,
    pub data: Vec<f32>,
}

impl AtomRecord {
    /// Builds a record, validating the payload length.
    pub fn new(key: AtomKey, ncomp: u8, data: Vec<f32>) -> StorageResult<Self> {
        if data.len() != usize::from(ncomp) * ATOM_POINTS {
            return Err(StorageError::SchemaMismatch {
                expected_ncomp: ncomp,
                got_ncomp: (data.len() / ATOM_POINTS) as u8,
            });
        }
        Ok(Self { key, ncomp, data })
    }

    /// Encoded size in bytes for a given component count.
    pub fn encoded_len(ncomp: u8) -> usize {
        AtomKey::ENCODED_LEN + 1 + usize::from(ncomp) * ATOM_POINTS * 4
    }

    /// Appends the record encoding.
    pub fn encode(&self, out: &mut BytesMut) {
        out.reserve(Self::encoded_len(self.ncomp));
        self.key.encode(out);
        out.put_u8(self.ncomp);
        for &v in &self.data {
            out.put_f32_le(v);
        }
    }

    /// Decodes one record from the front of `buf`.
    pub fn decode(buf: &mut Bytes) -> StorageResult<AtomRecord> {
        if buf.remaining() < AtomKey::ENCODED_LEN + 1 {
            return Err(StorageError::Corrupt {
                file: String::new(),
                detail: "truncated record header".into(),
            });
        }
        let key = AtomKey::decode(buf);
        let ncomp = buf.get_u8();
        let n = usize::from(ncomp) * ATOM_POINTS;
        if buf.remaining() < n * 4 {
            return Err(StorageError::Corrupt {
                file: String::new(),
                detail: format!("truncated record payload (key {key:?})"),
            });
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(buf.get_f32_le());
        }
        Ok(AtomRecord { key, ncomp, data })
    }

    /// Component plane `c` of the payload (empty for `c >= ncomp`, so a
    /// schema mix-up surfaces as missing data rather than a panic in the
    /// query path).
    pub fn plane(&self, c: usize) -> &[f32] {
        self.data
            .get(c * ATOM_POINTS..(c + 1) * ATOM_POINTS)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn key_order_matches_encoding_order() {
        let keys = [
            AtomKey::new(0, 5),
            AtomKey::new(0, 6),
            AtomKey::new(1, 0),
            AtomKey::new(1, u64::MAX),
            AtomKey::new(2, 0),
        ];
        let mut encoded: Vec<Vec<u8>> = keys
            .iter()
            .map(|k| {
                let mut b = BytesMut::new();
                k.encode(&mut b);
                b.to_vec()
            })
            .collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted, "big-endian encoding must sort like keys");
    }

    #[test]
    fn record_roundtrip() {
        let data: Vec<f32> = (0..3 * ATOM_POINTS).map(|i| i as f32 * 0.5).collect();
        let r = AtomRecord::new(AtomKey::new(7, 12345), 3, data).unwrap();
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), AtomRecord::encoded_len(3));
        let mut bytes = buf.freeze();
        let back = AtomRecord::decode(&mut bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn new_rejects_wrong_payload_length() {
        let err = AtomRecord::new(AtomKey::new(0, 0), 3, vec![0.0; ATOM_POINTS]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn decode_rejects_truncation() {
        let data: Vec<f32> = vec![1.0; ATOM_POINTS];
        let r = AtomRecord::new(AtomKey::new(1, 2), 1, data).unwrap();
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let mut cut = buf.freeze().slice(0..40);
        assert!(AtomRecord::decode(&mut cut).is_err());
    }

    #[test]
    fn plane_extracts_components() {
        let mut data = vec![0.0f32; 2 * ATOM_POINTS];
        data[ATOM_POINTS] = 9.0;
        let r = AtomRecord::new(AtomKey::new(0, 0), 2, data).unwrap();
        assert_eq!(r.plane(1)[0], 9.0);
        assert_eq!(r.plane(0)[0], 0.0);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(ts in any::<u32>(), z in any::<u64>(),
                               ncomp in 1u8..=4,
                               seed in any::<u32>()) {
            let n = usize::from(ncomp) * ATOM_POINTS;
            let data: Vec<f32> = (0..n).map(|i| ((i as u32).wrapping_mul(seed)) as f32).collect();
            let r = AtomRecord::new(AtomKey::new(ts, z), ncomp, data).unwrap();
            let mut buf = BytesMut::new();
            r.encode(&mut buf);
            let mut bytes = buf.freeze();
            prop_assert_eq!(AtomRecord::decode(&mut bytes).unwrap(), r);
        }
    }
}
