//! Storage-layer errors.
//!
//! Every error carries enough context to name the failing device or file,
//! and classifies as *transient* (worth a bounded retry) or *permanent*
//! (retrying cannot help) — the distinction the query path's retry and
//! degradation policies are built on.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file-system failure. `file` names the partition file
    /// when known (empty when the error arose outside any file context).
    Io {
        file: String,
        source: std::io::Error,
    },
    /// A block or footer failed validation.
    Corrupt { file: String, detail: String },
    /// Bulk-load input violated the sorted-unique-key contract.
    KeyOrder { detail: String },
    /// A record payload did not match the table's component count.
    SchemaMismatch { expected_ncomp: u8, got_ncomp: u8 },
    /// Data that should have been ingested was not found.
    MissingData { detail: String },
    /// A fault injected by a [`crate::faults::FaultPlan`].
    Injected {
        site: String,
        detail: String,
        transient: bool,
    },
    /// A whole database node is out of service.
    NodeUnavailable { node: usize, detail: String },
    /// A broken internal invariant (a bug, not an environmental failure):
    /// surfaced as a typed error so one bad query fails cleanly over the
    /// wire instead of panicking its handler thread.
    Internal { detail: String },
}

impl StorageError {
    /// Whether a bounded retry may succeed: injected transient faults and
    /// the retryable I/O error kinds (interrupted / timed-out reads).
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { source, .. } => matches!(
                source.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            StorageError::Injected { transient, .. } => *transient,
            _ => false,
        }
    }

    /// Whether the error means a whole node is out of service (the
    /// mediator degrades instead of failing the query).
    pub fn is_unavailable(&self) -> bool {
        matches!(self, StorageError::NodeUnavailable { .. })
    }

    /// Attaches a file name to an I/O error that lacks one, so retry
    /// decisions and error messages name the failing partition.
    #[must_use]
    pub fn in_file(self, file: &str) -> Self {
        match self {
            StorageError::Io { file: f, source } if f.is_empty() => StorageError::Io {
                file: file.to_string(),
                source,
            },
            other => other,
        }
    }

    /// A broken-invariant error (the typed replacement for `panic!` /
    /// `.expect()` on the query path).
    pub fn internal(detail: impl Into<String>) -> Self {
        StorageError::Internal {
            detail: detail.into(),
        }
    }
}

/// Attaches file context to `io::Error` results at the propagation site:
/// `file.read_exact_at(..).at_file(&self.path)?`. The `error-context`
/// lint requires one of these (or an explicit `map_err`) on every
/// `io::Error` that crosses `?` in tdb-storage.
pub trait IoResultExt<T> {
    /// Converts the `io::Error` into [`StorageError::Io`] carrying `file`.
    fn at_file(self, file: impl AsRef<str>) -> StorageResult<T>;
}

impl<T> IoResultExt<T> for Result<T, std::io::Error> {
    fn at_file(self, file: impl AsRef<str>) -> StorageResult<T> {
        self.map_err(|source| StorageError::Io {
            file: file.as_ref().to_string(),
            source,
        })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { file, source } if file.is_empty() => {
                write!(f, "I/O error: {source}")
            }
            StorageError::Io { file, source } => write!(f, "I/O error in {file}: {source}"),
            StorageError::Corrupt { file, detail } => {
                write!(f, "corrupt partition file {file}: {detail}")
            }
            StorageError::KeyOrder { detail } => {
                write!(f, "bulk-load key order violation: {detail}")
            }
            StorageError::SchemaMismatch {
                expected_ncomp,
                got_ncomp,
            } => write!(
                f,
                "schema mismatch: table stores {expected_ncomp} components, record has {got_ncomp}"
            ),
            StorageError::MissingData { detail } => write!(f, "missing data: {detail}"),
            StorageError::Injected {
                site,
                detail,
                transient,
            } => write!(
                f,
                "injected {} fault at {site}: {detail}",
                if *transient { "transient" } else { "permanent" }
            ),
            StorageError::NodeUnavailable { node, detail } => {
                write!(f, "node {node} unavailable: {detail}")
            }
            StorageError::Internal { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io {
            file: String::new(),
            source: e,
        }
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::Corrupt {
            file: "part_3.tdb".into(),
            detail: "bad crc".into(),
        };
        let s = e.to_string();
        assert!(s.contains("part_3.tdb") && s.contains("bad crc"));
        let e = StorageError::SchemaMismatch {
            expected_ncomp: 3,
            got_ncomp: 1,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn in_file_attaches_context_once() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = StorageError::from(io).in_file("node0/velocity_part_1.tdb");
        assert!(e.to_string().contains("velocity_part_1.tdb"));
        // a second context never overwrites the first
        let e = e.in_file("other.tdb");
        assert!(e.to_string().contains("velocity_part_1.tdb"));
    }

    #[test]
    fn transient_classification() {
        let t = StorageError::from(std::io::Error::new(std::io::ErrorKind::Interrupted, "x"));
        assert!(t.is_transient());
        let p = StorageError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert!(!p.is_transient());
        assert!(StorageError::Injected {
            site: "block_read".into(),
            detail: "x".into(),
            transient: true
        }
        .is_transient());
        assert!(!StorageError::Corrupt {
            file: "f".into(),
            detail: "d".into()
        }
        .is_transient());
    }

    #[test]
    fn at_file_and_internal() {
        let r: Result<(), std::io::Error> =
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        let e = r.at_file("node1/p_2.tdb").unwrap_err();
        assert!(e.to_string().contains("node1/p_2.tdb"));
        let e = StorageError::internal("slots drained twice");
        assert!(e.to_string().contains("slots drained twice"));
        assert!(!e.is_transient() && !e.is_unavailable());
    }

    #[test]
    fn unavailable_classification() {
        let e = StorageError::NodeUnavailable {
            node: 3,
            detail: "killed".into(),
        };
        assert!(e.is_unavailable() && !e.is_transient());
        assert!(e.to_string().contains("node 3"));
    }
}
