//! Storage-layer errors.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// A block or footer failed validation.
    Corrupt { file: String, detail: String },
    /// Bulk-load input violated the sorted-unique-key contract.
    KeyOrder { detail: String },
    /// A record payload did not match the table's component count.
    SchemaMismatch { expected_ncomp: u8, got_ncomp: u8 },
    /// Data that should have been ingested was not found.
    MissingData { detail: String },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt { file, detail } => {
                write!(f, "corrupt partition file {file}: {detail}")
            }
            StorageError::KeyOrder { detail } => {
                write!(f, "bulk-load key order violation: {detail}")
            }
            StorageError::SchemaMismatch {
                expected_ncomp,
                got_ncomp,
            } => write!(
                f,
                "schema mismatch: table stores {expected_ncomp} components, record has {got_ncomp}"
            ),
            StorageError::MissingData { detail } => write!(f, "missing data: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::Corrupt {
            file: "part_3.tdb".into(),
            detail: "bad crc".into(),
        };
        let s = e.to_string();
        assert!(s.contains("part_3.tdb") && s.contains("bad crc"));
        let e = StorageError::SchemaMismatch {
            expected_ncomp: 3,
            got_ncomp: 1,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
