//! Checksummed block encoding.
//!
//! Partition files are written and read in blocks of roughly
//! [`TARGET_BLOCK_BYTES`]. Every block carries a CRC-32 so corruption is
//! detected on read rather than propagated into query answers.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{StorageError, StorageResult};
use crate::record::AtomRecord;

/// Target on-disk block size. Atoms are ~6 KiB (3 components), so a block
/// holds on the order of ten records — large enough to amortise a seek,
/// small enough for selective range scans.
pub const TARGET_BLOCK_BYTES: usize = 64 * 1024;

const BLOCK_MAGIC: u32 = 0x7db1_0c0d;

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn checksum(data: &[u8]) -> u32 {
    // table-less bitwise implementation; blocks are checksummed once per
    // disk read, so this is not on the per-point hot path.
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Serialises records into one block: `magic | nrec | payload | crc`.
pub fn encode_block(records: &[AtomRecord]) -> Bytes {
    let mut payload = BytesMut::new();
    for r in records {
        r.encode(&mut payload);
    }
    let mut out = BytesMut::with_capacity(payload.len() + 12);
    out.put_u32(BLOCK_MAGIC);
    out.put_u32(records.len() as u32);
    out.extend_from_slice(&payload);
    let crc = checksum(&out);
    out.put_u32(crc);
    out.freeze()
}

/// Decodes a block, validating magic and checksum.
pub fn decode_block(mut data: Bytes, file: &str) -> StorageResult<Vec<AtomRecord>> {
    if data.len() < 12 {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: "block shorter than header".into(),
        });
    }
    let body = data.slice(0..data.len() - 4);
    let stored_crc = (&data[data.len() - 4..]).get_u32();
    if checksum(&body) != stored_crc {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: "crc mismatch".into(),
        });
    }
    let magic = data.get_u32();
    if magic != BLOCK_MAGIC {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: format!("bad magic {magic:#x}"),
        });
    }
    let nrec = data.get_u32() as usize;
    let mut payload = data.slice(0..data.len() - 4);
    let mut records = Vec::with_capacity(nrec);
    for _ in 0..nrec {
        records.push(AtomRecord::decode(&mut payload).map_err(|e| match e {
            StorageError::Corrupt { detail, .. } => StorageError::Corrupt {
                file: file.into(),
                detail,
            },
            other => other,
        })?);
    }
    if payload.has_remaining() {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: format!(
                "{} trailing bytes after {nrec} records",
                payload.remaining()
            ),
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AtomKey;
    use tdb_zorder::ATOM_POINTS;

    fn rec(ts: u32, z: u64) -> AtomRecord {
        let data = (0..ATOM_POINTS).map(|i| (i as f32) + z as f32).collect();
        AtomRecord::new(AtomKey::new(ts, z), 1, data).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // standard check value for "123456789"
        assert_eq!(checksum(b"123456789"), 0xcbf4_3926);
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn block_roundtrip() {
        let records: Vec<_> = (0..5).map(|i| rec(2, i * 3)).collect();
        let blk = encode_block(&records);
        let back = decode_block(blk, "t").unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_block_roundtrip() {
        let blk = encode_block(&[]);
        assert!(decode_block(blk, "t").unwrap().is_empty());
    }

    #[test]
    fn bit_flip_is_detected() {
        let records = vec![rec(0, 1), rec(0, 2)];
        let blk = encode_block(&records);
        for pos in [0usize, 5, 100, blk.len() - 1] {
            let mut bad = blk.to_vec();
            bad[pos] ^= 0x10;
            let err = decode_block(Bytes::from(bad), "f").unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "flip at {pos} not detected"
            );
        }
    }

    #[test]
    fn truncated_block_is_detected() {
        let blk = encode_block(&[rec(0, 1)]);
        let cut = blk.slice(0..blk.len() / 2);
        assert!(decode_block(cut, "f").is_err());
        assert!(decode_block(Bytes::from_static(&[1, 2, 3]), "f").is_err());
    }
}
