//! Checksummed block encoding.
//!
//! Partition files are written and read in blocks of roughly
//! [`TARGET_BLOCK_BYTES`]. Every block carries a CRC-32 so corruption is
//! detected on read rather than propagated into query answers.
//!
//! Two block formats share the CRC framing and are told apart by magic:
//!
//! * **V1** (`magic | nrec | raw records | crc`) — the seed format,
//!   written whenever compression is off; byte-identical to before the
//!   compression tier existed.
//! * **V2** (`magic2 | nrec | compressed records | crc`) — each record is
//!   `key | ncomp | per-plane (u32 length + self-describing codec
//!   payload)`; the codec id byte inside each plane payload makes blocks
//!   self-describing, so readers need no table-level configuration
//!   (DESIGN.md §10).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tdb_compress::{decode_plane, encode_plane, CompressionConfig};
use tdb_zorder::ATOM_POINTS;

use crate::error::{StorageError, StorageResult};
use crate::record::{AtomKey, AtomRecord};

/// Target on-disk block size. Atoms are ~6 KiB (3 components), so a block
/// holds on the order of ten records — large enough to amortise a seek,
/// small enough for selective range scans.
pub const TARGET_BLOCK_BYTES: usize = 64 * 1024;

const BLOCK_MAGIC: u32 = 0x7db1_0c0d;
/// Magic of compressed (V2) blocks.
const BLOCK_MAGIC_V2: u32 = 0x7db2_0c0d;

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn checksum(data: &[u8]) -> u32 {
    // table-less bitwise implementation; blocks are checksummed once per
    // disk read, so this is not on the per-point hot path.
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Encoder-side stats of one block, aggregated into the `compress.*`
/// metrics by the partition writer.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCodecStats {
    /// Bytes the records occupy decoded (the V1 encoding size).
    pub logical_bytes: u64,
    /// Bytes the block occupies on disk.
    pub stored_bytes: u64,
    /// Sparse corrections across all planes (lossy codec only).
    pub corrections: u64,
    /// Worst uncorrected reconstruction error across all planes.
    pub max_error: f64,
}

/// Decoder-side facts about a block, reported by
/// [`decode_block_meta`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockMeta {
    /// Whether the block was stored in the compressed (V2) format.
    pub compressed: bool,
    /// Bytes the decoded records occupy in memory (the buffer-pool
    /// weight of the block).
    pub logical_bytes: u64,
}

/// Serialises records into one V1 block: `magic | nrec | payload | crc`.
pub fn encode_block(records: &[AtomRecord]) -> Bytes {
    let mut payload = BytesMut::new();
    for r in records {
        r.encode(&mut payload);
    }
    let mut out = BytesMut::with_capacity(payload.len() + 12);
    out.put_u32(BLOCK_MAGIC);
    out.put_u32(records.len() as u32);
    out.extend_from_slice(&payload);
    let crc = checksum(&out);
    out.put_u32(crc);
    out.freeze()
}

/// Serialises records under `codec`. [`CompressionMode::Off`] delegates
/// to [`encode_block`], keeping the seed format byte-identical; active
/// codecs write a V2 block whose planes are self-describing compressed
/// payloads.
///
/// [`CompressionMode::Off`]: tdb_compress::CompressionMode::Off
pub fn encode_block_with(
    records: &[AtomRecord],
    codec: &CompressionConfig,
) -> (Bytes, BlockCodecStats) {
    let logical: u64 = records
        .iter()
        .map(|r| AtomRecord::encoded_len(r.ncomp) as u64)
        .sum();
    if !codec.is_active() {
        let blk = encode_block(records);
        let stats = BlockCodecStats {
            logical_bytes: logical,
            stored_bytes: blk.len() as u64,
            ..Default::default()
        };
        return (blk, stats);
    }
    let mut stats = BlockCodecStats {
        logical_bytes: logical,
        ..Default::default()
    };
    let mut out = BytesMut::new();
    out.put_u32(BLOCK_MAGIC_V2);
    out.put_u32(records.len() as u32);
    for r in records {
        r.key.encode(&mut out);
        out.put_u8(r.ncomp);
        for c in 0..usize::from(r.ncomp) {
            let enc = encode_plane(codec, r.plane(c));
            stats.corrections += enc.corrections as u64;
            stats.max_error = stats.max_error.max(enc.max_error);
            out.put_u32_le(enc.bytes.len() as u32);
            out.extend_from_slice(&enc.bytes);
        }
    }
    let crc = checksum(&out);
    out.put_u32(crc);
    let blk = out.freeze();
    stats.stored_bytes = blk.len() as u64;
    (blk, stats)
}

/// Decodes a block, validating magic and checksum.
pub fn decode_block(data: Bytes, file: &str) -> StorageResult<Vec<AtomRecord>> {
    decode_block_meta(data, file).map(|(records, _)| records)
}

/// Decodes a block (either format), also reporting which format it was
/// and its decoded footprint.
pub fn decode_block_meta(
    mut data: Bytes,
    file: &str,
) -> StorageResult<(Vec<AtomRecord>, BlockMeta)> {
    if data.len() < 12 {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: "block shorter than header".into(),
        });
    }
    let body = data.slice(0..data.len() - 4);
    let mut tail = data.slice(data.len() - 4..);
    let stored_crc = tail.get_u32();
    if checksum(&body) != stored_crc {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: "crc mismatch".into(),
        });
    }
    let magic = data.get_u32();
    let compressed = match magic {
        BLOCK_MAGIC => false,
        BLOCK_MAGIC_V2 => true,
        other => {
            return Err(StorageError::Corrupt {
                file: file.into(),
                detail: format!("bad magic {other:#x}"),
            })
        }
    };
    let nrec = data.get_u32() as usize;
    let mut payload = data.slice(0..data.len() - 4);
    let mut records = Vec::with_capacity(nrec);
    for _ in 0..nrec {
        let rec = if compressed {
            decode_compressed_record(&mut payload, file)?
        } else {
            AtomRecord::decode(&mut payload).map_err(|e| match e {
                StorageError::Corrupt { detail, .. } => StorageError::Corrupt {
                    file: file.into(),
                    detail,
                },
                other => other,
            })?
        };
        records.push(rec);
    }
    if payload.has_remaining() {
        return Err(StorageError::Corrupt {
            file: file.into(),
            detail: format!(
                "{} trailing bytes after {nrec} records",
                payload.remaining()
            ),
        });
    }
    let logical: u64 = records
        .iter()
        .map(|r| AtomRecord::encoded_len(r.ncomp) as u64)
        .sum();
    Ok((
        records,
        BlockMeta {
            compressed,
            logical_bytes: logical,
        },
    ))
}

/// One V2 record: `key | ncomp | ncomp × (u32 plane length + payload)`.
fn decode_compressed_record(payload: &mut Bytes, file: &str) -> StorageResult<AtomRecord> {
    let corrupt = |detail: String| StorageError::Corrupt {
        file: file.into(),
        detail,
    };
    if payload.remaining() < AtomKey::ENCODED_LEN + 1 {
        return Err(corrupt("truncated compressed record header".into()));
    }
    let key = AtomKey::decode(payload);
    let ncomp = payload.get_u8();
    let mut data = Vec::with_capacity(usize::from(ncomp) * ATOM_POINTS);
    for c in 0..ncomp {
        if payload.remaining() < 4 {
            return Err(corrupt(format!("truncated plane {c} length (key {key:?})")));
        }
        let len = payload.get_u32_le() as usize;
        if payload.remaining() < len {
            return Err(corrupt(format!(
                "truncated plane {c} payload (key {key:?})"
            )));
        }
        let plane = payload.slice(0..len);
        payload.advance(len);
        let samples = decode_plane(&plane, ATOM_POINTS)
            .map_err(|e| corrupt(format!("plane {c} of {key:?}: {e}")))?;
        data.extend_from_slice(&samples);
    }
    Ok(AtomRecord { key, ncomp, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AtomKey;
    use tdb_zorder::ATOM_POINTS;

    fn rec(ts: u32, z: u64) -> AtomRecord {
        let data = (0..ATOM_POINTS).map(|i| (i as f32) + z as f32).collect();
        AtomRecord::new(AtomKey::new(ts, z), 1, data).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // standard check value for "123456789"
        assert_eq!(checksum(b"123456789"), 0xcbf4_3926);
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn block_roundtrip() {
        let records: Vec<_> = (0..5).map(|i| rec(2, i * 3)).collect();
        let blk = encode_block(&records);
        let back = decode_block(blk, "t").unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_block_roundtrip() {
        let blk = encode_block(&[]);
        assert!(decode_block(blk, "t").unwrap().is_empty());
    }

    #[test]
    fn bit_flip_is_detected() {
        let records = vec![rec(0, 1), rec(0, 2)];
        let blk = encode_block(&records);
        for pos in [0usize, 5, 100, blk.len() - 1] {
            let mut bad = blk.to_vec();
            bad[pos] ^= 0x10;
            let err = decode_block(Bytes::from(bad), "f").unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "flip at {pos} not detected"
            );
        }
    }

    #[test]
    fn truncated_block_is_detected() {
        let blk = encode_block(&[rec(0, 1)]);
        let cut = blk.slice(0..blk.len() / 2);
        assert!(decode_block(cut, "f").is_err());
        assert!(decode_block(Bytes::from_static(&[1, 2, 3]), "f").is_err());
    }

    // Smooth in lattice coordinates (like a simulation field), not in the
    // flattened sample index — the spatial codec sub-samples per axis.
    fn smooth_rec(ts: u32, zidx: u64, ncomp: u8) -> AtomRecord {
        let data = (0..usize::from(ncomp) * ATOM_POINTS)
            .map(|i| {
                let (x, y, z) = (i % 8, (i / 8) % 8, (i / 64) % 8);
                let phase = zidx as f64 * 0.05 + (i / ATOM_POINTS) as f64;
                ((x as f64 * 0.25 + phase).sin() * (y as f64 * 0.2).cos() + 0.1 * z as f64) as f32
            })
            .collect();
        AtomRecord::new(AtomKey::new(ts, zidx), ncomp, data).unwrap()
    }

    #[test]
    fn codec_off_is_byte_identical_to_v1() {
        let records: Vec<_> = (0..4).map(|i| rec(1, i * 2)).collect();
        let (blk, stats) = encode_block_with(&records, &CompressionConfig::default());
        assert_eq!(&blk[..], &encode_block(&records)[..]);
        assert_eq!(stats.stored_bytes, blk.len() as u64);
        let (back, meta) = decode_block_meta(blk, "t").unwrap();
        assert_eq!(back, records);
        assert!(!meta.compressed);
    }

    #[test]
    fn lossless_block_roundtrips_bitwise_and_shrinks() {
        let mut records: Vec<_> = (0..6).map(|i| smooth_rec(3, i * 5, 3)).collect();
        records[2].data[17] = f32::NAN;
        records[4].data[900] = f32::NEG_INFINITY;
        let (blk, stats) = encode_block_with(&records, &CompressionConfig::lossless());
        assert!(stats.stored_bytes < stats.logical_bytes, "{stats:?}");
        assert_eq!(stats.corrections, 0);
        let (back, meta) = decode_block_meta(blk, "t").unwrap();
        assert!(meta.compressed);
        assert_eq!(meta.logical_bytes, stats.logical_bytes);
        assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.key, b.key);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn lossy_block_beats_4x_within_bound() {
        let records: Vec<_> = (0..8).map(|i| smooth_rec(0, i * 3, 3)).collect();
        let bound = 1e-3;
        let (blk, stats) = encode_block_with(&records, &CompressionConfig::lossy(2, bound));
        assert!(stats.max_error <= bound);
        assert!(
            stats.stored_bytes * 4 <= stats.logical_bytes,
            "ratio {:.2}",
            stats.logical_bytes as f64 / stats.stored_bytes as f64
        );
        let (back, meta) = decode_block_meta(blk, "t").unwrap();
        assert!(meta.compressed);
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.key, b.key);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert!((f64::from(*x) - f64::from(*y)).abs() <= bound);
            }
        }
    }

    #[test]
    fn compressed_bit_flip_is_detected() {
        let records: Vec<_> = (0..4).map(|i| smooth_rec(0, i, 1)).collect();
        let (blk, _) = encode_block_with(&records, &CompressionConfig::lossless());
        for pos in [0usize, 9, blk.len() / 2, blk.len() - 1] {
            let mut bad = blk.to_vec();
            bad[pos] ^= 0x04;
            assert!(
                decode_block(Bytes::from(bad), "f").is_err(),
                "flip at {pos} not detected"
            );
        }
    }
}
