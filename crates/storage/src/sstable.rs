//! Immutable sorted partition files.
//!
//! A partition file holds atom records sorted by clustered key
//! `(timestep, zindex)` in checksummed blocks, with an in-footer fence
//! index (first/last key per block). Range scans binary-search the fences
//! and read only overlapping blocks — the clustered-index range scan the
//! paper's queries compile to. The archive is append-once, so sorted runs
//! never need compaction.

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tdb_compress::{CompressionConfig, CompressionMode};

use crate::block::{decode_block_meta, encode_block_with, TARGET_BLOCK_BYTES};
use crate::bufferpool::{BlockKey, BufferPool, PoolValue};
use crate::device::{DeviceId, IoSession};
use crate::error::{IoResultExt, StorageError, StorageResult};
use crate::faults::FaultPlan;
use crate::record::{AtomKey, AtomRecord};

const FOOTER_MAGIC: u32 = 0x7db1_f007;

/// Bounded retry budget for transient block-read failures.
const MAX_READ_ATTEMPTS: u32 = 3;
/// Modelled backoff charged before retry `n` (doubles per attempt), seconds.
const RETRY_BACKOFF_S: f64 = 2e-3;

/// A checksum-verified, parsed partition block as held by the buffer
/// pool. Decoding (including codec reconstruction) happens once, on the
/// miss path; the pool budget tracks the *decoded* footprint while the
/// device accounting charges the on-disk (possibly compressed) bytes.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    pub records: Arc<Vec<AtomRecord>>,
    /// Bytes read from the device (compressed size for V2 blocks).
    pub disk_len: u32,
    /// Bytes the decoded records occupy in memory.
    pub logical_len: u64,
}

impl PoolValue for DecodedBlock {
    fn weight(&self) -> usize {
        self.logical_len as usize
    }
}

/// The buffer-pool type partition readers share.
pub type BlockCache = BufferPool<DecodedBlock>;

/// Fence-index entry: one block's key range and file location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fence {
    pub first: AtomKey,
    pub last: AtomKey,
    pub offset: u64,
    pub len: u32,
}

/// Streaming bulk-load writer. Records must arrive in strictly increasing
/// key order; blocks are cut near [`TARGET_BLOCK_BYTES`].
pub struct PartitionWriter {
    file: File,
    path: PathBuf,
    ncomp: u8,
    codec: CompressionConfig,
    fences: Vec<Fence>,
    pending: Vec<AtomRecord>,
    pending_bytes: usize,
    offset: u64,
    last_key: Option<AtomKey>,
}

impl PartitionWriter {
    /// Creates (truncates) the partition file in the seed (uncompressed)
    /// format.
    pub fn create(path: impl AsRef<Path>, ncomp: u8) -> StorageResult<Self> {
        Self::create_with(path, ncomp, CompressionConfig::default())
    }

    /// Creates (truncates) the partition file, writing blocks under
    /// `codec`. [`CompressionMode::Off`] keeps the seed format
    /// byte-identical.
    pub fn create_with(
        path: impl AsRef<Path>,
        ncomp: u8,
        codec: CompressionConfig,
    ) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).at_file(path.display().to_string())?;
        Ok(Self {
            file,
            path,
            ncomp,
            codec,
            fences: Vec::new(),
            pending: Vec::new(),
            pending_bytes: 0,
            offset: 0,
            last_key: None,
        })
    }

    /// Appends one record; keys must strictly increase.
    pub fn append(&mut self, rec: AtomRecord) -> StorageResult<()> {
        if rec.ncomp != self.ncomp {
            return Err(StorageError::SchemaMismatch {
                expected_ncomp: self.ncomp,
                got_ncomp: rec.ncomp,
            });
        }
        if let Some(last) = self.last_key {
            if rec.key <= last {
                return Err(StorageError::KeyOrder {
                    detail: format!("{:?} after {:?}", rec.key, last),
                });
            }
        }
        self.last_key = Some(rec.key);
        self.pending_bytes += AtomRecord::encoded_len(rec.ncomp);
        self.pending.push(rec);
        if self.pending_bytes >= TARGET_BLOCK_BYTES {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> StorageResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let (Some(first), Some(last)) = (self.pending.first(), self.pending.last()) else {
            return Ok(());
        };
        let (first, last) = (first.key, last.key);
        let (blk, stats) = encode_block_with(&self.pending, &self.codec);
        if self.codec.is_active() {
            let m = tdb_obs::global();
            match self.codec.mode {
                CompressionMode::Lossless => m.counter("compress.blocks.lossless").inc(),
                CompressionMode::Lossy => m.counter("compress.blocks.lossy").inc(),
                CompressionMode::Off => {}
            }
            m.counter("compress.bytes.logical").add(stats.logical_bytes);
            m.counter("compress.bytes.stored").add(stats.stored_bytes);
            m.counter("compress.corrections").add(stats.corrections);
            // worst uncorrected error ever written, in microns of value
            let micro = (stats.max_error * 1e6).ceil() as i64;
            let g = m.gauge("compress.max_error_micro");
            if micro > g.get() {
                g.set(micro);
            }
        }
        self.file
            .write_all(&blk)
            .at_file(self.path.display().to_string())?;
        self.fences.push(Fence {
            first,
            last,
            offset: self.offset,
            len: blk.len() as u32,
        });
        self.offset += blk.len() as u64;
        self.pending.clear();
        self.pending_bytes = 0;
        Ok(())
    }

    /// Flushes the tail block and writes the footer.
    pub fn finish(mut self) -> StorageResult<PathBuf> {
        self.flush_block()?;
        let mut footer = BytesMut::new();
        for f in &self.fences {
            f.first.encode(&mut footer);
            f.last.encode(&mut footer);
            footer.put_u64(f.offset);
            footer.put_u32(f.len);
        }
        footer.put_u32(self.fences.len() as u32);
        footer.put_u8(self.ncomp);
        footer.put_u64(self.offset); // start of footer
        footer.put_u32(FOOTER_MAGIC);
        let path_str = self.path.display().to_string();
        self.file.write_all(&footer).at_file(&path_str)?;
        self.file.sync_all().at_file(&path_str)?;
        Ok(self.path)
    }
}

/// Read handle over a finished partition file. Block reads go through the
/// node's shared [`BufferPool`]; misses charge the owning disk array in the
/// caller's [`IoSession`].
pub struct PartitionReader {
    file: File,
    path: String,
    file_id: u64,
    device: DeviceId,
    pool: Arc<BlockCache>,
    ncomp: u8,
    fences: Vec<Fence>,
}

impl PartitionReader {
    /// Opens a partition file and loads its fence index.
    pub fn open(
        path: impl AsRef<Path>,
        file_id: u64,
        device: DeviceId,
        pool: Arc<BlockCache>,
    ) -> StorageResult<Self> {
        let path_str = path.as_ref().display().to_string();
        let mut file = File::open(&path).at_file(&path_str)?;
        let total = file.seek(SeekFrom::End(0)).at_file(&path_str)?;
        if total < 17 {
            return Err(StorageError::Corrupt {
                file: path_str,
                detail: "file shorter than footer trailer".into(),
            });
        }
        let mut trailer = [0u8; 17];
        file.read_exact_at(&mut trailer, total - 17)
            .at_file(&path_str)?;
        let mut t = &trailer[..];
        let nfences = t.get_u32() as usize;
        let ncomp = t.get_u8();
        let footer_start = t.get_u64();
        let magic = t.get_u32();
        if magic != FOOTER_MAGIC {
            return Err(StorageError::Corrupt {
                file: path_str,
                detail: format!("bad footer magic {magic:#x}"),
            });
        }
        let fence_bytes = nfences
            .checked_mul(36)
            .filter(|&n| footer_start + n as u64 + 17 == total)
            .ok_or_else(|| StorageError::Corrupt {
                file: path_str.clone(),
                detail: "footer geometry inconsistent".into(),
            })?;
        let mut buf = vec![0u8; fence_bytes];
        file.read_exact_at(&mut buf, footer_start)
            .at_file(&path_str)?;
        let mut b = Bytes::from(buf);
        let mut fences = Vec::with_capacity(nfences);
        for _ in 0..nfences {
            let first = AtomKey::decode(&mut b);
            let last = AtomKey::decode(&mut b);
            let offset = b.get_u64();
            let len = b.get_u32();
            fences.push(Fence {
                first,
                last,
                offset,
                len,
            });
        }
        Ok(Self {
            file,
            path: path_str,
            file_id,
            device,
            pool,
            ncomp,
            fences,
        })
    }

    /// Component count of stored records.
    pub fn ncomp(&self) -> u8 {
        self.ncomp
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.fences.len()
    }

    /// Smallest and largest key, or `None` for an empty partition.
    pub fn key_range(&self) -> Option<(AtomKey, AtomKey)> {
        match (self.fences.first(), self.fences.last()) {
            (Some(f), Some(l)) => Some((f.first, l.last)),
            _ => None,
        }
    }

    /// Reads one block through the buffer pool; a miss charges the disk
    /// array one request plus the block's bytes. The per-request latency
    /// in the array profile is calibrated to the *effective* block-read
    /// rate of the paper's nodes (partial sequentiality and read-ahead
    /// included), so every miss pays it.
    ///
    /// Transient failures (injected or retryable I/O kinds) get a bounded
    /// retry with modelled exponential backoff; the retry happens inside
    /// the loader so the pool still counts a single miss. Permanent
    /// failures propagate immediately with the partition path attached.
    fn read_block(
        &self,
        idx: usize,
        fence: Fence,
        session: &mut IoSession,
    ) -> StorageResult<DecodedBlock> {
        let key = BlockKey {
            file_id: self.file_id,
            block_no: idx as u32,
        };
        let plan = self.pool.fault_plan().cloned();
        self.pool.get_or_load(key, session, |s| {
            let mut attempt = 1u32;
            loop {
                match self.load_block_once(fence, idx, plan.as_deref(), attempt, s) {
                    Ok(block) => {
                        if attempt > 1 {
                            tdb_obs::global()
                                .counter("storage.read.retry_success")
                                .inc();
                        }
                        return Ok(block);
                    }
                    Err(e) if e.is_transient() && attempt < MAX_READ_ATTEMPTS => {
                        tdb_obs::global().counter("storage.read.retries").inc();
                        s.injected_delay_s += RETRY_BACKOFF_S * f64::from(1u32 << (attempt - 1));
                        attempt += 1;
                    }
                    Err(e) => return Err(e.in_file(&self.path)),
                }
            }
        })
    }

    /// One attempt at reading block `idx` from disk: consults the fault
    /// plan first (a fired fault replaces the device access), then performs
    /// the real positioned read and decode.
    fn load_block_once(
        &self,
        fence: Fence,
        idx: usize,
        plan: Option<&FaultPlan>,
        attempt: u32,
        s: &mut IoSession,
    ) -> StorageResult<DecodedBlock> {
        if let Some(plan) = plan {
            let f = plan.block_read_fault(self.file_id, idx as u32, attempt);
            s.injected_delay_s += f.latency_s;
            if f.corrupt {
                return Err(StorageError::Corrupt {
                    file: self.path.clone(),
                    detail: format!("injected corruption in block {idx}"),
                });
            }
            if f.transient {
                // the request was issued and failed: charge the seek, no bytes
                s.charge(self.device, 1, 0);
                return Err(StorageError::Injected {
                    site: "block_read".into(),
                    detail: format!("transient read failure, block {idx} attempt {attempt}"),
                    transient: true,
                });
            }
        }
        let mut buf = vec![0u8; fence.len as usize];
        self.file
            .read_exact_at(&mut buf, fence.offset)
            .at_file(&self.path)?;
        s.charge(self.device, 1, u64::from(fence.len));
        let started = std::time::Instant::now();
        let (records, meta) = decode_block_meta(Bytes::from(buf), &self.path)?;
        if meta.compressed {
            tdb_obs::global()
                .histogram("compress.reconstruct_s")
                .observe(started.elapsed().as_secs_f64());
        }
        Ok(DecodedBlock {
            records: Arc::new(records),
            disk_len: fence.len,
            logical_len: meta.logical_bytes,
        })
    }

    /// All records with `lo <= key <= hi`, in key order.
    pub fn scan_range(
        &self,
        lo: AtomKey,
        hi: AtomKey,
        session: &mut IoSession,
    ) -> StorageResult<Vec<AtomRecord>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        // first block whose last key >= lo
        let start = self.fences.partition_point(|f| f.last < lo);
        let mut out = Vec::new();
        for (idx, fence) in self.fences.iter().enumerate().skip(start) {
            if fence.first > hi {
                break;
            }
            let block = self.read_block(idx, *fence, session)?;
            for r in block.records.iter() {
                if r.key >= lo && r.key <= hi {
                    out.push(r.clone());
                }
            }
        }
        Ok(out)
    }

    /// Point lookup.
    pub fn get(&self, key: AtomKey, session: &mut IoSession) -> StorageResult<Option<AtomRecord>> {
        let mut v = self.scan_range(key, key, session)?;
        Ok(v.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRule;
    use proptest::prelude::*;
    use tdb_zorder::ATOM_POINTS;

    fn rec(ts: u32, z: u64) -> AtomRecord {
        let data = (0..ATOM_POINTS)
            .map(|i| (i as f32) + (ts as f32) * 1000.0 + z as f32)
            .collect();
        AtomRecord::new(AtomKey::new(ts, z), 1, data).unwrap()
    }

    fn build(dir: &Path, keys: &[(u32, u64)]) -> PartitionReader {
        let path = dir.join("part_0.tdb");
        let mut w = PartitionWriter::create(&path, 1).unwrap();
        for &(ts, z) in keys {
            w.append(rec(ts, z)).unwrap();
        }
        w.finish().unwrap();
        let mut reg = crate::device::DeviceRegistry::new();
        let dev = reg.register(crate::device::DeviceProfile::hdd_array());
        PartitionReader::open(&path, 1, dev, Arc::new(BlockCache::new(1 << 20))).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tdb_sstable_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let keys: Vec<(u32, u64)> = (0u32..50)
            .map(|i| (i / 25, u64::from(i % 25) * 2))
            .collect();
        let r = build(&dir, &keys);
        assert!(r.num_blocks() >= 2, "multi-block file expected");
        let mut s = IoSession::new();
        let all = r
            .scan_range(AtomKey::new(0, 0), AtomKey::new(9, u64::MAX), &mut s)
            .unwrap();
        assert_eq!(all.len(), 50);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        assert!(s.total_bytes() > 0);
    }

    #[test]
    fn range_scan_is_selective() {
        let dir = tmpdir("selective");
        let keys: Vec<(u32, u64)> = (0u32..200).map(|i| (0, u64::from(i) * 3)).collect();
        let r = build(&dir, &keys);
        let mut s = IoSession::new();
        let hit = r
            .scan_range(AtomKey::new(0, 30), AtomKey::new(0, 60), &mut s)
            .unwrap();
        assert_eq!(hit.len(), 11); // z = 30,33,...,60
                                   // selective scan touches few blocks
        assert!(s.pool_misses < r.num_blocks() as u64);
        let empty = r
            .scan_range(AtomKey::new(5, 0), AtomKey::new(5, 10), &mut s)
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn point_get() {
        let dir = tmpdir("get");
        let r = build(&dir, &[(0, 2), (0, 4), (1, 0)]);
        let mut s = IoSession::new();
        let g = r.get(AtomKey::new(0, 4), &mut s).unwrap().unwrap();
        assert_eq!(g.key, AtomKey::new(0, 4));
        assert!(r.get(AtomKey::new(0, 3), &mut s).unwrap().is_none());
    }

    #[test]
    fn buffer_pool_absorbs_repeat_scans() {
        let dir = tmpdir("pool");
        let keys: Vec<(u32, u64)> = (0u32..60).map(|i| (0, u64::from(i))).collect();
        let r = build(&dir, &keys);
        let mut s1 = IoSession::new();
        r.scan_range(AtomKey::new(0, 0), AtomKey::new(0, 59), &mut s1)
            .unwrap();
        assert!(s1.pool_misses > 0);
        let mut s2 = IoSession::new();
        r.scan_range(AtomKey::new(0, 0), AtomKey::new(0, 59), &mut s2)
            .unwrap();
        assert_eq!(s2.pool_misses, 0, "second scan should be all pool hits");
        assert_eq!(s2.total_bytes(), 0);
    }

    #[test]
    fn writer_rejects_out_of_order_and_schema() {
        let dir = tmpdir("order");
        let mut w = PartitionWriter::create(dir.join("p.tdb"), 1).unwrap();
        w.append(rec(0, 5)).unwrap();
        assert!(matches!(
            w.append(rec(0, 5)),
            Err(StorageError::KeyOrder { .. })
        ));
        assert!(matches!(
            w.append(rec(0, 3)),
            Err(StorageError::KeyOrder { .. })
        ));
        let bad = AtomRecord::new(AtomKey::new(0, 9), 3, vec![0.0; 3 * ATOM_POINTS]).unwrap();
        assert!(matches!(
            w.append(bad),
            Err(StorageError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_footer_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("p.tdb");
        let mut w = PartitionWriter::create(&path, 1).unwrap();
        w.append(rec(0, 1)).unwrap();
        w.finish().unwrap();
        // flip a byte in the trailer
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let mut reg = crate::device::DeviceRegistry::new();
        let dev = reg.register(crate::device::DeviceProfile::hdd_array());
        let r = PartitionReader::open(&path, 1, dev, Arc::new(BlockCache::new(1024)));
        assert!(matches!(r, Err(StorageError::Corrupt { .. })));
    }

    fn build_faulted(dir: &Path, keys: &[(u32, u64)], plan: Arc<FaultPlan>) -> PartitionReader {
        let path = dir.join("part_f.tdb");
        let mut w = PartitionWriter::create(&path, 1).unwrap();
        for &(ts, z) in keys {
            w.append(rec(ts, z)).unwrap();
        }
        w.finish().unwrap();
        let mut reg = crate::device::DeviceRegistry::new();
        let dev = reg.register(crate::device::DeviceProfile::hdd_array());
        let pool = Arc::new(BlockCache::with_faults(1 << 20, Some(plan)));
        PartitionReader::open(&path, 1, dev, pool).unwrap()
    }

    #[test]
    fn transient_faults_retry_to_byte_identical_scan() {
        let dir = tmpdir("transient");
        let keys: Vec<(u32, u64)> = (0u32..200).map(|i| (0, u64::from(i))).collect();
        // p = 0.4 per attempt: a block only fails outright if three
        // consecutive rolls fire (6.4%); seed 66 clears every block here.
        let plan = FaultPlan::new(66)
            .with_rule(FaultRule::transient_reads(0.4))
            .shared();
        let faulted = build_faulted(&dir, &keys, plan.clone());
        let clean = build(&dir, &keys);
        let lo = AtomKey::new(0, 0);
        let hi = AtomKey::new(0, 199);
        let mut sf = IoSession::new();
        let got = faulted.scan_range(lo, hi, &mut sf).unwrap();
        let mut sc = IoSession::new();
        let want = clean.scan_range(lo, hi, &mut sc).unwrap();
        assert_eq!(got, want, "retried scan must be byte-identical");
        assert!(plan.counts().transient > 0, "some faults must have fired");
        assert!(
            sf.injected_delay_s > 0.0,
            "retry backoff must show up in the modelled time"
        );
    }

    #[test]
    fn exhausted_retries_surface_a_transient_error() {
        let dir = tmpdir("exhausted");
        let keys: Vec<(u32, u64)> = (0u32..10).map(|i| (0, u64::from(i))).collect();
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::transient_reads(1.0))
            .shared();
        let r = build_faulted(&dir, &keys, plan);
        let mut s = IoSession::new();
        let e = r
            .scan_range(AtomKey::new(0, 0), AtomKey::new(0, 9), &mut s)
            .unwrap_err();
        assert!(e.is_transient(), "error class survives retry exhaustion");
        assert!(e.to_string().contains("block_read"), "{e}");
    }

    #[test]
    fn injected_corruption_names_the_file_and_block() {
        let dir = tmpdir("injcorrupt");
        let keys: Vec<(u32, u64)> = (0u32..10).map(|i| (0, u64::from(i))).collect();
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::corrupt_block(1, 0))
            .shared();
        let r = build_faulted(&dir, &keys, plan);
        let mut s = IoSession::new();
        let e = r
            .scan_range(AtomKey::new(0, 0), AtomKey::new(0, 9), &mut s)
            .unwrap_err();
        assert!(matches!(e, StorageError::Corrupt { .. }));
        let msg = e.to_string();
        assert!(
            msg.contains("part_f.tdb") && msg.contains("block 0"),
            "{msg}"
        );
    }

    #[test]
    fn latency_faults_charge_modelled_delay_only() {
        let dir = tmpdir("latency");
        let keys: Vec<(u32, u64)> = (0u32..50).map(|i| (0, u64::from(i))).collect();
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::slow_reads(1.0, 0.01))
            .shared();
        let r = build_faulted(&dir, &keys, plan);
        let mut s = IoSession::new();
        let got = r
            .scan_range(AtomKey::new(0, 0), AtomKey::new(0, 49), &mut s)
            .unwrap();
        assert_eq!(got.len(), 50, "latency faults never lose data");
        let expected = 0.01 * s.pool_misses as f64;
        assert!(
            (s.injected_delay_s - expected).abs() < 1e-9,
            "one delay per faulted miss: {} vs {expected}",
            s.injected_delay_s
        );
        // pool hits skip the plan entirely
        let mut s2 = IoSession::new();
        r.scan_range(AtomKey::new(0, 0), AtomKey::new(0, 49), &mut s2)
            .unwrap();
        assert_eq!(s2.injected_delay_s, 0.0);
    }

    // Smooth in lattice coordinates, matching the sub-sampled spatial codec.
    fn smooth_rec(ts: u32, zidx: u64) -> AtomRecord {
        let data = (0..ATOM_POINTS)
            .map(|i| {
                let (x, y, z) = (i % 8, (i / 8) % 8, i / 64);
                let phase = zidx as f64 * 0.05 + ts as f64 * 0.1;
                ((x as f64 * 0.25 + phase).sin() * (y as f64 * 0.2).cos() + 0.1 * z as f64) as f32
            })
            .collect();
        AtomRecord::new(AtomKey::new(ts, zidx), 1, data).unwrap()
    }

    fn build_codec(
        dir: &Path,
        name: &str,
        keys: &[(u32, u64)],
        codec: CompressionConfig,
    ) -> PartitionReader {
        let path = dir.join(format!("{name}.tdb"));
        let mut w = PartitionWriter::create_with(&path, 1, codec).unwrap();
        for &(ts, z) in keys {
            w.append(smooth_rec(ts, z)).unwrap();
        }
        w.finish().unwrap();
        let mut reg = crate::device::DeviceRegistry::new();
        let dev = reg.register(crate::device::DeviceProfile::hdd_array());
        PartitionReader::open(&path, 1, dev, Arc::new(BlockCache::new(1 << 22))).unwrap()
    }

    #[test]
    fn lossless_partition_scan_is_bitwise_identical_and_charges_fewer_bytes() {
        let dir = tmpdir("lossless");
        let keys: Vec<(u32, u64)> = (0u32..120).map(|i| (0, u64::from(i))).collect();
        let clean = build_codec(&dir, "clean", &keys, CompressionConfig::default());
        let comp = build_codec(&dir, "lossless", &keys, CompressionConfig::lossless());
        let lo = AtomKey::new(0, 0);
        let hi = AtomKey::new(0, 119);
        let mut sc = IoSession::new();
        let want = clean.scan_range(lo, hi, &mut sc).unwrap();
        let mut sf = IoSession::new();
        let got = comp.scan_range(lo, hi, &mut sf).unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.key, b.key);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(
            sf.total_bytes() < sc.total_bytes(),
            "compressed cold scan must move fewer device bytes: {} vs {}",
            sf.total_bytes(),
            sc.total_bytes()
        );
    }

    #[test]
    fn lossy_partition_scan_stays_within_bound_and_beats_4x() {
        let dir = tmpdir("lossy");
        let keys: Vec<(u32, u64)> = (0u32..120).map(|i| (0, u64::from(i))).collect();
        let bound = 1e-3;
        let clean = build_codec(&dir, "clean4x", &keys, CompressionConfig::default());
        let comp = build_codec(&dir, "lossy4x", &keys, CompressionConfig::lossy(2, bound));
        let lo = AtomKey::new(0, 0);
        let hi = AtomKey::new(0, 119);
        let mut sc = IoSession::new();
        let want = clean.scan_range(lo, hi, &mut sc).unwrap();
        let mut sf = IoSession::new();
        let got = comp.scan_range(lo, hi, &mut sf).unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            for (x, y) in a.data.iter().zip(&b.data) {
                assert!((f64::from(*x) - f64::from(*y)).abs() <= bound);
            }
        }
        assert!(
            sf.total_bytes() * 4 <= sc.total_bytes(),
            "lossy cold scan must move ≥4× fewer device bytes: {} vs {}",
            sf.total_bytes(),
            sc.total_bytes()
        );
    }

    #[test]
    fn transient_faults_on_compressed_partition_retry_byte_identical() {
        let dir = tmpdir("comp_transient");
        let keys: Vec<(u32, u64)> = (0u32..150).map(|i| (0, u64::from(i))).collect();
        let plan = FaultPlan::new(66)
            .with_rule(FaultRule::transient_reads(0.4))
            .shared();
        let path = dir.join("comp_f.tdb");
        let mut w = PartitionWriter::create_with(&path, 1, CompressionConfig::lossless()).unwrap();
        for &(ts, z) in &keys {
            w.append(smooth_rec(ts, z)).unwrap();
        }
        w.finish().unwrap();
        let mut reg = crate::device::DeviceRegistry::new();
        let dev = reg.register(crate::device::DeviceProfile::hdd_array());
        let pool = Arc::new(BlockCache::with_faults(1 << 22, Some(plan.clone())));
        let faulted = PartitionReader::open(&path, 1, dev, pool).unwrap();
        let clean = build_codec(&dir, "comp_c", &keys, CompressionConfig::lossless());
        let lo = AtomKey::new(0, 0);
        let hi = AtomKey::new(0, 149);
        let mut sf = IoSession::new();
        let got = faulted.scan_range(lo, hi, &mut sf).unwrap();
        let mut sc = IoSession::new();
        let want = clean.scan_range(lo, hi, &mut sc).unwrap();
        assert_eq!(got, want, "retried compressed scan must be byte-identical");
        assert!(plan.counts().transient > 0, "some faults must have fired");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn scan_matches_reference_model(
            zs in prop::collection::btree_set(0u64..500, 1..80),
            lo in 0u64..500, span in 0u64..500,
        ) {
            let dir = tmpdir("prop");
            let keys: Vec<(u32, u64)> = zs.iter().map(|&z| (0, z)).collect();
            let r = build(&dir, &keys);
            let hi = lo.saturating_add(span);
            let mut s = IoSession::new();
            let got: Vec<u64> = r
                .scan_range(AtomKey::new(0, lo), AtomKey::new(0, hi), &mut s)
                .unwrap()
                .into_iter()
                .map(|rec| rec.key.zindex)
                .collect();
            let expect: Vec<u64> = zs.iter().copied().filter(|&z| z >= lo && z <= hi).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
