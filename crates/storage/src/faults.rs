//! Deterministic, seeded fault injection for the storage and query path.
//!
//! The paper's system is the production threshold-query subsystem of the
//! public JHTDB cluster, where disks throw transient errors, cached
//! entries rot, and whole nodes drop out while queries keep arriving. A
//! [`FaultPlan`] lets tests and experiments inject exactly those failures
//! — transient I/O errors, permanent block corruption, added latency, and
//! whole-node outages — **deterministically**: every decision is a pure
//! hash of `(seed, site, identity, attempt)`, so outcomes are independent
//! of thread scheduling and reproducible from a single seed
//! (`TDB_FAULT_SEED` in CI).
//!
//! A plan is threaded through the stack by configuration:
//! `ClusterConfig::faults` → each node's [`crate::BufferPool`] (block
//! reads), its semantic cache (insert-time corruption), and the mediator
//! (node outages). Injected latency and retry backoff are *modelled* — they
//! accumulate in [`crate::IoSession::injected_delay_s`], never in real
//! sleeps — so faulted runs stay fast and deterministic.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Where in the pipeline a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A partition-block read off a disk array.
    BlockRead,
    /// A semantic-cache insert (the stored entry is silently corrupted).
    CacheInsert,
}

/// What the rule injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A retryable I/O error (the next attempt re-rolls the dice).
    Transient,
    /// Permanent corruption: the read fails checksum-style, every attempt.
    Corrupt,
    /// Extra modelled latency added to the session, in seconds.
    Latency { seconds: f64 },
}

/// One injection rule: a site, a kind, a firing probability, and optional
/// exact-match selectors.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub site: FaultSite,
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that the rule fires at a matching site.
    pub probability: f64,
    /// Restrict to one partition file (`None` = any).
    pub file_id: Option<u64>,
    /// Restrict to one block (`None` = any).
    pub block_no: Option<u32>,
}

impl FaultRule {
    /// Transient read errors on a fraction of all block reads.
    pub fn transient_reads(probability: f64) -> Self {
        Self {
            site: FaultSite::BlockRead,
            kind: FaultKind::Transient,
            probability,
            file_id: None,
            block_no: None,
        }
    }

    /// Permanent corruption of one specific block.
    pub fn corrupt_block(file_id: u64, block_no: u32) -> Self {
        Self {
            site: FaultSite::BlockRead,
            kind: FaultKind::Corrupt,
            probability: 1.0,
            file_id: Some(file_id),
            block_no: Some(block_no),
        }
    }

    /// Extra modelled seconds on a fraction of block reads (a slow disk).
    pub fn slow_reads(probability: f64, seconds: f64) -> Self {
        Self {
            site: FaultSite::BlockRead,
            kind: FaultKind::Latency { seconds },
            probability,
            file_id: None,
            block_no: None,
        }
    }

    /// Corrupt a fraction of semantic-cache inserts (bad SSD cells).
    pub fn corrupt_cache_inserts(probability: f64) -> Self {
        Self {
            site: FaultSite::CacheInsert,
            kind: FaultKind::Corrupt,
            probability,
            file_id: None,
            block_no: None,
        }
    }

    fn matches_block(&self, file_id: u64, block_no: u32) -> bool {
        self.site == FaultSite::BlockRead
            && self.file_id.map_or(true, |f| f == file_id)
            && self.block_no.map_or(true, |b| b == block_no)
    }
}

/// Aggregated outcome of consulting the plan for one block-read attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockReadFault {
    /// Modelled latency to add to the session before the read, seconds.
    pub latency_s: f64,
    /// The attempt fails with a retryable error.
    pub transient: bool,
    /// The block is permanently corrupt (retries cannot help).
    pub corrupt: bool,
}

/// Injection counters, visible to tests regardless of what other threads
/// do to the process-global metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub transient: u64,
    pub corrupt: u64,
    pub latency: u64,
    pub node_down: u64,
}

/// A deterministic fault-injection plan shared by a whole cluster.
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    down_nodes: Mutex<BTreeSet<usize>>,
    n_transient: AtomicU64,
    n_corrupt: AtomicU64,
    n_latency: AtomicU64,
    n_node_down: AtomicU64,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules)
            .field("down_nodes", &*self.down_nodes.lock())
            .finish()
    }
}

impl FaultPlan {
    /// Empty plan (no rules, no down nodes) with a decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
            down_nodes: Mutex::new(BTreeSet::new()),
            n_transient: AtomicU64::new(0),
            n_corrupt: AtomicU64::new(0),
            n_latency: AtomicU64::new(0),
            n_node_down: AtomicU64::new(0),
        }
    }

    /// Seed from the `TDB_FAULT_SEED` environment variable (used by CI for
    /// reproducible injected-fault runs), falling back to `default`.
    pub fn seed_from_env(default: u64) -> u64 {
        std::env::var("TDB_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default)
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Wraps the plan for sharing across nodes.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Marks a node dead or alive (takes effect on its next subquery).
    pub fn set_node_down(&self, node: usize, down: bool) {
        let mut set = self.down_nodes.lock();
        if down {
            set.insert(node);
        } else {
            set.remove(&node);
        }
    }

    /// Whether a node is currently marked dead. Counts the check as an
    /// injected node-outage when it is.
    pub fn node_is_down(&self, node: usize) -> bool {
        let down = self.down_nodes.lock().contains(&node);
        if down {
            self.n_node_down.fetch_add(1, Ordering::Relaxed);
            tdb_obs::add("faults.injected.node_down", 1);
        }
        down
    }

    /// Consults every rule for one block-read attempt. Latency rules
    /// accumulate; the strongest failure (corrupt > transient) wins.
    /// Deterministic in `(seed, file_id, block_no, attempt)`.
    pub fn block_read_fault(&self, file_id: u64, block_no: u32, attempt: u32) -> BlockReadFault {
        let mut out = BlockReadFault::default();
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.matches_block(file_id, block_no) {
                continue;
            }
            let roll = self.roll(&[
                1,
                i as u64,
                file_id,
                u64::from(block_no),
                u64::from(attempt),
            ]);
            if roll >= rule.probability {
                continue;
            }
            match rule.kind {
                FaultKind::Transient => {
                    if !out.transient && !out.corrupt {
                        self.n_transient.fetch_add(1, Ordering::Relaxed);
                        tdb_obs::add("faults.injected.transient", 1);
                    }
                    out.transient = true;
                }
                FaultKind::Corrupt => {
                    if !out.corrupt {
                        self.n_corrupt.fetch_add(1, Ordering::Relaxed);
                        tdb_obs::add("faults.injected.corrupt", 1);
                    }
                    out.corrupt = true;
                }
                FaultKind::Latency { seconds } => {
                    out.latency_s += seconds;
                    self.n_latency.fetch_add(1, Ordering::Relaxed);
                    tdb_obs::add("faults.injected.latency", 1);
                }
            }
        }
        out
    }

    /// Whether a semantic-cache insert for `key_hash` silently corrupts
    /// the stored entry. Deterministic in `(seed, key_hash)`.
    pub fn cache_insert_corrupts(&self, key_hash: u64) -> bool {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.site != FaultSite::CacheInsert || !matches!(rule.kind, FaultKind::Corrupt) {
                continue;
            }
            if self.roll(&[2, i as u64, key_hash]) < rule.probability {
                self.n_corrupt.fetch_add(1, Ordering::Relaxed);
                tdb_obs::add("faults.injected.corrupt", 1);
                return true;
            }
        }
        false
    }

    /// Snapshot of this plan's injection counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            transient: self.n_transient.load(Ordering::Relaxed),
            corrupt: self.n_corrupt.load(Ordering::Relaxed),
            latency: self.n_latency.load(Ordering::Relaxed),
            node_down: self.n_node_down.load(Ordering::Relaxed),
        }
    }

    /// Uniform roll in `[0, 1)` from the seed and a decision identity.
    fn roll(&self, parts: &[u64]) -> f64 {
        let mut h = splitmix64(self.seed);
        for &p in parts {
            h = splitmix64(h ^ p);
        }
        // use the top 53 bits for an unbiased double in [0, 1)
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 finaliser: a well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(42).with_rule(FaultRule::transient_reads(0.5));
        let b = FaultPlan::new(42).with_rule(FaultRule::transient_reads(0.5));
        let c = FaultPlan::new(43).with_rule(FaultRule::transient_reads(0.5));
        let mut differs = false;
        for block in 0..64u32 {
            let fa = a.block_read_fault(7, block, 1);
            assert_eq!(fa, b.block_read_fault(7, block, 1));
            if fa != c.block_read_fault(7, block, 1) {
                differs = true;
            }
        }
        assert!(differs, "different seeds must change some decisions");
    }

    #[test]
    fn probability_controls_fire_rate() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::transient_reads(0.1));
        let fired = (0..10_000u32)
            .filter(|&b| plan.block_read_fault(0, b, 1).transient)
            .count();
        // 10% ± generous slack
        assert!((700..1300).contains(&fired), "fired {fired}/10000");
    }

    #[test]
    fn retry_attempts_reroll() {
        let plan = FaultPlan::new(9).with_rule(FaultRule::transient_reads(0.5));
        // some block that faults on attempt 1 must clear within a few tries
        let block = (0..1000u32)
            .find(|&b| plan.block_read_fault(0, b, 1).transient)
            .expect("some block faults");
        let cleared = (2..=8u32).any(|a| !plan.block_read_fault(0, block, a).transient);
        assert!(cleared, "a 50% transient fault must clear on some retry");
    }

    #[test]
    fn exact_block_match_is_surgical() {
        let plan = FaultPlan::new(5).with_rule(FaultRule::corrupt_block(11, 3));
        assert!(plan.block_read_fault(11, 3, 1).corrupt);
        assert!(
            plan.block_read_fault(11, 3, 9).corrupt,
            "corruption persists"
        );
        assert!(!plan.block_read_fault(11, 4, 1).corrupt);
        assert!(!plan.block_read_fault(12, 3, 1).corrupt);
    }

    #[test]
    fn latency_accumulates_across_rules() {
        let plan = FaultPlan::new(0)
            .with_rule(FaultRule::slow_reads(1.0, 0.25))
            .with_rule(FaultRule::slow_reads(1.0, 0.75));
        let f = plan.block_read_fault(1, 1, 1);
        assert!((f.latency_s - 1.0).abs() < 1e-12);
        assert!(!f.transient && !f.corrupt);
        assert_eq!(plan.counts().latency, 2);
    }

    #[test]
    fn node_down_toggles_and_counts() {
        let plan = FaultPlan::new(0);
        assert!(!plan.node_is_down(2));
        plan.set_node_down(2, true);
        assert!(plan.node_is_down(2));
        plan.set_node_down(2, false);
        assert!(!plan.node_is_down(2));
        assert_eq!(plan.counts().node_down, 1);
    }

    #[test]
    fn cache_insert_corruption_is_keyed() {
        let plan = FaultPlan::new(3).with_rule(FaultRule::corrupt_cache_inserts(0.5));
        let fired: Vec<bool> = (0..32u64).map(|k| plan.cache_insert_corrupts(k)).collect();
        assert!(fired.iter().any(|&f| f) && fired.iter().any(|&f| !f));
        // deterministic per key
        for k in 0..32u64 {
            assert_eq!(plan.cache_insert_corrupts(k), fired[k as usize]);
        }
    }
}
