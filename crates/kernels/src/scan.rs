//! Threshold and PDF scan kernels over evaluated derived-field chunks.
//!
//! The cold-query inner loop of the paper — Morton encode → `f64`
//! threshold compare over every point of the evaluated norm field — lives
//! here so cluster nodes, benches, and tests share one implementation.
//! Two paths are provided:
//!
//! * [`threshold_scan_clip`] — the production chunked scan: per-row flat
//!   slices, a branch-free hit-count prepass that skips non-matching rows
//!   and reserves output exactly once, and a [`MortonRow`] encoder that
//!   hoists the `y`/`z` bit spreads out of the x-loop.
//! * [`threshold_scan_clip_scalar`] — the original per-point loop, kept as
//!   the semantic reference for the bitwise-identity proptests and as the
//!   micro-bench baseline.
//!
//! Both compare in `f64` (a threshold like `25.000000001` must exclude a
//! stored `25.0`) and emit hits in ascending `(z, y, x)` grid order.

use tdb_field::{Histogram, ScalarField};
use tdb_zorder::{encode3, Box3, MortonRow};

/// One scan hit: the point's Morton code and its field value.
pub type ScanHit = (u64, f32);

#[inline]
fn clip_offsets(domain: &Box3, clip: &Box3) -> (usize, usize, usize) {
    let (dlx, dly, dlz) = domain.lo3();
    let (clx, cly, clz) = clip.lo3();
    (
        (clx - dlx) as usize,
        (cly - dly) as usize,
        (clz - dlz) as usize,
    )
}

/// Chunked threshold scan of the `clip` sub-box of a norm field evaluated
/// over `domain`, appending hits to `out`.
///
/// Bit-identical to [`threshold_scan_clip_scalar`]: same `f64` compare,
/// same hit order, same values — only the loop structure differs.
pub fn threshold_scan_clip(
    norm: &ScalarField,
    domain: &Box3,
    clip: &Box3,
    threshold: f64,
    out: &mut Vec<ScanHit>,
) {
    let (ox, oy, oz) = clip_offsets(domain, clip);
    let (cnx, cny, cnz) = clip.extent3();
    let (clx, cly, clz) = clip.lo3();
    for z in 0..cnz {
        let gz = clz + z as u32;
        for y in 0..cny {
            let row = &norm.row(y + oy, z + oz)[ox..ox + cnx];
            // Branch-free prepass: autovectorizable count of row hits, so
            // rows with none (the common case at high thresholds) are
            // skipped without touching the output, and rows with some
            // reserve exactly once.
            let hits = row.iter().filter(|&&v| f64::from(v) >= threshold).count();
            if hits == 0 {
                continue;
            }
            out.reserve(hits);
            let mrow = MortonRow::new(cly + y as u32, gz);
            for (x, &v) in row.iter().enumerate() {
                if f64::from(v) >= threshold {
                    out.push((mrow.encode_x(clx + x as u32), v));
                }
            }
        }
    }
}

/// Per-point reference threshold scan (the pre-chunking implementation).
pub fn threshold_scan_clip_scalar(
    norm: &ScalarField,
    domain: &Box3,
    clip: &Box3,
    threshold: f64,
    out: &mut Vec<ScanHit>,
) {
    let (ox, oy, oz) = clip_offsets(domain, clip);
    let (cnx, cny, cnz) = clip.extent3();
    let (clx, cly, clz) = clip.lo3();
    for z in 0..cnz {
        for y in 0..cny {
            let row = &norm.row(y + oy, z + oz)[ox..ox + cnx];
            for (x, &v) in row.iter().enumerate() {
                if f64::from(v) >= threshold {
                    out.push((encode3(clx + x as u32, cly + y as u32, clz + z as u32), v));
                }
            }
        }
    }
}

/// Accumulates the `clip` sub-box of an evaluated norm into a histogram,
/// row by row.
pub fn pdf_scan_clip(norm: &ScalarField, domain: &Box3, clip: &Box3, hist: &mut Histogram) {
    let (ox, oy, oz) = clip_offsets(domain, clip);
    let (cnx, cny, cnz) = clip.extent3();
    for z in 0..cnz {
        for y in 0..cny {
            for &v in &norm.row(y + oy, z + oz)[ox..ox + cnx] {
                hist.push(f64::from(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn field_from(vals: &[f32], nx: usize, ny: usize, nz: usize) -> ScalarField {
        ScalarField::from_fn(nx, ny, nz, |x, y, z| {
            vals[(x + nx * (y + ny * z)) % vals.len()]
        })
    }

    #[test]
    fn chunked_scan_finds_exact_points_in_order() {
        let mut f = ScalarField::zeros(4, 4, 4);
        f.set(1, 2, 3, 5.0);
        f.set(0, 0, 0, 4.9);
        let domain = Box3::new([8, 8, 8], [11, 11, 11]);
        let mut hits = Vec::new();
        threshold_scan_clip(&f, &domain, &domain, 4.9, &mut hits);
        assert_eq!(hits.len(), 2);
        // (z, y, x) ascending: (8,8,8) before (9,10,11)
        assert_eq!(hits[0].0, encode3(8, 8, 8));
        assert_eq!(hits[1].0, encode3(9, 10, 11));
        assert_eq!(hits[1].1, 5.0);
    }

    #[test]
    fn chunked_scan_compares_in_f64() {
        // 25.000000001 rounds to exactly 25.0 in f32; an f32 compare would
        // wrongly admit the 25.0 point.
        let mut f = ScalarField::zeros(2, 2, 2);
        f.set(0, 0, 0, 25.0);
        f.set(1, 1, 1, 26.0);
        let domain = Box3::new([0, 0, 0], [1, 1, 1]);
        let thr = 25.000000001_f64;
        let mut hits = Vec::new();
        threshold_scan_clip(&f, &domain, &domain, thr, &mut hits);
        assert_eq!(hits.len(), 1, "the 25.0 point must be excluded");
        assert_eq!(hits[0].1, 26.0);
    }

    /// Values including NaN/∞ so predicate edge cases are exercised.
    fn any_val() -> impl Strategy<Value = f32> {
        prop_oneof![
            -100.0f32..100.0,
            Just(f32::NAN),
            Just(f32::INFINITY),
            Just(f32::NEG_INFINITY),
            Just(-0.0f32),
        ]
    }

    fn any_threshold() -> impl Strategy<Value = f64> {
        prop_oneof![
            -100.0f64..100.0,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(25.000000001_f64),
        ]
    }

    proptest! {
        #[test]
        fn chunked_scan_is_identical_to_scalar_reference(
            vals in prop::collection::vec(any_val(), 64..512),
            threshold in any_threshold(),
            dlo in prop::array::uniform3(0u32..100),
            ext in prop::array::uniform3(1u32..9),
            shrink in prop::array::uniform3(0u32..3),
        ) {
            let (nx, ny, nz) = (ext[0] as usize, ext[1] as usize, ext[2] as usize);
            let f = field_from(&vals, nx, ny, nz);
            let domain = Box3::new(dlo, [
                dlo[0] + ext[0] - 1, dlo[1] + ext[1] - 1, dlo[2] + ext[2] - 1,
            ]);
            // Clip is a (possibly strict) sub-box of the domain.
            let clip = Box3::new(
                [
                    domain.lo[0] + shrink[0].min(ext[0] - 1),
                    domain.lo[1] + shrink[1].min(ext[1] - 1),
                    domain.lo[2] + shrink[2].min(ext[2] - 1),
                ],
                domain.hi,
            );
            let mut chunked = Vec::new();
            let mut scalar = Vec::new();
            threshold_scan_clip(&f, &domain, &clip, threshold, &mut chunked);
            threshold_scan_clip_scalar(&f, &domain, &clip, threshold, &mut scalar);
            prop_assert_eq!(chunked.len(), scalar.len());
            for ((cz, cv), (sz, sv)) in chunked.iter().zip(&scalar) {
                prop_assert_eq!(cz, sz);
                prop_assert_eq!(cv.to_bits(), sv.to_bits());
            }
        }
    }
}
