//! Lagrange interpolation at off-grid target locations.
//!
//! The JHTDB's point queries (`GetVelocity` and friends) interpolate the
//! stored fields at arbitrary locations with 4-, 6- or 8-point Lagrange
//! polynomials per axis (paper §2 lists interpolation among the built-in
//! routines). Threshold queries do not interpolate, but the local
//! evaluation baseline and the example applications do.

use tdb_field::PaddedVector;

/// Lagrange interpolation stencil width per axis (Lag4/Lag6/Lag8 in JHTDB
/// nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LagOrder {
    Lag4,
    Lag6,
    Lag8,
}

impl LagOrder {
    /// Points per axis.
    pub fn width(self) -> usize {
        match self {
            LagOrder::Lag4 => 4,
            LagOrder::Lag6 => 6,
            LagOrder::Lag8 => 8,
        }
    }

    /// Halo needed when the target may fall anywhere inside a chunk.
    pub fn halo(self) -> usize {
        self.width() / 2
    }
}

/// 1-D Lagrange basis weights over arbitrary distinct `nodes` at
/// evaluation point `x`: `out[j] = Π_{k≠j} (x - nodes[k]) / (nodes[j] -
/// nodes[k])`. Exact for polynomials of degree `< nodes.len()`; when `x`
/// coincides with a node the basis is the Kronecker delta.
///
/// Point queries use it on uniform stencils via [`interpolate`]; the
/// compression tier (`tdb-compress`) reconstructs sub-sampled atoms with
/// it on the non-uniform kept-sample lattice.
pub fn lagrange_basis(nodes: &[f64], x: f64, out: &mut [f64]) {
    for (j, slot) in out.iter_mut().enumerate().take(nodes.len()) {
        let mut num = 1.0;
        let mut den = 1.0;
        for (k, &xk) in nodes.iter().enumerate() {
            if k != j {
                num *= x - xk;
                den *= nodes[j] - xk;
            }
        }
        *slot = num / den;
    }
}

/// 1-D Lagrange basis weights at fractional offset `t ∈ [0, 1)` between
/// node `w/2 - 1` and node `w/2` of a `w`-point stencil.
///
/// Returns a fixed-size buffer plus the valid width, so point queries
/// allocate nothing: only the first `order.width()` entries are meaningful.
fn lagrange_weights(order: LagOrder, t: f64) -> ([f64; 8], usize) {
    let w = order.width();
    let base = w as isize / 2 - 1;
    // node coordinates relative to the left-centre node
    let mut xs = [0.0f64; 8];
    for (j, xj) in xs.iter_mut().enumerate().take(w) {
        *xj = j as f64 - base as f64;
    }
    let mut out = [0.0f64; 8];
    let (nodes, _) = xs.split_at(w);
    lagrange_basis(nodes, t, &mut out);
    (out, w)
}

/// Interpolates all `C` components of a padded chunk at a fractional
/// location given in *local grid units* relative to the chunk interior
/// origin (e.g. `(1.5, 0.25, 3.0)`).
pub fn interpolate<const C: usize>(
    field: &PaddedVector<C>,
    order: LagOrder,
    pos: [f64; 3],
) -> [f32; C] {
    let w = order.width();
    let base_off = w as isize / 2 - 1;
    let mut cells = [0isize; 3];
    let mut ws = [[0.0f64; 8]; 3];
    for ax in 0..3 {
        let floor = pos[ax].floor();
        cells[ax] = floor as isize;
        (ws[ax], _) = lagrange_weights(order, pos[ax] - floor);
    }
    let mut out = [0.0f32; C];
    for (c, o) in out.iter_mut().enumerate() {
        let comp = field.comp(c);
        let mut acc = 0.0f64;
        for (kz, wz) in ws[2].iter().take(w).enumerate() {
            for (ky, wy) in ws[1].iter().take(w).enumerate() {
                // Gather the x-run as one flat slice: w consecutive samples
                // starting at `cells[0] - base_off` on this (y, z) row.
                let y = cells[1] - base_off + ky as isize;
                let z = cells[2] - base_off + kz as isize;
                let h = comp.halo() as isize;
                let row = comp.padded_row(y, z);
                let x0 = (cells[0] - base_off + h) as usize;
                // Same multiply order as the original per-point loop
                // (`wx * wy * wz * v`), so results stay bit-identical.
                for (&wx, &v) in ws[0].iter().take(w).zip(&row[x0..x0 + w]) {
                    acc += wx * wy * wz * f64::from(v);
                }
            }
        }
        *o = acc as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nonuniform_basis_is_exact_on_nodes_and_partitions_unity() {
        let nodes = [0.0, 2.0, 4.0, 6.0, 7.0]; // the stride-2 kept lattice
        let mut w = [0.0f64; 8];
        for (j, &xj) in nodes.iter().enumerate() {
            lagrange_basis(&nodes, xj, &mut w);
            for (k, &wk) in w.iter().take(nodes.len()).enumerate() {
                let expect = if k == j { 1.0 } else { 0.0 };
                assert!((wk - expect).abs() < 1e-12, "node {j}: w[{k}] = {wk}");
            }
        }
        for x in [0.5, 1.0, 3.3, 5.0, 6.9] {
            lagrange_basis(&nodes, x, &mut w);
            let s: f64 = w.iter().take(nodes.len()).sum();
            assert!((s - 1.0).abs() < 1e-10, "x={x}: sum {s}");
            // degree-2 polynomial reproduced exactly by a 5-node basis
            let p = |t: f64| 3.0 * t * t - 2.0 * t + 1.0;
            let got: f64 = nodes
                .iter()
                .zip(w.iter())
                .map(|(&xj, &wj)| wj * p(xj))
                .sum();
            assert!((got - p(x)).abs() < 1e-9, "x={x}: {got} vs {}", p(x));
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for order in [LagOrder::Lag4, LagOrder::Lag6, LagOrder::Lag8] {
            for &t in &[0.0, 0.25, 0.5, 0.99] {
                let (w, n) = lagrange_weights(order, t);
                assert_eq!(n, order.width());
                let s: f64 = w.iter().take(n).sum();
                assert!((s - 1.0).abs() < 1e-10, "{order:?} t={t}: sum {s}");
                assert!(w.iter().skip(n).all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn on_node_interpolation_is_exact() {
        let mut f: PaddedVector<1> = PaddedVector::zeros(8, 8, 8, 4);
        f.comp_mut(0).fill(|x, y, z| (x + 10 * y + 100 * z) as f32);
        for order in [LagOrder::Lag4, LagOrder::Lag6, LagOrder::Lag8] {
            let v = interpolate(&f, order, [3.0, 2.0, 5.0]);
            assert!((v[0] - 523.0).abs() < 1e-3, "{order:?}: {v:?}");
        }
    }

    #[test]
    fn linear_field_is_reproduced_exactly_off_node() {
        let mut f: PaddedVector<1> = PaddedVector::zeros(8, 8, 8, 4);
        f.comp_mut(0).fill(|x, y, z| (2 * x - 3 * y + z) as f32);
        let v = interpolate(&f, LagOrder::Lag4, [1.5, 2.25, 3.75]);
        let expect = 2.0 * 1.5 - 3.0 * 2.25 + 3.75;
        assert!((f64::from(v[0]) - expect).abs() < 1e-5);
    }

    #[test]
    fn higher_order_is_more_accurate_for_smooth_fields() {
        let n = 16usize;
        let h = std::f64::consts::TAU / n as f64;
        let g = |x: f64| (x * h).sin();
        let mut f: PaddedVector<1> = PaddedVector::zeros(n, n, n, 4);
        f.comp_mut(0).fill(|x, _, _| g(x as f64) as f32);
        let target = [7.37, 3.0, 3.0];
        let exact = g(7.37);
        let mut prev = f64::INFINITY;
        for order in [LagOrder::Lag4, LagOrder::Lag6, LagOrder::Lag8] {
            let got = f64::from(interpolate(&f, order, target)[0]);
            let err = (got - exact).abs();
            assert!(err <= prev * 1.5, "{order:?}: err {err} vs prev {prev}");
            prev = err;
        }
        assert!(prev < 1e-5);
    }

    proptest! {
        #[test]
        fn interpolation_is_within_local_bounds_for_linear_fields(
            px in 2.0f64..5.0, py in 2.0f64..5.0, pz in 2.0f64..5.0
        ) {
            // linear fields: interpolant must equal the field (exactness),
            // hence trivially within bounds of the corner values.
            let mut f: PaddedVector<1> = PaddedVector::zeros(8, 8, 8, 4);
            f.comp_mut(0).fill(|x, y, z| (x + y + z) as f32);
            let v = f64::from(interpolate(&f, LagOrder::Lag6, [px, py, pz])[0]);
            prop_assert!((v - (px + py + pz)).abs() < 1e-4);
        }
    }
}
