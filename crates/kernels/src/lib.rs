//! Kernel computations for derived fields.
//!
//! "A kernel computation computes the value at a grid location using the
//! data points at a set of neighboring locations" (paper §1). This crate
//! implements every kernel the threshold-query engine derives fields with:
//!
//! * [`fd`] — finite-difference stencils (centred orders 2/4/6/8, plus
//!   one-sided boundary stencils generated with Fornberg's algorithm, which
//!   also covers the channel-flow stretched `y` axis),
//! * [`diff`] — grid-aware differentiation schemes (∂/∂x, gradient, curl,
//!   divergence, Laplacian),
//! * [`derived`] — the catalogue of derived fields users can threshold
//!   (vorticity, Q- and R-invariants, strain rate, …) with their kernel
//!   half-widths,
//! * [`filter`] — box and Gaussian spatial filtering,
//! * [`interp`] — Lagrange interpolation (the JHTDB `GetVelocity`-style
//!   point queries).

pub mod derived;
pub mod diff;
pub mod fd;
pub mod filter;
pub mod interp;
pub mod scan;

pub use derived::DerivedField;
pub use diff::DiffScheme;
pub use fd::FdOrder;
pub use interp::{interpolate, lagrange_basis, LagOrder};
pub use scan::ScanHit;
