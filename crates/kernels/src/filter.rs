//! Spatial filtering kernels.
//!
//! The JHTDB exposes box- and Gaussian-filtered quantities (paper §2 lists
//! "spatial filtering" among the built-in data-intensive routines). Both are
//! separable and evaluated as three 1-D passes over a padded chunk.

use tdb_field::{PaddedScalar, PaddedVector, ScalarField};

/// Separable filter defined by symmetric 1-D weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparableFilter {
    /// Weights for offsets `-r ..= r`; must sum to 1.
    weights: Vec<f64>,
}

impl SeparableFilter {
    /// Top-hat (box) filter of half-width `r` (2r+1 points per axis).
    pub fn box_filter(r: usize) -> Self {
        let n = 2 * r + 1;
        Self {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// Discrete Gaussian filter with standard deviation `sigma` (in grid
    /// spacings), truncated at `3σ` and renormalised.
    pub fn gaussian(sigma: f64) -> Self {
        assert!(sigma > 0.0);
        let r = (3.0 * sigma).ceil() as isize;
        let mut w: Vec<f64> = (-r..=r)
            .map(|o| (-0.5 * (o as f64 / sigma).powi(2)).exp())
            .collect();
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        Self { weights: w }
    }

    /// Kernel half-width (halo needed on every side).
    pub fn halo(&self) -> usize {
        self.weights.len() / 2
    }

    /// Filters the interior of a padded scalar chunk.
    pub fn apply(&self, f: &PaddedScalar) -> ScalarField {
        let (nx, ny, nz) = f.dims();
        let r = self.halo() as isize;
        assert!(f.halo() >= self.halo(), "halo too small for filter");
        // pass 1: x, into a padded intermediate that keeps y/z ghosts
        let h = f.halo();
        let mut tmp_x = PaddedScalar::zeros(nx, ny, nz, h);
        for z in -(h as isize)..(nz + h) as isize {
            for y in -(h as isize)..(ny + h) as isize {
                for x in 0..nx as isize {
                    let mut acc = 0.0f64;
                    for (k, &w) in self.weights.iter().enumerate() {
                        acc += w * f64::from(f.get(x + k as isize - r, y, z));
                    }
                    tmp_x.set(x, y, z, acc as f32);
                }
            }
        }
        let mut tmp_y = PaddedScalar::zeros(nx, ny, nz, h);
        for z in -(h as isize)..(nz + h) as isize {
            for y in 0..ny as isize {
                for x in 0..nx as isize {
                    let mut acc = 0.0f64;
                    for (k, &w) in self.weights.iter().enumerate() {
                        acc += w * f64::from(tmp_x.get(x, y + k as isize - r, z));
                    }
                    tmp_y.set(x, y, z, acc as f32);
                }
            }
        }
        let mut out = ScalarField::zeros(nx, ny, nz);
        for z in 0..nz as isize {
            for y in 0..ny as isize {
                for x in 0..nx as isize {
                    let mut acc = 0.0f64;
                    for (k, &w) in self.weights.iter().enumerate() {
                        acc += w * f64::from(tmp_y.get(x, y, z + k as isize - r));
                    }
                    out.set(x as usize, y as usize, z as usize, acc as f32);
                }
            }
        }
        out
    }

    /// Filters every component of a padded vector chunk.
    pub fn apply_vector<const C: usize>(&self, v: &PaddedVector<C>) -> Vec<ScalarField> {
        (0..C).map(|c| self.apply(v.comp(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_field::VectorField;

    fn pad_const(nx: usize, v: f32, h: usize) -> PaddedScalar {
        let mut p = PaddedScalar::zeros(nx, nx, nx, h);
        p.fill(|_, _, _| v);
        p
    }

    #[test]
    fn filters_preserve_constants() {
        for filt in [
            SeparableFilter::box_filter(2),
            SeparableFilter::gaussian(1.0),
        ] {
            let p = pad_const(6, 3.5, filt.halo());
            let out = filt.apply(&p);
            for v in out.as_slice() {
                assert!((v - 3.5).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn box_filter_averages_impulse() {
        let filt = SeparableFilter::box_filter(1);
        let mut p = PaddedScalar::zeros(5, 5, 5, 1);
        p.set(2, 2, 2, 27.0);
        let out = filt.apply(&p);
        // impulse spreads to the 3^3 neighbourhood with weight 1/27 each
        assert!((out.get(2, 2, 2) - 1.0).abs() < 1e-5);
        assert!((out.get(1, 2, 3) - 1.0).abs() < 1e-5);
        assert!(out.get(0, 0, 0).abs() < 1e-6);
    }

    #[test]
    fn gaussian_weights_sum_to_one_and_are_symmetric() {
        let g = SeparableFilter::gaussian(1.5);
        let s: f64 = g.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        let n = g.weights.len();
        for i in 0..n / 2 {
            assert!((g.weights[i] - g.weights[n - 1 - i]).abs() < 1e-12);
        }
        assert_eq!(g.halo(), 5); // ceil(4.5)
    }

    #[test]
    fn filtering_smooths_oscillation() {
        // alternating +1/-1 along x averages toward 0 under a box filter
        let filt = SeparableFilter::box_filter(1);
        let mut p = PaddedScalar::zeros(8, 4, 4, 1);
        p.fill(|x, _, _| if x.rem_euclid(2) == 0 { 1.0 } else { -1.0 });
        let out = filt.apply(&p);
        for v in out.as_slice() {
            assert!(v.abs() < 0.4);
        }
    }

    #[test]
    fn vector_filter_applies_per_component() {
        let filt = SeparableFilter::box_filter(1);
        let mut v: PaddedVector<3> = PaddedVector::zeros(4, 4, 4, 1);
        v.comp_mut(1).fill(|_, _, _| 2.0);
        let outs = filt.apply_vector(&v);
        assert_eq!(outs.len(), 3);
        assert!(outs[0].as_slice().iter().all(|&x| x.abs() < 1e-6));
        assert!(outs[1].as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-5));
        let _ =
            VectorField::<3>::from_components([outs[0].clone(), outs[1].clone(), outs[2].clone()]);
    }
}
