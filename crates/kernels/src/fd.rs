//! Finite-difference stencil generation.
//!
//! Centred stencils follow the paper's Eq. (2) (4th-order shown there);
//! orders 2–8 are offered, matching the JHTDB differentiation options.
//! All weights — including one-sided wall stencils and stencils on the
//! stretched channel-flow `y` axis — are generated with Fornberg's
//! algorithm, so uniform-grid weights are a special case that is verified
//! against the classical closed forms in tests.

/// Finite-difference accuracy order. The kernel half-width (and therefore
/// the halo a node must fetch from its neighbours) is `order / 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FdOrder {
    O2,
    O4,
    O6,
    O8,
}

impl FdOrder {
    /// Accuracy order as an integer.
    pub fn order(self) -> usize {
        match self {
            FdOrder::O2 => 2,
            FdOrder::O4 => 4,
            FdOrder::O6 => 6,
            FdOrder::O8 => 8,
        }
    }

    /// Kernel half-width of the centred first-derivative stencil.
    pub fn half_width(self) -> usize {
        self.order() / 2
    }

    /// All supported orders.
    pub fn all() -> [FdOrder; 4] {
        [FdOrder::O2, FdOrder::O4, FdOrder::O6, FdOrder::O8]
    }
}

/// Weights of finite-difference approximations at `z` over nodes `x`,
/// for all derivatives `0..=m` (Fornberg 1988).
///
/// Returns `w` with `w[k][j]` = weight of node `x[j]` in the `k`-th
/// derivative.
pub fn fornberg_weights(z: f64, x: &[f64], m: usize) -> Vec<Vec<f64>> {
    let n = x.len();
    assert!(n > m, "need more than {m} nodes for the {m}-th derivative");
    let mut c = vec![vec![0.0f64; n]; m + 1];
    let mut c1 = 1.0;
    let mut c4 = x[0] - z;
    c[0][0] = 1.0;
    for i in 1..n {
        let mn = i.min(m);
        let mut c2 = 1.0;
        let c5 = c4;
        c4 = x[i] - z;
        for j in 0..i {
            let c3 = x[i] - x[j];
            c2 *= c3;
            if j == i - 1 {
                for k in (1..=mn).rev() {
                    c[k][i] = c1 * (k as f64 * c[k - 1][i - 1] - c5 * c[k][i - 1]) / c2;
                }
                c[0][i] = -c1 * c5 * c[0][i - 1] / c2;
            }
            for k in (1..=mn).rev() {
                c[k][j] = (c4 * c[k][j] - k as f64 * c[k - 1][j]) / c3;
            }
            c[0][j] = c4 * c[0][j] / c3;
        }
        c1 = c2;
    }
    c
}

/// A one-dimensional first-derivative stencil: signed node offsets relative
/// to the evaluation point, and the matching weights (spacing already
/// incorporated).
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    pub offsets: Vec<isize>,
    pub weights: Vec<f64>,
}

impl Stencil {
    /// Centred first-derivative stencil of the given order on a uniform
    /// grid with spacing `h`.
    pub fn centered(order: FdOrder, h: f64) -> Stencil {
        let w = order.half_width() as isize;
        let offsets: Vec<isize> = (-w..=w).collect();
        let nodes: Vec<f64> = offsets.iter().map(|&o| o as f64 * h).collect();
        let weights = fornberg_weights(0.0, &nodes, 1).swap_remove(1);
        Stencil { offsets, weights }
    }

    /// Centred second-derivative stencil of the given order on a uniform
    /// grid with spacing `h`.
    pub fn centered_second(order: FdOrder, h: f64) -> Stencil {
        let w = order.half_width() as isize;
        let offsets: Vec<isize> = (-w..=w).collect();
        let nodes: Vec<f64> = offsets.iter().map(|&o| o as f64 * h).collect();
        let weights = fornberg_weights(0.0, &nodes, 2).swap_remove(2);
        Stencil { offsets, weights }
    }

    /// Second-derivative stencil at node `i` of an arbitrary axis (wall
    /// nodes get one-sided stencils).
    pub fn at_node_second(order: FdOrder, coords: &[f64], i: usize) -> Stencil {
        let n = coords.len();
        let width = order.order() + 2; // one extra node for the 2nd derivative
        assert!(n >= width, "axis too short for order {}", order.order());
        let half = width / 2;
        let start = i.saturating_sub(half).min(n - width);
        let nodes = &coords[start..start + width];
        let weights = fornberg_weights(coords[i], nodes, 2).swap_remove(2);
        let offsets = (0..width)
            .map(|j| (start + j) as isize - i as isize)
            .collect();
        Stencil { offsets, weights }
    }

    /// First-derivative stencil at node `i` of an arbitrary coordinate axis
    /// `coords`, using up to `order + 1` nearest nodes (one-sided near the
    /// ends). This covers both wall boundaries and stretched axes.
    pub fn at_node(order: FdOrder, coords: &[f64], i: usize) -> Stencil {
        let n = coords.len();
        let width = order.order() + 1;
        assert!(n >= width, "axis too short for order {}", order.order());
        let half = order.half_width();
        let start = i.saturating_sub(half).min(n - width);
        let nodes = &coords[start..start + width];
        let weights = fornberg_weights(coords[i], nodes, 1).swap_remove(1);
        let offsets = (0..width)
            .map(|j| (start + j) as isize - i as isize)
            .collect();
        Stencil { offsets, weights }
    }

    /// Largest absolute offset used.
    pub fn reach(&self) -> usize {
        self.offsets
            .iter()
            .map(|o| o.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Applies the stencil to samples fetched through `get(offset)`.
    ///
    /// Uses an explicit `acc += w * v` fold (not `Iterator::sum`) so the
    /// NaN-sign behaviour matches [`Stencil::accumulate_row`] exactly —
    /// LLVM lowers the two forms differently for NaN inputs otherwise.
    #[inline]
    pub fn apply(&self, mut get: impl FnMut(isize) -> f64) -> f64 {
        let mut acc = 0.0f64;
        for (&o, &w) in self.offsets.iter().zip(&self.weights) {
            acc += w * get(o);
        }
        acc
    }

    /// Applies the stencil to a whole row of points at once, term-major:
    /// for each `(offset, weight)` pair — visited in the same order as
    /// [`Stencil::apply`] — the caller supplies the source row for that
    /// offset and `weight * f64::from(src[i])` is accumulated into `acc[i]`.
    ///
    /// Starting from zero and adding terms in identical order makes every
    /// `acc[i]` bit-identical to `apply(|o| f64::from(row_o[i]))`, while the
    /// branch-free inner zip over flat slices autovectorizes.
    #[inline]
    pub fn accumulate_row<'a>(&self, acc: &mut [f64], mut row_for: impl FnMut(isize) -> &'a [f32]) {
        for a in acc.iter_mut() {
            *a = 0.0;
        }
        for (&o, &w) in self.offsets.iter().zip(&self.weights) {
            let src = row_for(o);
            debug_assert!(src.len() >= acc.len());
            for (a, &v) in acc.iter_mut().zip(src) {
                *a += w * f64::from(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn centered_matches_classical_coefficients() {
        let s2 = Stencil::centered(FdOrder::O2, 1.0);
        assert_eq!(s2.offsets, vec![-1, 0, 1]);
        for (w, e) in s2.weights.iter().zip([-0.5, 0.0, 0.5]) {
            assert!(close(*w, e, 1e-12), "{w} vs {e}");
        }
        // paper Eq. (2): 2/3 (f1 - f-1) - 1/12 (f2 - f-2)
        let s4 = Stencil::centered(FdOrder::O4, 1.0);
        let expect4 = [1.0 / 12.0, -2.0 / 3.0, 0.0, 2.0 / 3.0, -1.0 / 12.0];
        for (w, e) in s4.weights.iter().zip(expect4) {
            assert!(close(*w, e, 1e-12), "{w} vs {e}");
        }
        let s6 = Stencil::centered(FdOrder::O6, 1.0);
        let expect6 = [
            -1.0 / 60.0,
            3.0 / 20.0,
            -3.0 / 4.0,
            0.0,
            3.0 / 4.0,
            -3.0 / 20.0,
            1.0 / 60.0,
        ];
        for (w, e) in s6.weights.iter().zip(expect6) {
            assert!(close(*w, e, 1e-12), "{w} vs {e}");
        }
        let s8 = Stencil::centered(FdOrder::O8, 1.0);
        let expect8 = [
            1.0 / 280.0,
            -4.0 / 105.0,
            0.2,
            -0.8,
            0.0,
            0.8,
            -0.2,
            4.0 / 105.0,
            -1.0 / 280.0,
        ];
        for (w, e) in s8.weights.iter().zip(expect8) {
            assert!(close(*w, e, 1e-12), "{w} vs {e}");
        }
    }

    #[test]
    fn centered_scales_with_spacing() {
        let s = Stencil::centered(FdOrder::O2, 0.5);
        assert!(close(s.weights[2], 1.0, 1e-12));
    }

    #[test]
    fn one_sided_stencil_at_wall_is_exact_for_polynomials() {
        // order-4 stencil at the first node of a stretched axis must
        // differentiate a degree-4 polynomial exactly.
        let coords: Vec<f64> = (0..10).map(|i| (i as f64 / 9.0).powi(2)).collect();
        let s = Stencil::at_node(FdOrder::O4, &coords, 0);
        // all offsets forward
        assert!(s.offsets.iter().all(|&o| o >= 0));
        let p = |x: f64| 1.0 + x + x * x + x.powi(3) + x.powi(4);
        let dp = |x: f64| 1.0 + 2.0 * x + 3.0 * x * x + 4.0 * x.powi(3);
        let got = s.apply(|o| p(coords[o as usize]));
        assert!(close(got, dp(coords[0]), 1e-9), "{got}");
    }

    #[test]
    fn interior_stretched_stencil_is_centered_window() {
        let coords: Vec<f64> = (0..20).map(|i| (i as f64).sqrt()).collect();
        let s = Stencil::at_node(FdOrder::O4, &coords, 10);
        assert_eq!(s.offsets, vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn derivative_of_sine_converges_with_order() {
        let n = 32usize;
        let h = std::f64::consts::TAU / n as f64;
        let f = |i: isize| (h * i as f64).sin();
        let mut prev_err = f64::INFINITY;
        for order in FdOrder::all() {
            let s = Stencil::centered(order, h);
            // max error over all nodes (periodic)
            let err = (0..n as isize)
                .map(|i| {
                    let d = s.apply(|o| f(i + o));
                    (d - (h * i as f64).cos()).abs()
                })
                .fold(0.0f64, f64::max);
            assert!(err < prev_err, "order {:?} err {err} !< {prev_err}", order);
            prev_err = err;
        }
        // order-8 leading error ≈ h⁸/630 ≈ 3e-9 at n = 32
        assert!(prev_err < 1e-7);
    }

    #[test]
    fn second_derivative_stencils_are_exact_on_quadratics() {
        for order in FdOrder::all() {
            let s = Stencil::centered_second(order, 0.5);
            // d²/dx² of x² = 2
            let d = s.apply(|o| (o as f64 * 0.5).powi(2));
            assert!((d - 2.0).abs() < 1e-8, "{order:?}: {d}");
            // constants vanish
            let z = s.apply(|_| 7.0);
            assert!(z.abs() < 1e-8);
        }
        // classic O2 coefficients [1, -2, 1] / h²
        let s = Stencil::centered_second(FdOrder::O2, 1.0);
        for (w, e) in s.weights.iter().zip([1.0, -2.0, 1.0]) {
            assert!((w - e).abs() < 1e-10);
        }
    }

    #[test]
    fn second_derivative_of_sine_converges() {
        let n = 32usize;
        let h = std::f64::consts::TAU / n as f64;
        let mut prev = f64::INFINITY;
        for order in FdOrder::all() {
            let s = Stencil::centered_second(order, h);
            let err = (0..n as isize)
                .map(|i| {
                    let d = s.apply(|o| (h * (i + o) as f64).sin());
                    (d + (h * i as f64).sin()).abs() // d²sin = -sin
                })
                .fold(0.0f64, f64::max);
            assert!(err < prev, "{order:?}: {err} !< {prev}");
            prev = err;
        }
        assert!(prev < 1e-5);
    }

    #[test]
    fn one_sided_second_derivative_at_wall() {
        let coords: Vec<f64> = (0..12)
            .map(|i| (i as f64 / 11.0).powf(1.5) + i as f64 * 0.1)
            .collect();
        let s = Stencil::at_node_second(FdOrder::O2, &coords, 0);
        assert!(s.offsets.iter().all(|&o| o >= 0));
        // exact for quadratics
        let d = s.apply(|o| coords[o as usize].powi(2));
        assert!((d - 2.0).abs() < 1e-6, "{d}");
    }

    proptest! {
        #[test]
        fn weights_sum_to_zero_and_reproduce_linear(
            order_idx in 0usize..4, h in 0.01f64..10.0
        ) {
            let order = FdOrder::all()[order_idx];
            let s = Stencil::centered(order, h);
            let sum: f64 = s.weights.iter().sum();
            prop_assert!(sum.abs() < 1e-9);
            // derivative of f(x) = x is 1
            let d = s.apply(|o| o as f64 * h);
            prop_assert!(close(d, 1.0, 1e-9));
        }

        #[test]
        fn node_stencils_are_exact_for_their_order(
            i in 0usize..16, order_idx in 0usize..4
        ) {
            let order = FdOrder::all()[order_idx];
            let coords: Vec<f64> = (0..16).map(|k| k as f64 + 0.3 * ((k * k) as f64).sin()).collect();
            let s = Stencil::at_node(order, &coords, i);
            // exact on monomials up to the order
            for p in 0..=order.order() {
                let d = s.apply(|o| coords[(i as isize + o) as usize].powi(p as i32));
                let expect = if p == 0 { 0.0 } else { p as f64 * coords[i].powi(p as i32 - 1) };
                prop_assert!(close(d, expect, 1e-6), "p={p} d={d} expect={expect}");
            }
        }
    }
}
