//! The catalogue of threshold-able fields.
//!
//! "The stored procedure performing the evaluation must have an
//! implementation for each derived field of interest" (paper §7). This
//! module is that catalogue: each variant knows its kernel half-width and
//! how to evaluate the *thresholded quantity* (the norm or absolute value
//! the paper compares against `k`) over a padded chunk.

use crate::diff::DiffScheme;
use tdb_field::{PaddedVector, ScalarField, VectorField};

/// A field whose norm (or absolute value) can be thresholded.
///
/// `Norm` is the raw-field case of the paper's Fig. 9(c)/(f): no kernel, no
/// halo, no additional computation. The others are genuinely derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DerivedField {
    /// Euclidean norm of the stored (raw) field itself.
    Norm,
    /// Norm of the curl. Applied to velocity this is the vorticity norm;
    /// applied to the magnetic field it is the electric-current norm.
    CurlNorm,
    /// Second invariant `Q = ½(‖Ω‖² − ‖S‖²)` of the velocity gradient — a
    /// non-linear combination of all nine gradient components (paper §5.4).
    QCriterion,
    /// Third invariant `R = −det(∇u)` of the velocity gradient.
    RInvariant,
    /// Frobenius norm of the full velocity-gradient tensor.
    GradientNorm,
    /// Norm of the strain-rate tensor `S = ½(∇u + ∇uᵀ)`.
    StrainRateNorm,
    /// Divergence (absolute value) — useful as a solenoidality diagnostic.
    DivergenceAbs,
    /// Norm of the box-filtered field (top-hat of half-width `radius`
    /// grid points per axis) — the JHTDB's filtered quantities.
    BoxFilteredNorm { radius: u8 },
    /// Norm of the component-wise Laplacian `∇²u` (diffusion-term
    /// intensity).
    LaplacianNorm,
}

impl DerivedField {
    /// Every supported field.
    pub fn all() -> [DerivedField; 8] {
        [
            DerivedField::Norm,
            DerivedField::CurlNorm,
            DerivedField::QCriterion,
            DerivedField::RInvariant,
            DerivedField::GradientNorm,
            DerivedField::StrainRateNorm,
            DerivedField::DivergenceAbs,
            DerivedField::LaplacianNorm,
        ]
    }

    /// Stable identifier used for cache keys and wire messages.
    pub fn name(&self) -> String {
        match self {
            DerivedField::Norm => "norm".into(),
            DerivedField::CurlNorm => "curl_norm".into(),
            DerivedField::QCriterion => "q_criterion".into(),
            DerivedField::RInvariant => "r_invariant".into(),
            DerivedField::GradientNorm => "gradient_norm".into(),
            DerivedField::StrainRateNorm => "strain_rate_norm".into(),
            DerivedField::DivergenceAbs => "divergence_abs".into(),
            DerivedField::BoxFilteredNorm { radius } => format!("box_filtered_norm:{radius}"),
            DerivedField::LaplacianNorm => "laplacian_norm".into(),
        }
    }

    /// Parses a [`DerivedField::name`] string.
    pub fn parse(s: &str) -> Option<DerivedField> {
        if let Some(r) = s.strip_prefix("box_filtered_norm:") {
            let radius: u8 = r.parse().ok().filter(|&r| r >= 1)?;
            return Some(DerivedField::BoxFilteredNorm { radius });
        }
        Self::all().into_iter().find(|f| f.name() == s)
    }

    /// Kernel half-width: the band of neighbour data needed on every side
    /// of the computation domain (paper §4). Raw-field norms need none.
    pub fn halo(&self, scheme: &DiffScheme) -> usize {
        match self {
            DerivedField::Norm => 0,
            DerivedField::BoxFilteredNorm { radius } => usize::from(*radius),
            _ => scheme.halo(),
        }
    }

    /// Whether evaluating the field requires differentiation (used by the
    /// execution-time breakdown: raw fields skip the compute phase).
    pub fn needs_kernel(&self) -> bool {
        !matches!(self, DerivedField::Norm)
    }

    /// Evaluates the thresholded quantity over the interior of a padded
    /// chunk whose interior origin is at global coordinates `origin`.
    pub fn eval(
        &self,
        input: &PaddedVector<3>,
        scheme: &DiffScheme,
        origin: [usize; 3],
    ) -> ScalarField {
        match self {
            DerivedField::Norm => {
                // Row-chunked: three flat component rows in, one flat output
                // row out, no per-point gather through `input.at`. The f32
                // operation order matches the scalar form exactly.
                let (nx, ny, nz) = input.dims();
                let h = input.halo();
                let mut out = ScalarField::zeros(nx, ny, nz);
                for z in 0..nz {
                    for y in 0..ny {
                        let (yi, zi) = (y as isize, z as isize);
                        let r0 = &input.comp(0).padded_row(yi, zi)[h..h + nx];
                        let r1 = &input.comp(1).padded_row(yi, zi)[h..h + nx];
                        let r2 = &input.comp(2).padded_row(yi, zi)[h..h + nx];
                        let start = nx * (y + ny * z);
                        let dst = &mut out.as_mut_slice()[start..start + nx];
                        for (((d, &a), &b), &c) in dst.iter_mut().zip(r0).zip(r1).zip(r2) {
                            *d = (a * a + b * b + c * c).sqrt();
                        }
                    }
                }
                out
            }
            DerivedField::CurlNorm => scheme.curl_padded(input, origin).norm(),
            DerivedField::QCriterion => {
                let g = scheme.grad_padded(input, origin);
                map_gradient(&g, q_of_gradient)
            }
            DerivedField::RInvariant => {
                let g = scheme.grad_padded(input, origin);
                map_gradient(&g, r_of_gradient)
            }
            DerivedField::GradientNorm => {
                let g = scheme.grad_padded(input, origin);
                map_gradient(&g, |a| a.iter().map(|v| v * v).sum::<f32>().sqrt())
            }
            DerivedField::StrainRateNorm => {
                let g = scheme.grad_padded(input, origin);
                map_gradient(&g, strain_norm_of_gradient)
            }
            DerivedField::DivergenceAbs => {
                let mut d = scheme.divergence_padded(input, origin);
                d.map_inplace(f32::abs);
                d
            }
            DerivedField::LaplacianNorm => {
                let comps: [ScalarField; 3] =
                    std::array::from_fn(|c| scheme.laplacian_padded(input.comp(c), origin));
                VectorField::from_components(comps).norm()
            }
            DerivedField::BoxFilteredNorm { radius } => {
                let filt = crate::filter::SeparableFilter::box_filter(usize::from(*radius));
                let mut comps = filt.apply_vector(input).into_iter();
                let v = VectorField::<3>::from_components(std::array::from_fn(|_| {
                    comps.next().expect("three components")
                }));
                v.norm()
            }
        }
    }

    /// Evaluates the curl as a full vector field (used by analysis tools
    /// that need the vector, not the norm).
    pub fn curl_vector(
        input: &PaddedVector<3>,
        scheme: &DiffScheme,
        origin: [usize; 3],
    ) -> VectorField<3> {
        scheme.curl_padded(input, origin)
    }
}

fn map_gradient(g: &[ScalarField; 9], f: impl Fn(&[f32; 9]) -> f32) -> ScalarField {
    let (nx, ny, nz) = g[0].dims();
    let mut out = ScalarField::zeros(nx, ny, nz);
    let planes: [&[f32]; 9] = std::array::from_fn(|k| g[k].as_slice());
    let dst = out.as_mut_slice();
    for (i, d) in dst.iter_mut().enumerate() {
        let a: [f32; 9] = std::array::from_fn(|k| planes[k][i]);
        *d = f(&a);
    }
    out
}

/// `Q = ½(‖Ω‖² − ‖S‖²)` where `S`/`Ω` are the symmetric/antisymmetric parts
/// of the velocity gradient `a[3i+j] = ∂u_i/∂x_j`.
#[inline]
pub fn q_of_gradient(a: &[f32; 9]) -> f32 {
    let mut s2 = 0.0f32;
    let mut o2 = 0.0f32;
    for i in 0..3 {
        for j in 0..3 {
            let s = 0.5 * (a[3 * i + j] + a[3 * j + i]);
            let o = 0.5 * (a[3 * i + j] - a[3 * j + i]);
            s2 += s * s;
            o2 += o * o;
        }
    }
    0.5 * (o2 - s2)
}

/// `R = −det(∇u)`.
#[inline]
pub fn r_of_gradient(a: &[f32; 9]) -> f32 {
    let det = a[0] * (a[4] * a[8] - a[5] * a[7]) - a[1] * (a[3] * a[8] - a[5] * a[6])
        + a[2] * (a[3] * a[7] - a[4] * a[6]);
    -det
}

/// `‖S‖ = sqrt(Σ S_ij²)`.
#[inline]
pub fn strain_norm_of_gradient(a: &[f32; 9]) -> f32 {
    let mut s2 = 0.0f32;
    for i in 0..3 {
        for j in 0..3 {
            let s = 0.5 * (a[3 * i + j] + a[3 * j + i]);
            s2 += s * s;
        }
    }
    s2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdOrder;
    use std::f64::consts::TAU;
    use tdb_field::{Grid3, ScalarField};

    fn padded(v: &VectorField<3>, h: usize) -> PaddedVector<3> {
        let (nx, ny, nz) = v.dims();
        let mut p = PaddedVector::zeros(nx, ny, nz, h);
        p.fill_periodic_from(v, [0, 0, 0]);
        p
    }

    #[test]
    fn names_roundtrip() {
        for f in DerivedField::all() {
            assert_eq!(DerivedField::parse(&f.name()), Some(f));
        }
        assert_eq!(DerivedField::parse("bogus"), None);
        // parameterized filtered norms roundtrip too
        let f = DerivedField::BoxFilteredNorm { radius: 2 };
        assert_eq!(f.name(), "box_filtered_norm:2");
        assert_eq!(DerivedField::parse("box_filtered_norm:2"), Some(f));
        assert_eq!(DerivedField::parse("box_filtered_norm:0"), None);
        assert_eq!(DerivedField::parse("box_filtered_norm:x"), None);
    }

    #[test]
    fn box_filtered_norm_smooths_and_preserves_constants() {
        let grid = Grid3::periodic_cube(16, TAU);
        let scheme = DiffScheme::new(&grid, FdOrder::O4);
        let f = DerivedField::BoxFilteredNorm { radius: 2 };
        assert_eq!(f.halo(&scheme), 2);
        // constant field: filtered norm equals the constant's norm
        let c = ScalarField::from_fn(16, 16, 16, |_, _, _| 3.0);
        let v = VectorField::from_components([
            c,
            ScalarField::from_fn(16, 16, 16, |_, _, _| 4.0),
            ScalarField::zeros(16, 16, 16),
        ]);
        let p = padded(&v, 2);
        let out = f.eval(&p, &scheme, [0, 0, 0]);
        for val in out.as_slice() {
            assert!((val - 5.0).abs() < 1e-4);
        }
        // oscillating field: filtering reduces the norm
        let osc = ScalarField::from_fn(16, 16, 16, |x, _, _| if x % 2 == 0 { 1.0 } else { -1.0 });
        let v = VectorField::from_components([
            osc,
            ScalarField::zeros(16, 16, 16),
            ScalarField::zeros(16, 16, 16),
        ]);
        let p = padded(&v, 2);
        let out = f.eval(&p, &scheme, [0, 0, 0]);
        let max = out.as_slice().iter().fold(0.0f32, |m, &v| m.max(v));
        assert!(max < 0.5, "filtered oscillation should shrink, max {max}");
    }

    #[test]
    fn norm_needs_no_halo_or_kernel() {
        let grid = Grid3::periodic_cube(8, TAU);
        let scheme = DiffScheme::new(&grid, FdOrder::O8);
        assert_eq!(DerivedField::Norm.halo(&scheme), 0);
        assert!(!DerivedField::Norm.needs_kernel());
        assert_eq!(DerivedField::CurlNorm.halo(&scheme), 4);
        assert!(DerivedField::QCriterion.needs_kernel());
    }

    #[test]
    fn q_and_r_of_pure_rotation() {
        // Solid-body rotation about z: u = (-y, x, 0); ∇u antisymmetric,
        // S = 0, ‖Ω‖² = 2, so Q = 1. R = -det = 0.
        let a: [f32; 9] = [0.0, -1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert!((q_of_gradient(&a) - 1.0).abs() < 1e-6);
        assert!(r_of_gradient(&a).abs() < 1e-6);
        assert!(strain_norm_of_gradient(&a).abs() < 1e-6);
    }

    #[test]
    fn q_of_pure_strain_is_negative() {
        // u = (x, -y, 0): symmetric gradient, Q = -½‖S‖² = -1, Ω = 0.
        let a: [f32; 9] = [1.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0];
        assert!((q_of_gradient(&a) + 1.0).abs() < 1e-6);
        assert!((strain_norm_of_gradient(&a) - 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn r_of_uniform_expansion() {
        // ∇u = I: det = 1, R = -1.
        let a: [f32; 9] = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        assert!((r_of_gradient(&a) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn curl_norm_matches_analytic_vorticity() {
        // Taylor-Green-like: u = (sin x cos y, -cos x sin y, 0)
        // ω_z = ∂u_y/∂x - ∂u_x/∂y = sin x sin y + sin x sin y = 2 sin x sin y
        let n = 32;
        let grid = Grid3::periodic_cube(n, TAU);
        let h = TAU / n as f64;
        let vx = ScalarField::from_fn(n, n, n, |x, y, _| {
            ((h * x as f64).sin() * (h * y as f64).cos()) as f32
        });
        let vy = ScalarField::from_fn(n, n, n, |x, y, _| {
            (-(h * x as f64).cos() * (h * y as f64).sin()) as f32
        });
        let v = VectorField::from_components([vx, vy, ScalarField::zeros(n, n, n)]);
        let scheme = DiffScheme::new(&grid, FdOrder::O4);
        let p = padded(&v, scheme.halo());
        let w = DerivedField::CurlNorm.eval(&p, &scheme, [0, 0, 0]);
        for (x, y) in [(3, 5), (10, 20), (17, 9)] {
            let expect = (2.0 * (h * x as f64).sin() * (h * y as f64).sin()).abs();
            let got = f64::from(w.get(x, y, 7));
            assert!((got - expect).abs() < 1e-3, "({x},{y}): {got} vs {expect}");
        }
    }

    #[test]
    fn gradient_norm_vs_strain_plus_rotation() {
        // ‖∇u‖² = ‖S‖² + ‖Ω‖² pointwise.
        let n = 16;
        let grid = Grid3::periodic_cube(n, TAU);
        let h = TAU / n as f64;
        let mk = |kx: f64, ky: f64, kz: f64, phase: f64| {
            ScalarField::from_fn(n, n, n, |x, y, z| {
                ((kx * h * x as f64 + ky * h * y as f64 + kz * h * z as f64 + phase).sin()) as f32
            })
        };
        let v = VectorField::from_components([
            mk(1.0, 2.0, 0.0, 0.3),
            mk(0.0, 1.0, 2.0, 1.1),
            mk(2.0, 0.0, 1.0, 2.2),
        ]);
        let scheme = DiffScheme::new(&grid, FdOrder::O6);
        let p = padded(&v, scheme.halo());
        let gn = DerivedField::GradientNorm.eval(&p, &scheme, [0, 0, 0]);
        let sn = DerivedField::StrainRateNorm.eval(&p, &scheme, [0, 0, 0]);
        let q = DerivedField::QCriterion.eval(&p, &scheme, [0, 0, 0]);
        for (x, y, z) in [(0, 0, 0), (5, 3, 8), (12, 15, 1)] {
            let g2 = f64::from(gn.get(x, y, z)).powi(2);
            let s2 = f64::from(sn.get(x, y, z)).powi(2);
            // Q = ½(‖Ω‖² - ‖S‖²) and ‖Ω‖² = g² - s² ⇒ Q = ½(g² - 2s²)
            let expect_q = 0.5 * (g2 - 2.0 * s2);
            let got_q = f64::from(q.get(x, y, z));
            assert!((got_q - expect_q).abs() < 1e-3 * (1.0 + expect_q.abs()));
        }
    }

    #[test]
    fn laplacian_norm_of_sine_waves_is_analytic() {
        // u = (sin x, sin 2y, 0): ∇²u = (-sin x, -4 sin 2y, 0)
        let n = 32;
        let grid = Grid3::periodic_cube(n, TAU);
        let h = TAU / n as f64;
        let vx = ScalarField::from_fn(n, n, n, |x, _, _| (h * x as f64).sin() as f32);
        let vy = ScalarField::from_fn(n, n, n, |_, y, _| (2.0 * h * y as f64).sin() as f32);
        let v = VectorField::from_components([vx, vy, ScalarField::zeros(n, n, n)]);
        let scheme = DiffScheme::new(&grid, FdOrder::O6);
        let p = padded(&v, scheme.halo());
        let out = DerivedField::LaplacianNorm.eval(&p, &scheme, [0, 0, 0]);
        for (x, y) in [(3usize, 5usize), (10, 20), (30, 1)] {
            let lx = -(h * x as f64).sin();
            let ly = -4.0 * (2.0 * h * y as f64).sin();
            let expect = (lx * lx + ly * ly).sqrt();
            let got = f64::from(out.get(x, y, 9));
            assert!((got - expect).abs() < 1e-3, "({x},{y}): {got} vs {expect}");
        }
    }

    #[test]
    fn divergence_abs_of_solenoidal_field_vanishes() {
        let n = 16;
        let grid = Grid3::periodic_cube(n, TAU);
        let h = TAU / n as f64;
        // u = (sin y, sin z, sin x) is divergence-free
        let vx = ScalarField::from_fn(n, n, n, |_, y, _| (h * y as f64).sin() as f32);
        let vy = ScalarField::from_fn(n, n, n, |_, _, z| (h * z as f64).sin() as f32);
        let vz = ScalarField::from_fn(n, n, n, |x, _, _| (h * x as f64).sin() as f32);
        let v = VectorField::from_components([vx, vy, vz]);
        let scheme = DiffScheme::new(&grid, FdOrder::O4);
        let p = padded(&v, scheme.halo());
        let d = DerivedField::DivergenceAbs.eval(&p, &scheme, [0, 0, 0]);
        let max = d.as_slice().iter().fold(0.0f32, |m, &v| m.max(v));
        assert!(max < 1e-5);
    }
}
