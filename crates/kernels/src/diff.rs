//! Grid-aware differentiation.
//!
//! A [`DiffScheme`] binds a finite-difference order to a grid: periodic
//! uniform axes get one centred stencil (ghost data comes from the halo),
//! wall-bounded or stretched axes get a per-node stencil table with
//! one-sided stencils near the walls.

use crate::fd::{FdOrder, Stencil};
use tdb_field::{Grid3, PaddedScalar, PaddedVector, ScalarField, Spacing, VectorField};

#[derive(Debug, Clone)]
enum AxisScheme {
    /// Uniform periodic axis: one stencil for every node.
    PeriodicUniform(Stencil),
    /// Bounded (and possibly stretched) axis: a stencil per global node.
    Bounded(Vec<Stencil>),
}

impl AxisScheme {
    fn stencil(&self, global: usize) -> &Stencil {
        match self {
            AxisScheme::PeriodicUniform(s) => s,
            AxisScheme::Bounded(table) => &table[global],
        }
    }
}

/// First- and second-derivative scheme for a specific grid and order.
#[derive(Debug, Clone)]
pub struct DiffScheme {
    order: FdOrder,
    axes: [AxisScheme; 3],
    /// Second-derivative stencils (Laplacian).
    axes2: [AxisScheme; 3],
    dims: (usize, usize, usize),
}

impl DiffScheme {
    /// Builds the scheme for `grid` at the given accuracy order.
    pub fn new(grid: &Grid3, order: FdOrder) -> Self {
        let build = |second: bool| {
            std::array::from_fn(|ax| {
                let spacing = grid.spacing(ax);
                match (grid.periodic[ax], spacing) {
                    (true, Spacing::Uniform(h)) => AxisScheme::PeriodicUniform(if second {
                        Stencil::centered_second(order, *h)
                    } else {
                        Stencil::centered(order, *h)
                    }),
                    (true, Spacing::Stretched(_)) => {
                        panic!("periodic stretched axes are not supported")
                    }
                    (false, _) => {
                        let n = grid.extent(ax);
                        let coords: Vec<f64> = (0..n).map(|i| spacing.coord(i)).collect();
                        AxisScheme::Bounded(
                            (0..n)
                                .map(|i| {
                                    if second {
                                        Stencil::at_node_second(order, &coords, i)
                                    } else {
                                        Stencil::at_node(order, &coords, i)
                                    }
                                })
                                .collect(),
                        )
                    }
                }
            })
        };
        Self {
            order,
            axes: build(false),
            axes2: build(true),
            dims: grid.dims(),
        }
    }

    /// Accuracy order.
    pub fn order(&self) -> FdOrder {
        self.order
    }

    /// Halo half-width a computation domain needs on every side.
    ///
    /// One-sided wall stencils only reach *into* the domain, so the halo
    /// requirement is the centred half-width on all axes.
    pub fn halo(&self) -> usize {
        self.order.half_width()
    }

    /// ∂f/∂axis over the interior of a padded chunk whose interior origin
    /// sits at global grid coordinates `origin`.
    pub fn deriv_padded(&self, f: &PaddedScalar, axis: usize, origin: [usize; 3]) -> ScalarField {
        self.apply_axis(&self.axes, f, axis, origin)
    }

    /// ∂²f/∂axis² over the interior of a padded chunk.
    pub fn deriv2_padded(&self, f: &PaddedScalar, axis: usize, origin: [usize; 3]) -> ScalarField {
        self.apply_axis(&self.axes2, f, axis, origin)
    }

    /// Per-point reference implementation of [`DiffScheme::deriv_padded`].
    ///
    /// Kept as the semantic baseline: the chunked path below must produce
    /// bit-identical output (proptested), and the micro-benches report the
    /// chunked speedup against this loop.
    pub fn deriv_padded_reference(
        &self,
        f: &PaddedScalar,
        axis: usize,
        origin: [usize; 3],
    ) -> ScalarField {
        assert!(axis < 3);
        let (nx, ny, nz) = f.dims();
        self.check_bounded_reach(&self.axes, axis, origin[axis], [nx, ny, nz][axis], f.halo());
        let mut out = ScalarField::zeros(nx, ny, nz);
        apply_axis_scalar(&self.axes[axis], f, axis, origin, &mut out);
        out
    }

    fn apply_axis(
        &self,
        table: &[AxisScheme; 3],
        f: &PaddedScalar,
        axis: usize,
        origin: [usize; 3],
    ) -> ScalarField {
        assert!(axis < 3);
        let (nx, ny, nz) = f.dims();
        self.check_bounded_reach(table, axis, origin[axis], [nx, ny, nz][axis], f.halo());
        let mut out = ScalarField::zeros(nx, ny, nz);
        let scheme = &table[axis];

        // A bounded x axis changes stencils along the row itself, which
        // defeats row-major chunking; fall back to the per-point loop. In
        // practice the x axis is periodic on every supported grid.
        if axis == 0 && matches!(scheme, AxisScheme::Bounded(_)) {
            apply_axis_scalar(scheme, f, axis, origin, &mut out);
            return out;
        }

        let h = f.halo();
        // One reusable f64 accumulator row: no per-point allocation, and
        // flat-slice term-major accumulation the compiler can vectorize.
        let mut acc = vec![0.0f64; nx];
        for z in 0..nz {
            for y in 0..ny {
                let (yi, zi) = (y as isize, z as isize);
                let s = match axis {
                    // Periodic-uniform x: the single stencil (index unused).
                    0 => scheme.stencil(0),
                    1 => scheme.stencil(origin[1] + y),
                    _ => scheme.stencil(origin[2] + z),
                };
                match axis {
                    0 => {
                        let row = f.padded_row(yi, zi);
                        s.accumulate_row(&mut acc, |o| &row[(h as isize + o) as usize..][..nx]);
                    }
                    1 => s.accumulate_row(&mut acc, |o| &f.padded_row(yi + o, zi)[h..h + nx]),
                    _ => s.accumulate_row(&mut acc, |o| &f.padded_row(yi, zi + o)[h..h + nx]),
                }
                let start = nx * (y + ny * z);
                for (dst, &a) in out.as_mut_slice()[start..start + nx].iter_mut().zip(&acc) {
                    *dst = a as f32;
                }
            }
        }
        out
    }

    /// For bounded axes, panics unless every stencil used inside the chunk
    /// stays within the available data (interior + halo).
    fn check_bounded_reach(
        &self,
        axes: &[AxisScheme; 3],
        axis: usize,
        origin: usize,
        extent: usize,
        halo: usize,
    ) {
        if let AxisScheme::Bounded(table) = &axes[axis] {
            for local in 0..extent {
                let s = &table[origin + local];
                for &o in &s.offsets {
                    let target = local as isize + o;
                    assert!(
                        target >= -(halo as isize) && target < (extent + halo) as isize,
                        "stencil at global node {} reaches outside chunk+halo",
                        origin + local
                    );
                }
            }
        }
    }

    /// Full velocity-gradient tensor `∂u_i/∂x_j` (row-major: index `3i+j`).
    pub fn grad_padded(&self, v: &PaddedVector<3>, origin: [usize; 3]) -> [ScalarField; 9] {
        std::array::from_fn(|k| self.deriv_padded(v.comp(k / 3), k % 3, origin))
    }

    /// Curl of a padded vector field:
    /// `(∂v_z/∂y − ∂v_y/∂z, ∂v_x/∂z − ∂v_z/∂x, ∂v_y/∂x − ∂v_x/∂y)`.
    pub fn curl_padded(&self, v: &PaddedVector<3>, origin: [usize; 3]) -> VectorField<3> {
        let dzy = self.deriv_padded(v.comp(2), 1, origin);
        let mut cx = dzy;
        cx.zip_inplace(&self.deriv_padded(v.comp(1), 2, origin), |a, b| a - b);
        let dxz = self.deriv_padded(v.comp(0), 2, origin);
        let mut cy = dxz;
        cy.zip_inplace(&self.deriv_padded(v.comp(2), 0, origin), |a, b| a - b);
        let dyx = self.deriv_padded(v.comp(1), 0, origin);
        let mut cz = dyx;
        cz.zip_inplace(&self.deriv_padded(v.comp(0), 1, origin), |a, b| a - b);
        VectorField::from_components([cx, cy, cz])
    }

    /// Divergence of a padded vector field.
    pub fn divergence_padded(&self, v: &PaddedVector<3>, origin: [usize; 3]) -> ScalarField {
        let mut out = self.deriv_padded(v.comp(0), 0, origin);
        out.zip_inplace(&self.deriv_padded(v.comp(1), 1, origin), |a, b| a + b);
        out.zip_inplace(&self.deriv_padded(v.comp(2), 2, origin), |a, b| a + b);
        out
    }

    /// Laplacian of a padded scalar field (sum of second derivatives).
    pub fn laplacian_padded(&self, f: &PaddedScalar, origin: [usize; 3]) -> ScalarField {
        let mut out = self.deriv2_padded(f, 0, origin);
        out.zip_inplace(&self.deriv2_padded(f, 1, origin), |a, b| a + b);
        out.zip_inplace(&self.deriv2_padded(f, 2, origin), |a, b| a + b);
        out
    }

    /// Pads a whole periodic field and returns its curl — convenience for
    /// single-machine analysis and tests. The field must span the grid this
    /// scheme was built for.
    pub fn curl(&self, v: &VectorField<3>) -> VectorField<3> {
        let p = self.pad_whole(v);
        self.curl_padded(&p, [0, 0, 0])
    }

    /// Whole-field periodic divergence (see [`DiffScheme::curl`]).
    pub fn divergence(&self, v: &VectorField<3>) -> ScalarField {
        let p = self.pad_whole(v);
        self.divergence_padded(&p, [0, 0, 0])
    }

    /// Whole-field periodic velocity gradient (see [`DiffScheme::curl`]).
    pub fn gradient(&self, v: &VectorField<3>) -> [ScalarField; 9] {
        let p = self.pad_whole(v);
        self.grad_padded(&p, [0, 0, 0])
    }

    fn pad_whole(&self, v: &VectorField<3>) -> PaddedVector<3> {
        assert_eq!(v.dims(), self.dims, "field does not span the scheme's grid");
        let (nx, ny, nz) = v.dims();
        let mut p = PaddedVector::zeros(nx, ny, nz, self.halo());
        p.fill_periodic_from(v, [0, 0, 0]);
        p
    }
}

/// The original per-point stencil loop, used as the bounded-x fallback and
/// as the reference implementation the chunked path is proptested against.
fn apply_axis_scalar(
    scheme: &AxisScheme,
    f: &PaddedScalar,
    axis: usize,
    origin: [usize; 3],
    out: &mut ScalarField,
) {
    let (nx, ny, nz) = f.dims();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let global = origin[axis]
                    + match axis {
                        0 => x,
                        1 => y,
                        _ => z,
                    };
                let s = scheme.stencil(global);
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let d = s.apply(|o| {
                    let v = match axis {
                        0 => f.get(xi + o, yi, zi),
                        1 => f.get(xi, yi + o, zi),
                        _ => f.get(xi, yi, zi + o),
                    };
                    f64::from(v)
                });
                out.set(x, y, z, d as f32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;
    use tdb_field::ScalarField;

    fn wave_field(n: usize) -> (Grid3, VectorField<3>) {
        let grid = Grid3::periodic_cube(n, TAU);
        let h = TAU / n as f64;
        let f = |k: f64, i: usize| (k * h * i as f64).sin() as f32;
        let vx = ScalarField::from_fn(n, n, n, |_, y, _| f(1.0, y));
        let vy = ScalarField::from_fn(n, n, n, |_, _, z| f(2.0, z));
        let vz = ScalarField::from_fn(n, n, n, |x, _, _| f(3.0, x));
        (grid, VectorField::from_components([vx, vy, vz]))
    }

    #[test]
    fn curl_of_waves_matches_analytic() {
        let n = 48;
        let (grid, v) = wave_field(n);
        let scheme = DiffScheme::new(&grid, FdOrder::O6);
        let c = scheme.curl(&v);
        let h = TAU / n as f64;
        // vx = sin(y), vy = sin(2z), vz = sin(3x)
        // curl = (0 - 2cos(2z), 0 - 3cos(3x), 0 - cos(y))
        let mut max_err = 0.0f64;
        for z in (0..n).step_by(5) {
            for y in (0..n).step_by(5) {
                for x in (0..n).step_by(5) {
                    let ex = -2.0 * (2.0 * h * z as f64).cos();
                    let ey = -3.0 * (3.0 * h * x as f64).cos();
                    let ez = -(h * y as f64).cos();
                    let got = c.at(x, y, z);
                    max_err = max_err
                        .max((f64::from(got[0]) - ex).abs())
                        .max((f64::from(got[1]) - ey).abs())
                        .max((f64::from(got[2]) - ez).abs());
                }
            }
        }
        assert!(max_err < 1e-4, "max err {max_err}");
    }

    #[test]
    fn divergence_of_curl_is_zero() {
        // discrete identity: centred differences commute, so div(curl f) = 0
        // to machine precision for any periodic field.
        let n = 16;
        let grid = Grid3::periodic_cube(n, TAU);
        let mk = |seed: u32| {
            ScalarField::from_fn(n, n, n, |x, y, z| {
                let v = (x as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add((y as u32).wrapping_mul(40503))
                    .wrapping_add((z as u32).wrapping_mul(9973))
                    .wrapping_add(seed.wrapping_mul(7919));
                ((v >> 8) as f32 / 16777216.0) - 0.5
            })
        };
        let v = VectorField::from_components([mk(1), mk(2), mk(3)]);
        for order in FdOrder::all() {
            let scheme = DiffScheme::new(&grid, order);
            let c = scheme.curl(&v);
            let d = scheme.divergence(&c);
            let max = d.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            assert!(max < 2e-4, "order {:?}: max |div curl| = {max}", order);
        }
    }

    #[test]
    fn gradient_layout_is_row_major() {
        let n = 16;
        let grid = Grid3::periodic_cube(n, TAU);
        let h = TAU / n as f64;
        // u = (sin x, 0, 0): only ∂u_x/∂x nonzero (index 0)
        let vx = ScalarField::from_fn(n, n, n, |x, _, _| (h * x as f64).sin() as f32);
        let v = VectorField::from_components([
            vx,
            ScalarField::zeros(n, n, n),
            ScalarField::zeros(n, n, n),
        ]);
        let g = DiffScheme::new(&grid, FdOrder::O4).gradient(&v);
        assert!((f64::from(g[0].get(0, 3, 3)) - 1.0).abs() < 1e-3);
        for (k, comp) in g.iter().enumerate().skip(1) {
            let max = comp.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            assert!(max < 1e-5, "component {k} should vanish, max {max}");
        }
    }

    #[test]
    fn chunked_derivative_equals_whole_field() {
        let n = 32;
        let (grid, v) = wave_field(n);
        let scheme = DiffScheme::new(&grid, FdOrder::O4);
        let whole = scheme.curl(&v);
        // evaluate an interior chunk with halo and compare
        let origin = [8usize, 16, 4];
        let (cx, cy, cz) = (8usize, 8, 8);
        let mut p = PaddedVector::zeros(cx, cy, cz, scheme.halo());
        p.fill_periodic_from(&v, origin);
        let chunk = scheme.curl_padded(&p, origin);
        for z in 0..cz {
            for y in 0..cy {
                for x in 0..cx {
                    let w = whole.at(origin[0] + x, origin[1] + y, origin[2] + z);
                    let c = chunk.at(x, y, z);
                    for k in 0..3 {
                        assert!(
                            (w[k] - c[k]).abs() < 1e-6,
                            "mismatch at ({x},{y},{z}) comp {k}"
                        );
                    }
                }
            }
        }
    }

    use proptest::prelude::*;

    /// f32 values including NaN, infinities, zeros, and denormals, so the
    /// bitwise-identity proptests cover every funny value a field can hold.
    fn any_f32() -> impl Strategy<Value = f32> {
        prop_oneof![
            -1.0e6f32..1.0e6,
            Just(f32::NAN),
            Just(f32::INFINITY),
            Just(f32::NEG_INFINITY),
            Just(-0.0f32),
            Just(f32::MIN_POSITIVE / 2.0),
        ]
    }

    proptest! {
        #[test]
        fn chunked_derivative_is_bitwise_identical_to_reference(
            order_idx in 0usize..4,
            nx in 3usize..9, ny in 3usize..9, nz in 3usize..9,
            vals in prop::collection::vec(any_f32(), 4096..4097),
        ) {
            let order = FdOrder::all()[order_idx];
            let grid = Grid3::periodic_cube(16, TAU);
            let scheme = DiffScheme::new(&grid, order);
            let h = scheme.halo();
            let mut p = PaddedScalar::zeros(nx, ny, nz, h);
            let (px, py, _) = (nx + 2 * h, ny + 2 * h, nz + 2 * h);
            p.fill(|x, y, z| {
                let i = (x + h as isize) as usize
                    + px * ((y + h as isize) as usize + py * (z + h as isize) as usize);
                vals[i % vals.len()]
            });
            for axis in 0..3 {
                let chunked = scheme.deriv_padded(&p, axis, [0, 0, 0]);
                let reference = scheme.deriv_padded_reference(&p, axis, [0, 0, 0]);
                for (i, (c, r)) in chunked.as_slice().iter().zip(reference.as_slice()).enumerate() {
                    // Bit-identical for every representable value. NaNs are
                    // compared as a class: IEEE 754 leaves the sign/payload
                    // of invalid-op NaNs (∞ − ∞ inside a stencil sum)
                    // unspecified and LLVM does not preserve them across
                    // differently-shaped loops at opt-level ≥ 2.
                    prop_assert!(
                        c.to_bits() == r.to_bits() || (c.is_nan() && r.is_nan()),
                        "axis {} idx {} order {:?} dims {}x{}x{}: {:#010x} vs {:#010x}",
                        axis, i, order, nx, ny, nz, c.to_bits(), r.to_bits()
                    );
                }
            }
        }

        #[test]
        fn chunked_bounded_axis_is_bitwise_identical_to_reference(
            order_idx in 0usize..4,
            vals in prop::collection::vec(any_f32(), 4096..4097),
        ) {
            // Channel grid: bounded stretched y axis exercises the per-row
            // stencil table (one-sided stencils near the walls).
            let order = FdOrder::all()[order_idx];
            let grid = Grid3::channel(8, 33, 8, TAU, TAU, 1.7);
            let scheme = DiffScheme::new(&grid, order);
            let h = scheme.halo();
            let mut p = PaddedScalar::zeros(8, 33, 8, h);
            let (px, py) = (8 + 2 * h, 33 + 2 * h);
            p.fill(|x, y, z| {
                let i = (x + h as isize) as usize
                    + px * ((y + h as isize) as usize + py * (z + h as isize) as usize);
                vals[i % vals.len()]
            });
            for axis in 0..3 {
                let chunked = scheme.deriv_padded(&p, axis, [0, 0, 0]);
                let reference = scheme.deriv_padded_reference(&p, axis, [0, 0, 0]);
                for (c, r) in chunked.as_slice().iter().zip(reference.as_slice()) {
                    prop_assert!(
                        c.to_bits() == r.to_bits() || (c.is_nan() && r.is_nan()),
                        "axis {}: {:#010x} vs {:#010x}", axis, c.to_bits(), r.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_axis_derivative_on_channel_grid() {
        // f(y) = y^2 on the stretched channel axis; df/dy = 2y exactly
        // (order >= 2 is exact for quadratics).
        let grid = Grid3::channel(8, 33, 8, TAU, TAU, 1.7);
        let scheme = DiffScheme::new(&grid, FdOrder::O4);
        let ys: Vec<f64> = (0..33).map(|j| grid.sy.coord(j)).collect();
        let f = ScalarField::from_fn(8, 33, 8, |_, y, _| (ys[y] * ys[y]) as f32);
        // whole-domain "chunk": halo only used on periodic axes
        let mut p = PaddedScalar::zeros(8, 33, 8, scheme.halo());
        p.fill(|x, y, z| {
            let xi = x.rem_euclid(8) as usize;
            let zi = z.rem_euclid(8) as usize;
            let yi = y.clamp(0, 32) as usize; // clamped ghosts never read on axis 1
            f.get(xi, yi, zi)
        });
        let d = scheme.deriv_padded(&p, 1, [0, 0, 0]);
        for (j, &yj) in ys.iter().enumerate() {
            let got = f64::from(d.get(3, j, 3));
            assert!(
                (got - 2.0 * yj).abs() < 1e-4,
                "node {j}: {got} vs {}",
                2.0 * yj
            );
        }
    }
}
