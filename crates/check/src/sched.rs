//! The deterministic scheduler at the heart of `tdb-check`.
//!
//! A model run executes its virtual threads on real OS threads, but at
//! most one runs at any instant: every synchronization operation routed
//! here through the `parking_lot` shim's [`parking_lot::model::Hooks`]
//! parks the calling thread and hands a *baton* to whichever enabled
//! thread the active [`Decider`] picks. The sequence of picks is the
//! *schedule trace* — a complete, replayable description of the
//! interleaving.
//!
//! Blocking is virtual. The scheduler maintains its own lock tables and
//! condvar waiter queues; a thread only touches the underlying `std`
//! primitive once the scheduler has granted the operation, at which
//! point the primitive is guaranteed uncontended among virtual threads.
//! Untimed condvar waiters are *not* enabled until notified — so a lost
//! notification manifests as a detected deadlock rather than a hang —
//! while timed waiters can always be woken through the timeout path,
//! which the scheduler treats as an ordinary choice (virtual time: the
//! timeout fires whenever the schedule says it does).

use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, OnceLock, PoisonError};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::{Failure, FailureKind};

/// Hard cap on virtual threads per model: keeps enabled sets, traces
/// and the systematic tree small enough to explore.
pub const MAX_THREADS: usize = 8;

/// Sentinel panic payload used to unwind parked virtual threads when a
/// run aborts. Never reported as a model failure and never printed.
pub(crate) struct ModelAbort;

thread_local! {
    /// The calling OS thread's virtual-thread index, when it is one.
    pub(crate) static VTID: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The calling thread's virtual-thread index, if any.
pub(crate) fn vtid() -> Option<usize> {
    VTID.with(|v| v.get())
}

/// The operation a parked virtual thread is waiting to perform.
///
/// Operations split into two classes. *Eager* operations — `Start`,
/// `Unlock`, `RwRel`, and an enabled `Join` — commute with every
/// operation they can be co-enabled with (a release cannot race an
/// acquire of the same lock, because that acquire is disabled until the
/// release lands), so executing them immediately loses no behaviors:
/// they are granted without consuming a schedule decision. Everything
/// else conflicts with some co-enabled operation and is a *decision*:
/// the explorer branches over all of them. This is the checker's
/// partial-order reduction (DPOR-lite).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Pending {
    /// Begin executing the thread closure (eager).
    Start,
    /// Acquire the mutex at this address (enabled while unheld).
    Lock(usize),
    /// Release the mutex (eager).
    Unlock(usize),
    /// Acquire the rwlock, shared or exclusive.
    RwAcq { l: usize, write: bool },
    /// Release the rwlock (eager).
    RwRel { l: usize, write: bool },
    /// About to enter a condvar wait: the mutex release and waiter
    /// enqueue happen atomically when this is granted. A decision, so a
    /// notify can race into the window between the caller's last
    /// predicate check and the wait — the lost-wakeup window.
    WaitEnter { cv: usize, m: usize, timed: bool },
    /// Parked in the condvar's waiter queue. Untimed waits are not
    /// enabled (only a notify can free them — so a lost notification
    /// becomes a detected deadlock); timed waits are always enabled,
    /// and being chosen means the timeout fired.
    Waiting { cv: usize, m: usize, timed: bool },
    /// Woken from a condvar wait (by notify or timeout); contending to
    /// re-acquire the mutex before the wait call can return.
    Relock { m: usize, timed_out: bool },
    /// Wake one or all waiters (no waiters = the notify is lost).
    Notify { cv: usize, all: bool },
    /// One [`parking_lot::AtomicCell`] step.
    Atomic(usize),
    /// Join a virtual thread (eager once the thread has finished).
    Join(usize),
}

/// Lifecycle of a virtual thread.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Phase {
    /// Holds the baton and is executing user code.
    Running,
    /// Parked at a yield point, waiting for the scheduler's grant.
    Blocked(Pending),
    /// Closure returned (or thread unwound during an abort).
    Finished,
}

/// One decision point in the systematic search tree: the enabled set
/// that was seen there and which alternative the current path takes.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Enabled virtual threads at this decision, in index order.
    pub choices: Vec<usize>,
    /// Index into `choices` the current iteration takes.
    pub cursor: usize,
}

/// Schedule decision policy for one iteration.
pub(crate) enum Decider {
    /// Follow an explicit trace; first-enabled once it is exhausted.
    Replay { decisions: Vec<usize>, pos: usize },
    /// Seeded uniform choice among the enabled set.
    Random { rng: ChaCha8Rng },
    /// Depth-bounded DFS over decision alternatives; first-enabled
    /// default beyond the bound. The tree persists across iterations;
    /// `clipped` records that some schedule ran past the depth bound
    /// (so exhausting the tree is not full coverage).
    Systematic {
        tree: Vec<Node>,
        pos: usize,
        depth: usize,
        clipped: bool,
    },
}

impl Decider {
    /// Picks one of `choices` (virtual-thread ids). `Err` carries a
    /// divergence message: the recorded decision is impossible in the
    /// current run.
    fn choose(&mut self, choices: &[usize]) -> Result<usize, String> {
        match self {
            Decider::Replay { decisions, pos } => {
                if *pos < decisions.len() {
                    let want = decisions[*pos];
                    *pos += 1;
                    if choices.contains(&want) {
                        Ok(want)
                    } else {
                        Err(format!(
                            "schedule step {} chose vt{} but the enabled set is {:?} — \
                             trace does not match this model/build",
                            *pos - 1,
                            want,
                            choices
                        ))
                    }
                } else {
                    Ok(choices[0])
                }
            }
            Decider::Random { rng } => Ok(choices[rng.gen_range(0..choices.len())]),
            Decider::Systematic {
                tree,
                pos,
                depth,
                clipped,
            } => {
                if *pos < tree.len() {
                    let node = &tree[*pos];
                    let vt = node.choices[node.cursor];
                    *pos += 1;
                    if choices.contains(&vt) {
                        Ok(vt)
                    } else {
                        Err(format!(
                            "systematic prefix diverged at step {}: vt{} no longer \
                             enabled in {:?} — the model is nondeterministic",
                            *pos - 1,
                            vt,
                            choices
                        ))
                    }
                } else if tree.len() < *depth {
                    tree.push(Node {
                        choices: choices.to_vec(),
                        cursor: 0,
                    });
                    *pos = tree.len();
                    Ok(choices[0])
                } else {
                    *clipped = true;
                    Ok(choices[0])
                }
            }
        }
    }
}

/// Advances the systematic tree to the next unexplored schedule prefix;
/// returns false when the depth-bounded tree is exhausted. Operations
/// that commute with everything they can be co-enabled with were
/// granted eagerly and never reached the tree; the remaining decision
/// alternatives can all be disabled by a different ordering, so every
/// sibling is explored.
pub(crate) fn backtrack(tree: &mut Vec<Node>) -> bool {
    while let Some(node) = tree.last_mut() {
        node.cursor += 1;
        if node.cursor < node.choices.len() {
            return true;
        }
        tree.pop();
    }
    false
}

/// Shared/exclusive hold state of one modeled rwlock.
#[derive(Debug, Default)]
pub(crate) struct RwState {
    readers: Vec<usize>,
    writer: Option<usize>,
}

/// All mutable state of the current model iteration. Guarded by the
/// scheduler mutex; every transition happens under it.
pub(crate) struct RunState {
    /// An iteration is in progress (hooks are live).
    pub active: bool,
    /// The iteration is being torn down; parked threads must unwind.
    pub aborted: bool,
    /// First failure observed this iteration.
    pub failure: Option<Failure>,
    pub threads: Vec<Phase>,
    /// Per-thread: whether the last condvar wake was a timeout.
    pub wake_timed_out: Vec<bool>,
    /// Mutex address → holder.
    mutexes: HashMap<usize, usize>,
    rwlocks: HashMap<usize, RwState>,
    /// Condvar address → waiters in wait order.
    cv_waiters: HashMap<usize, Vec<usize>>,
    /// First-seen interning of primitive addresses → stable ordinals,
    /// so failure messages are byte-identical under replay.
    names: HashMap<usize, usize>,
    /// Decisions taken so far this iteration.
    pub trace: Vec<usize>,
    steps: usize,
    step_limit: usize,
    pub decider: Decider,
    /// Join handles of spawned child OS threads (vt0's is held by the
    /// controller).
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
    /// OS threads that have not yet exited their wrapper.
    pub live_os: usize,
}

impl RunState {
    pub(crate) fn idle() -> Self {
        Self {
            active: false,
            aborted: false,
            failure: None,
            threads: Vec::new(),
            wake_timed_out: Vec::new(),
            mutexes: HashMap::new(),
            rwlocks: HashMap::new(),
            cv_waiters: HashMap::new(),
            names: HashMap::new(),
            trace: Vec::new(),
            steps: 0,
            step_limit: 0,
            decider: Decider::Replay {
                decisions: Vec::new(),
                pos: 0,
            },
            os_handles: Vec::new(),
            live_os: 0,
        }
    }

    /// Resets for a fresh iteration with the given policy.
    pub(crate) fn reset(&mut self, decider: Decider, step_limit: usize) {
        *self = Self::idle();
        self.decider = decider;
        self.step_limit = step_limit;
    }

    fn intern(&mut self, addr: usize) -> usize {
        let next = self.names.len();
        *self.names.entry(addr).or_insert(next)
    }

    fn intern_op(&mut self, op: &Pending) {
        match *op {
            Pending::Lock(m) | Pending::Unlock(m) | Pending::Relock { m, .. } => {
                self.intern(m);
            }
            Pending::RwAcq { l, .. } | Pending::RwRel { l, .. } => {
                self.intern(l);
            }
            Pending::WaitEnter { cv, m, .. } | Pending::Waiting { cv, m, .. } => {
                self.intern(cv);
                self.intern(m);
            }
            Pending::Notify { cv, .. } => {
                self.intern(cv);
            }
            Pending::Atomic(c) => {
                self.intern(c);
            }
            Pending::Start | Pending::Join(_) => {}
        }
    }

    fn name(&self, addr: usize) -> usize {
        self.names.get(&addr).copied().unwrap_or(usize::MAX)
    }

    /// Whether `vt`'s pending operation can be granted right now.
    fn enabled(&self, op: &Pending) -> bool {
        match *op {
            Pending::Start
            | Pending::Unlock(_)
            | Pending::RwRel { .. }
            | Pending::WaitEnter { .. }
            | Pending::Notify { .. }
            | Pending::Atomic(_) => true,
            Pending::Lock(m) | Pending::Relock { m, .. } => !self.mutexes.contains_key(&m),
            Pending::RwAcq { l, write } => match self.rwlocks.get(&l) {
                None => true,
                Some(s) => s.writer.is_none() && (!write || s.readers.is_empty()),
            },
            // choosing a timed waiter means its timeout fires; untimed
            // waiters can only be woken by a notify
            Pending::Waiting { timed, .. } => timed,
            Pending::Join(t) => matches!(self.threads[t], Phase::Finished),
        }
    }

    /// Whether `op` is in the eager class: enabled, and commuting with
    /// every operation it can be co-enabled with — granting it
    /// immediately (without a schedule decision) loses no behaviors.
    fn eager(&self, op: &Pending) -> bool {
        match *op {
            Pending::Start | Pending::Unlock(_) | Pending::RwRel { .. } => true,
            Pending::Join(t) => matches!(self.threads[t], Phase::Finished),
            _ => false,
        }
    }

    /// Applies `vt`'s pending transition. Returns true when `vt` now
    /// holds the baton (caller stops picking).
    fn apply(&mut self, vt: usize) -> bool {
        let Phase::Blocked(op) = self.threads[vt].clone() else {
            unreachable!("applied a transition to a non-blocked thread");
        };
        match op {
            Pending::Start | Pending::Atomic(_) | Pending::Join(_) => {
                self.threads[vt] = Phase::Running;
                true
            }
            Pending::Lock(m) => {
                self.mutexes.insert(m, vt);
                self.threads[vt] = Phase::Running;
                true
            }
            Pending::Unlock(m) => {
                self.mutexes.remove(&m);
                self.threads[vt] = Phase::Running;
                true
            }
            Pending::RwAcq { l, write } => {
                let s = self.rwlocks.entry(l).or_default();
                if write {
                    s.writer = Some(vt);
                } else {
                    s.readers.push(vt);
                }
                self.threads[vt] = Phase::Running;
                true
            }
            Pending::RwRel { l, write } => {
                if let Some(s) = self.rwlocks.get_mut(&l) {
                    if write {
                        s.writer = None;
                    } else if let Some(p) = s.readers.iter().position(|&r| r == vt) {
                        s.readers.remove(p);
                    }
                }
                self.threads[vt] = Phase::Running;
                true
            }
            Pending::WaitEnter { cv, m, timed } => {
                // the atomic heart of a condvar wait: release the mutex
                // and join the waiter queue in one indivisible step
                let holder = self.mutexes.remove(&m);
                debug_assert_eq!(holder, Some(vt), "condvar wait without holding its mutex");
                self.cv_waiters.entry(cv).or_default().push(vt);
                self.threads[vt] = Phase::Blocked(Pending::Waiting { cv, m, timed });
                false
            }
            Pending::Waiting { cv, m, .. } => {
                // the scheduler chose the timeout path: leave the waiter
                // queue and contend for the mutex; no baton handed yet
                if let Some(ws) = self.cv_waiters.get_mut(&cv) {
                    ws.retain(|&w| w != vt);
                }
                self.threads[vt] = Phase::Blocked(Pending::Relock { m, timed_out: true });
                false
            }
            Pending::Relock { m, timed_out } => {
                self.mutexes.insert(m, vt);
                self.wake_timed_out[vt] = timed_out;
                self.threads[vt] = Phase::Running;
                true
            }
            Pending::Notify { cv, all } => {
                let woken: Vec<usize> = match self.cv_waiters.get_mut(&cv) {
                    Some(ws) if all => std::mem::take(ws),
                    Some(ws) if !ws.is_empty() => vec![ws.remove(0)],
                    _ => Vec::new(), // no waiters: the notify is lost
                };
                for w in woken {
                    let Phase::Blocked(Pending::Waiting { m, .. }) = self.threads[w] else {
                        unreachable!("condvar waiter list out of sync");
                    };
                    self.threads[w] = Phase::Blocked(Pending::Relock {
                        m,
                        timed_out: false,
                    });
                }
                self.threads[vt] = Phase::Running;
                true
            }
        }
    }

    /// Records the first failure and starts the abort protocol.
    pub(crate) fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                trace: trace_string(&self.trace),
            });
        }
        self.aborted = true;
    }

    /// Human-readable description of why no thread can run.
    fn stuck_report(&self) -> String {
        let mut parts = Vec::new();
        for (vt, ph) in self.threads.iter().enumerate() {
            let Phase::Blocked(op) = ph else { continue };
            let what = match *op {
                Pending::Lock(m) => format!("waiting to lock mutex #{}", self.name(m)),
                Pending::Relock { m, .. } => format!(
                    "woken from a condvar but waiting to re-lock mutex #{}",
                    self.name(m)
                ),
                Pending::Waiting { cv, .. } => format!(
                    "waiting on condvar #{} with no notify in flight (lost wakeup?)",
                    self.name(cv)
                ),
                Pending::RwAcq { l, write } => format!(
                    "waiting for {} access to rwlock #{}",
                    if write { "exclusive" } else { "shared" },
                    self.name(l)
                ),
                Pending::Join(t) => format!("joining vt{t}"),
                ref other => format!("stuck at {other:?}"),
            };
            parts.push(format!("vt{vt} {what}"));
        }
        format!("deadlock: {}", parts.join("; "))
    }
}

/// Formats a decision list as the canonical dot-separated trace.
pub(crate) fn trace_string(decisions: &[usize]) -> String {
    decisions
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Parses a dot-separated trace. `Err` names the offending component.
pub(crate) fn parse_trace(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|part| {
            part.parse::<usize>()
                .map_err(|_| format!("bad schedule component {part:?} (want a thread index)"))
        })
        .collect()
}

/// Picks and applies transitions until some thread holds the baton, the
/// iteration completes, or it fails (deadlock / step limit / policy
/// divergence). Called with zero threads in [`Phase::Running`].
pub(crate) fn advance(st: &mut RunState) {
    loop {
        if st.aborted {
            return;
        }
        // eager pass: grant commuting-with-everything operations
        // immediately (lowest index first — deterministic), consuming
        // no schedule decision
        let eager = st.threads.iter().enumerate().find_map(|(vt, ph)| match ph {
            Phase::Blocked(op) if st.eager(op) => Some(vt),
            _ => None,
        });
        if let Some(vt) = eager {
            if st.apply(vt) {
                return;
            }
            continue;
        }
        let mut choices = Vec::new();
        for (vt, ph) in st.threads.iter().enumerate() {
            if let Phase::Blocked(op) = ph {
                if st.enabled(op) {
                    choices.push(vt);
                }
            }
        }
        if choices.is_empty() {
            if st.threads.iter().all(|p| *p == Phase::Finished) {
                return; // iteration complete
            }
            let msg = st.stuck_report();
            st.fail(FailureKind::Deadlock, msg);
            return;
        }
        st.steps += 1;
        if st.steps > st.step_limit {
            let limit = st.step_limit;
            st.fail(
                FailureKind::StepLimit,
                format!(
                    "exceeded {limit} scheduling steps — livelock, or raise the \
                     TDB_MODEL_STEPS budget"
                ),
            );
            return;
        }
        let vt = match st.decider.choose(&choices) {
            Ok(vt) => vt,
            Err(msg) => {
                st.fail(FailureKind::ReplayDivergence, msg);
                return;
            }
        };
        st.trace.push(vt);
        if st.apply(vt) {
            return;
        }
    }
}

/// The process-wide scheduler: iteration state plus the condvar every
/// parked virtual thread (and the controller) waits on.
pub(crate) struct Sched {
    state: StdMutex<RunState>,
    cv: StdCondvar,
}

/// The scheduler singleton.
pub(crate) fn sched() -> &'static Sched {
    static S: OnceLock<Sched> = OnceLock::new();
    S.get_or_init(|| Sched {
        state: StdMutex::new(RunState::idle()),
        cv: StdCondvar::new(),
    })
}

/// Unwinds the calling virtual thread during an abort — unless it is
/// already unwinding (a panic inside unwinding aborts the process), in
/// which case the hook quietly becomes a no-op.
fn abort_unwind() {
    if !std::thread::panicking() {
        panic_any(ModelAbort);
    }
}

impl Sched {
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, RunState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Controller-side wait on the scheduler condvar (teardown barrier).
    pub(crate) fn controller_wait<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, RunState>,
    ) -> std::sync::MutexGuard<'a, RunState> {
        self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// The universal yield point: registers the pending operation, lets
    /// the decider hand the baton onward, and parks until granted.
    pub(crate) fn yield_op(&self, op: Pending) {
        let me = vtid().expect("yield point on a non-virtual thread");
        let mut st = self.lock();
        if !st.active {
            return;
        }
        if st.aborted {
            drop(st);
            abort_unwind();
            return;
        }
        st.intern_op(&op);
        st.threads[me] = Phase::Blocked(op);
        advance(&mut st);
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                abort_unwind();
                return;
            }
            if st.threads[me] == Phase::Running {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Condvar wait: parks via [`Self::yield_op`], then reports whether
    /// the wake came from the timeout path.
    pub(crate) fn cv_wait(&self, cv: usize, m: usize, timed: bool) -> bool {
        let me = vtid().expect("condvar wait on a non-virtual thread");
        self.yield_op(Pending::WaitEnter { cv, m, timed });
        let st = self.lock();
        st.wake_timed_out.get(me).copied().unwrap_or(false)
    }

    /// Parks a fresh virtual thread until its `Start` is granted.
    /// Returns false when the run aborted before the thread ever ran.
    pub(crate) fn wait_start(&self, me: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.aborted {
                return false;
            }
            if st.threads[me] == Phase::Running {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Thread closure finished (or unwound): hand the baton onward.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = Phase::Finished;
        if !st.aborted {
            advance(&mut st);
        }
        self.cv.notify_all();
    }

    /// Thread closure panicked with a genuine (non-sentinel) payload:
    /// record the failure and abort the iteration.
    pub(crate) fn fail_panic(&self, me: usize, message: String) {
        let mut st = self.lock();
        st.threads[me] = Phase::Finished;
        st.fail(FailureKind::Panic, message);
        self.cv.notify_all();
    }

    /// OS-thread wrapper exit: the controller tears down once all live
    /// wrappers are gone.
    pub(crate) fn os_exit(&self) {
        let mut st = self.lock();
        st.live_os -= 1;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_classification() {
        let st = {
            let mut st = RunState::idle();
            st.threads = vec![Phase::Finished, Phase::Running];
            st
        };
        assert!(st.eager(&Pending::Start));
        assert!(st.eager(&Pending::Unlock(1)));
        assert!(st.eager(&Pending::RwRel { l: 1, write: true }));
        assert!(st.eager(&Pending::Join(0)), "target finished: eager");
        assert!(!st.eager(&Pending::Join(1)), "target running: blocked");
        assert!(!st.eager(&Pending::Lock(1)));
        assert!(!st.eager(&Pending::Notify { cv: 1, all: false }));
        assert!(!st.eager(&Pending::Atomic(1)));
        assert!(!st.eager(&Pending::WaitEnter {
            cv: 1,
            m: 2,
            timed: false
        }));
    }

    #[test]
    fn backtrack_walks_the_tree_depth_first() {
        let mut tree = vec![
            Node {
                choices: vec![0, 1],
                cursor: 0,
            },
            Node {
                choices: vec![1, 2],
                cursor: 0,
            },
        ];
        assert!(backtrack(&mut tree));
        assert_eq!((tree.len(), tree[1].cursor), (2, 1));
        assert!(backtrack(&mut tree));
        assert_eq!((tree.len(), tree[0].cursor), (1, 1));
        assert!(!backtrack(&mut tree));
        assert!(tree.is_empty());
    }

    #[test]
    fn trace_roundtrip() {
        assert_eq!(parse_trace("").unwrap(), Vec::<usize>::new());
        assert_eq!(parse_trace("0.2.1").unwrap(), vec![0, 2, 1]);
        assert_eq!(trace_string(&[0, 2, 1]), "0.2.1");
        assert!(parse_trace("0.x.1").is_err());
    }
}
