//! `tdb-check`: a loom-style deterministic concurrency model checker.
//!
//! Small *closed models* of the workspace's concurrent components run on
//! virtual threads under a controlled scheduler (see [`sched`]): every
//! `parking_lot` shim operation — mutex lock/unlock, rwlock access,
//! condvar wait/notify, [`parking_lot::AtomicCell`] step — is a yield
//! point, and the checker decides which thread moves at each one. The
//! schedule space is explored two ways, both deterministic:
//!
//! 1. **Bounded-depth systematic search**: depth-first over decision
//!    alternatives for the first `TDB_MODEL_DEPTH` decisions, with a
//!    DPOR-lite reduction (alternatives that merely reorder commuting
//!    operations are skipped).
//! 2. **Seeded random walks**: uniform choices from a `ChaCha8Rng`
//!    seeded from `TDB_MODEL_SEED` and the iteration index, for tail
//!    coverage past the systematic depth bound.
//!
//! Detected failures — deadlock (which is also how a *lost notification*
//! manifests: an untimed waiter nobody will ever notify), panics and
//! assertion violations inside the model, livelock via step budget —
//! come with a *schedule trace*: the dot-separated list of thread
//! indices chosen at each decision. Setting `TDB_MODEL_SCHEDULE=<trace>`
//! replays exactly that interleaving, reproducing the failure
//! byte-identically.
//!
//! ```no_run
//! use parking_lot::Mutex;
//! use std::sync::Arc;
//!
//! tdb_check::Model::new("two increments").check(|| {
//!     let n = Arc::new(Mutex::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = tdb_check::thread::spawn(move || *n2.lock() += 1);
//!     *n.lock() += 1;
//!     t.join();
//!     assert_eq!(*n.lock(), 2);
//! });
//! ```
//!
//! Budgets: `TDB_MODEL_BUDGET` caps total schedules per model (half
//! systematic, half random), `TDB_MODEL_DEPTH` the systematic branching
//! depth, `TDB_MODEL_STEPS` the per-schedule step count (livelock
//! backstop). Builder methods override the environment per model.

mod sched;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sched::{
    advance, backtrack, parse_trace, sched, vtid, Decider, ModelAbort, Node, Pending, Phase, VTID,
};

pub use sched::MAX_THREADS;

/// What kind of failure a schedule exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread can make progress (includes lost notifications: an
    /// untimed condvar waiter with no notify in flight).
    Deadlock,
    /// A virtual thread panicked — assertion or byte-identity violation.
    Panic,
    /// A supplied schedule trace does not match the model's behavior.
    ReplayDivergence,
    /// The per-schedule step budget ran out (livelock suspect).
    StepLimit,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::Panic => "panic",
            FailureKind::ReplayDivergence => "replay divergence",
            FailureKind::StepLimit => "step limit",
        };
        f.write_str(s)
    }
}

/// A failing schedule: what went wrong and the exact interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    pub kind: FailureKind,
    /// Stable description (primitive addresses are interned to
    /// first-seen ordinals so replays produce identical text).
    pub message: String,
    /// Dot-separated decision list; feed to `TDB_MODEL_SCHEDULE` or
    /// [`Model::replay`] to reproduce.
    pub trace: String,
}

/// Outcome of exploring (or replaying) a model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub iterations: usize,
    /// First failure found, if any.
    pub failure: Option<Failure>,
    /// The bounded systematic search space was fully covered (no
    /// failure can hide within the depth bound).
    pub exhausted: bool,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A named closed model plus its exploration budget.
pub struct Model {
    name: String,
    budget: usize,
    depth: usize,
    seed: u64,
    step_limit: usize,
}

impl Model {
    /// A model with budgets from the environment (`TDB_MODEL_BUDGET`,
    /// `TDB_MODEL_DEPTH`, `TDB_MODEL_SEED`, `TDB_MODEL_STEPS`) or their
    /// defaults.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            budget: env_usize("TDB_MODEL_BUDGET", 2048),
            depth: env_usize("TDB_MODEL_DEPTH", 20),
            seed: env_u64("TDB_MODEL_SEED", 1),
            step_limit: env_usize("TDB_MODEL_STEPS", 50_000),
        }
    }

    /// Caps the total number of schedules explored.
    pub fn budget(mut self, iterations: usize) -> Self {
        self.budget = iterations.max(1);
        self
    }

    /// Caps the systematic branching depth (decisions, not steps).
    pub fn depth(mut self, decisions: usize) -> Self {
        self.depth = decisions;
        self
    }

    /// Seed for the random-walk phase.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-schedule step budget (livelock backstop).
    pub fn step_limit(mut self, steps: usize) -> Self {
        self.step_limit = steps.max(1);
        self
    }

    /// Explores the model and panics with the failing schedule if any
    /// schedule misbehaves. When `TDB_MODEL_SCHEDULE` is set, replays
    /// exactly that schedule instead of exploring.
    ///
    /// The closure runs once per schedule on virtual thread 0; it may
    /// spawn more via [`thread::spawn`]. It must be deterministic given
    /// the schedule: no wall-clock time, no ambient randomness.
    pub fn check<F>(self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let name = self.name.clone();
        let report = if let Ok(tr) = std::env::var("TDB_MODEL_SCHEDULE") {
            self.replay_inner(&tr, f, false)
        } else {
            self.explore(f, false)
        };
        if let Some(fail) = report.failure {
            panic!(
                "model '{name}' failed after {n} schedule(s)\n  {kind}: {msg}\n  \
                 trace: {trace}\n  reproduce: TDB_MODEL_SCHEDULE={trace}",
                n = report.iterations,
                kind = fail.kind,
                msg = fail.message,
                trace = fail.trace,
            );
        }
    }

    /// Explores the model and returns the outcome instead of panicking.
    /// Panic output from expected-buggy schedules is suppressed.
    pub fn check_quiet<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.explore(f, true)
    }

    /// Runs exactly one schedule and returns the outcome. The trace is
    /// the dot-separated decision list from a reported [`Failure`].
    pub fn replay<F>(self, trace: &str, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.replay_inner(trace, f, true)
    }

    fn replay_inner<F>(&self, trace: &str, f: F, quiet: bool) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let decisions = match parse_trace(trace) {
            Ok(d) => d,
            Err(msg) => panic!("model '{}': invalid schedule trace: {msg}", self.name),
        };
        let _permit = run_permit();
        let _quiet = QuietScope::new(quiet);
        install_hooks();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let (failure, _, _) = run_iteration(self, Decider::Replay { decisions, pos: 0 }, &f);
        Report {
            iterations: 1,
            failure,
            exhausted: false,
        }
    }

    fn explore<F>(&self, f: F, quiet: bool) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _permit = run_permit();
        let _quiet = QuietScope::new(quiet);
        install_hooks();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut iterations = 0usize;
        let mut exhausted = false;

        // phase 1: bounded-depth systematic DFS with DPOR-lite pruning
        let sys_budget = (self.budget / 2).max(1);
        let mut tree: Vec<Node> = Vec::new();
        let mut clipped_any = false;
        while iterations < sys_budget {
            let decider = Decider::Systematic {
                tree: std::mem::take(&mut tree),
                pos: 0,
                depth: self.depth,
                clipped: false,
            };
            let (failure, _, decider) = run_iteration(self, decider, &f);
            iterations += 1;
            if let Decider::Systematic {
                tree: t, clipped, ..
            } = decider
            {
                tree = t;
                clipped_any |= clipped;
            }
            if failure.is_some() {
                return Report {
                    iterations,
                    failure,
                    exhausted: false,
                };
            }
            if !backtrack(&mut tree) {
                // full coverage only if no schedule outran the depth bound
                exhausted = !clipped_any;
                break;
            }
        }

        // phase 2: seeded random walks for tail coverage (skipped when
        // the systematic phase already covered the whole bounded space)
        if !exhausted {
            while iterations < self.budget {
                let stream = self
                    .seed
                    .wrapping_add((iterations as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let decider = Decider::Random {
                    rng: ChaCha8Rng::seed_from_u64(stream),
                };
                let (failure, _, _) = run_iteration(self, decider, &f);
                iterations += 1;
                if failure.is_some() {
                    return Report {
                        iterations,
                        failure,
                        exhausted: false,
                    };
                }
            }
        }
        Report {
            iterations,
            failure: None,
            exhausted,
        }
    }
}

/// Serializes model runs process-wide (tests run concurrently; the
/// scheduler singleton handles one iteration at a time).
fn run_permit() -> StdMutexGuard<'static, ()> {
    static PERMIT: StdMutex<()> = StdMutex::new(());
    PERMIT.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Suppresses panic printing from virtual threads while a quiet run is
/// active (expected-buggy schedules would otherwise spam the test log).
static QUIET: AtomicBool = AtomicBool::new(false);

struct QuietScope;

impl QuietScope {
    fn new(quiet: bool) -> Self {
        QUIET.store(quiet, Ordering::Relaxed);
        QuietScope
    }
}

impl Drop for QuietScope {
    fn drop(&mut self) {
        QUIET.store(false, Ordering::Relaxed);
    }
}

/// The shim-facing hook implementation: routes every yield point into
/// the scheduler for the calling virtual thread.
struct CheckerHooks;

impl parking_lot::model::Hooks for CheckerHooks {
    fn active(&self) -> bool {
        vtid().is_some()
    }

    fn mutex_lock(&self, m: usize) {
        sched().yield_op(Pending::Lock(m));
    }

    fn mutex_unlock(&self, m: usize) {
        sched().yield_op(Pending::Unlock(m));
    }

    fn rw_lock(&self, l: usize, write: bool) {
        sched().yield_op(Pending::RwAcq { l, write });
    }

    fn rw_unlock(&self, l: usize, write: bool) {
        sched().yield_op(Pending::RwRel { l, write });
    }

    fn condvar_wait(&self, cv: usize, m: usize, timed: bool) -> bool {
        sched().cv_wait(cv, m, timed)
    }

    fn notify(&self, cv: usize, all: bool) {
        sched().yield_op(Pending::Notify { cv, all });
    }

    fn atomic_op(&self, cell: usize) {
        sched().yield_op(Pending::Atomic(cell));
    }
}

static HOOKS: CheckerHooks = CheckerHooks;

/// Installs the shim hooks and the quiet panic hook exactly once.
fn install_hooks() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        parking_lot::model::install(&HOOKS);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // sentinel unwinds are scheduler plumbing, never user-facing
            if info.payload().is::<ModelAbort>() {
                return;
            }
            if QUIET.load(Ordering::Relaxed) && vtid().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Body of every virtual OS thread: park for the `Start` grant, run the
/// closure, and route the outcome into the scheduler.
fn vthread_main(idx: usize, f: impl FnOnce()) {
    VTID.with(|v| v.set(Some(idx)));
    let s = sched();
    if s.wait_start(idx) {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(()) => s.finish(idx),
            Err(payload) => {
                if payload.is::<ModelAbort>() {
                    s.finish(idx);
                } else {
                    s.fail_panic(idx, payload_message(payload.as_ref()));
                }
            }
        }
    } else {
        s.finish(idx);
    }
    s.os_exit();
}

/// Runs one schedule to completion; returns its failure (if any), its
/// trace, and the decider (so the systematic tree survives).
fn run_iteration(
    model: &Model,
    decider: Decider,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Option<Failure>, Vec<usize>, Decider) {
    let s = sched();
    {
        let mut st = s.lock();
        assert!(
            !st.active,
            "model '{}': a model run is already active (runs are serialized)",
            model.name
        );
        st.reset(decider, model.step_limit);
        st.active = true;
        st.threads.push(Phase::Blocked(Pending::Start));
        st.wake_timed_out.push(false);
        st.live_os = 1;
        advance(&mut st);
    }
    let f2 = Arc::clone(f);
    let vt0 = std::thread::Builder::new()
        .name("vt0".into())
        .spawn(move || vthread_main(0, move || f2()))
        .expect("spawn model thread");
    let mut st = s.lock();
    while st.live_os > 0 {
        st = s.controller_wait(st);
    }
    let failure = st.failure.take();
    let trace = std::mem::take(&mut st.trace);
    let decider = std::mem::replace(
        &mut st.decider,
        Decider::Replay {
            decisions: Vec::new(),
            pos: 0,
        },
    );
    let handles = std::mem::take(&mut st.os_handles);
    st.active = false;
    st.aborted = false;
    drop(st);
    for h in handles {
        let _ = h.join();
    }
    let _ = vt0.join();
    (failure, trace, decider)
}

/// Virtual threads usable inside a model closure.
pub mod thread {
    use super::*;

    /// Spawns a virtual thread running `f` under the model scheduler.
    /// Only callable from inside a model; thread indices are assigned
    /// in spawn order, so traces are stable.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        assert!(
            vtid().is_some(),
            "tdb_check::thread::spawn may only be called from inside a model"
        );
        let s = sched();
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot2 = Arc::clone(&slot);
        let idx;
        {
            let mut st = s.lock();
            idx = st.threads.len();
            assert!(
                idx < MAX_THREADS,
                "model exceeds {MAX_THREADS} virtual threads"
            );
            st.threads.push(Phase::Blocked(Pending::Start));
            st.wake_timed_out.push(false);
            st.live_os += 1;
        }
        let h = std::thread::Builder::new()
            .name(format!("vt{idx}"))
            .spawn(move || {
                vthread_main(idx, move || {
                    let out = f();
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                })
            })
            .expect("spawn virtual thread");
        s.lock().os_handles.push(h);
        JoinHandle { vt: idx, slot }
    }

    /// Handle to a virtual thread; joining is a scheduling operation
    /// (enabled once the thread finished).
    pub struct JoinHandle<T> {
        vt: usize,
        slot: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks (virtually) until the thread finishes, returning its
        /// value. If the run aborted, the caller unwinds instead.
        pub fn join(self) -> T {
            sched().yield_op(Pending::Join(self.vt));
            self.slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("virtual thread terminated without a value")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::{AtomicCell, Condvar, Mutex};

    #[test]
    fn correct_model_passes_and_exhausts() {
        let report = Model::new("correct counter").budget(512).check_quiet(|| {
            let n = Arc::new(Mutex::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || *n2.lock() += 1);
            *n.lock() += 1;
            t.join();
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted, "small model must be fully explored");
    }

    #[test]
    fn atomic_cell_update_is_atomic() {
        let report = Model::new("atomic update").budget(512).check_quiet(|| {
            let c = Arc::new(AtomicCell::new(0u32));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.update(|v| v + 1);
            });
            c.update(|v| v + 1);
            t.join();
            assert_eq!(c.load(), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    #[test]
    fn predicate_wait_under_the_lock_is_sound() {
        let report = Model::new("sound condvar").budget(512).check_quiet(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock() = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            drop(ready);
            t.join();
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }
}
