//! Seeded-bug corpus: concurrency bugs the checker MUST catch within
//! the default budget, plus replay fidelity. Each bug is paired with
//! its corrected form, which must pass exhaustively — the checker has
//! to be sensitive to the bug and only the bug.

use std::sync::Arc;

use parking_lot::{AtomicCell, Condvar, Mutex};
use proptest::prelude::*;
use tdb_check::{thread, FailureKind, Model, Report};

/// Classic ABBA: one thread locks A then B, the other B then A.
fn abba_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop((ga, gb));
        });
        let gb = b.lock();
        let ga = a.lock();
        drop((gb, ga));
        t.join();
    }
}

/// Lost `notify_one`: the readiness flag is mutated *outside* the
/// mutex, so the notify can fire in the window between the waiter's
/// predicate check and its wait — and is lost forever.
fn lost_notify_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let ready = Arc::new(AtomicCell::new(false));
        let gate = Arc::new((Mutex::new(()), Condvar::new()));
        let (ready2, gate2) = (Arc::clone(&ready), Arc::clone(&gate));
        let t = thread::spawn(move || {
            ready2.store(true);
            gate2.1.notify_one();
        });
        let mut g = gate.0.lock();
        while !ready.load() {
            gate.1.wait(&mut g);
        }
        drop(g);
        t.join();
    }
}

/// Non-atomic check-then-act: `load` + `store` instead of an atomic
/// `update`, losing increments under the wrong interleaving.
fn racy_counter_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let c = Arc::new(AtomicCell::new(0u32));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let v = c2.load();
            c2.store(v + 1);
        });
        let v = c.load();
        c.store(v + 1);
        t.join();
        assert_eq!(c.load(), 2, "lost increment");
    }
}

/// Runs a buggy model under the default budget and asserts the checker
/// caught it with the expected failure kind; then replays the reported
/// trace twice and asserts the failure reproduces byte-identically.
fn must_catch(name: &str, kind: FailureKind, model: fn() -> Box<dyn Fn() + Send + Sync>) {
    let report = Model::new(name).check_quiet(model());
    let failure = report
        .failure
        .unwrap_or_else(|| panic!("checker missed the seeded bug in '{name}'"));
    assert_eq!(failure.kind, kind, "wrong failure kind: {failure:?}");
    assert!(!failure.trace.is_empty(), "failure must carry a trace");
    for round in 0..2 {
        let replayed: Report = Model::new(name).replay(&failure.trace, model());
        let again = replayed
            .failure
            .unwrap_or_else(|| panic!("round {round}: trace did not reproduce the failure"));
        assert_eq!(again, failure, "round {round}: replay diverged");
    }
}

#[test]
fn catches_abba_deadlock() {
    must_catch("seeded: ABBA deadlock", FailureKind::Deadlock, || {
        Box::new(abba_model())
    });
}

#[test]
fn catches_lost_notify_one() {
    must_catch("seeded: lost notify_one", FailureKind::Deadlock, || {
        Box::new(lost_notify_model())
    });
}

#[test]
fn catches_check_then_act_counter() {
    must_catch("seeded: racy counter", FailureKind::Panic, || {
        Box::new(racy_counter_model())
    });
}

/// The systematic phase is deterministic: two independent explorations
/// of the same model report the same trace.
#[test]
fn exploration_is_deterministic() {
    let a = Model::new("det A").check_quiet(abba_model());
    let b = Model::new("det B").check_quiet(abba_model());
    assert_eq!(a.failure, b.failure);
    assert_eq!(a.iterations, b.iterations);
}

/// Corrected counterparts must pass, and pass exhaustively where the
/// bounded space allows it.
#[test]
fn fixed_models_pass() {
    let ordered = Model::new("fixed: ordered locks")
        .budget(1024)
        .check_quiet(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop((ga, gb));
            });
            let ga = a.lock();
            let gb = b.lock();
            drop((ga, gb));
            t.join();
        });
    assert!(ordered.failure.is_none(), "{:?}", ordered.failure);

    let guarded = Model::new("fixed: flag under the mutex")
        .budget(1024)
        .check_quiet(|| {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            let gate2 = Arc::clone(&gate);
            let t = thread::spawn(move || {
                *gate2.0.lock() = true;
                gate2.1.notify_one();
            });
            let mut ready = gate.0.lock();
            while !*ready {
                gate.1.wait(&mut ready);
            }
            drop(ready);
            t.join();
        });
    assert!(guarded.failure.is_none(), "{:?}", guarded.failure);

    let atomic = Model::new("fixed: atomic update")
        .budget(1024)
        .check_quiet(|| {
            let c = Arc::new(AtomicCell::new(0u32));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.update(|v| v + 1);
            });
            c.update(|v| v + 1);
            t.join();
            assert_eq!(c.load(), 2);
        });
    assert!(atomic.failure.is_none(), "{:?}", atomic.failure);
}

/// Timed waits surface both outcomes: a model that relies on the
/// timeout path terminates (no deadlock), and the scheduler can drive
/// the wait through timeout and notify alike.
#[test]
fn timed_wait_explores_timeout_and_notify() {
    let report = Model::new("timed wait").budget(1024).check_quiet(|| {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let t = thread::spawn(move || {
            *gate2.0.lock() = true;
            gate2.1.notify_one();
        });
        let mut done = gate.0.lock();
        let mut timeouts = 0u32;
        while !*done {
            let r = gate
                .1
                .wait_for(&mut done, std::time::Duration::from_millis(1));
            if r.timed_out() {
                timeouts += 1;
                // bounded retry: a real system would re-check its
                // deadline; the model bounds the loop explicitly
                if timeouts > 4 {
                    break;
                }
            }
        }
        drop(done);
        t.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any reported schedule trace replays to the same failure: explore
    /// a seeded-buggy model under a random seed (forcing random-walk
    /// coverage with a tiny systematic depth), then replay whatever
    /// trace was reported and require an identical failure.
    #[test]
    fn reported_traces_replay_to_the_same_failure(seed in 0u64..1_000) {
        let report = Model::new("proptest: racy counter")
            .seed(seed)
            .depth(2)
            .budget(256)
            .check_quiet(racy_counter_model());
        let failure = report.failure.expect("budget must be enough to catch the seeded bug");
        let replayed = Model::new("proptest: racy counter replay")
            .replay(&failure.trace, racy_counter_model())
            .failure
            .expect("trace must reproduce the failure");
        prop_assert_eq!(replayed, failure);
    }
}
