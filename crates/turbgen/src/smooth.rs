//! Periodic separable smoothing.
//!
//! Three passes of a periodic box blur per axis approximate a Gaussian
//! (central-limit of top-hats) at O(N³) cost per pass, avoiding an FFT in
//! the bulk generation path.

use tdb_field::ScalarField;

/// One periodic box-blur pass of half-width `r` along `axis`.
pub fn box_blur_axis(f: &ScalarField, axis: usize, r: usize) -> ScalarField {
    assert!(axis < 3);
    let (nx, ny, nz) = f.dims();
    let n = [nx, ny, nz][axis];
    assert!(2 * r < n, "blur window exceeds axis extent");
    let mut out = ScalarField::zeros(nx, ny, nz);
    let inv = 1.0f64 / (2 * r + 1) as f64;
    // sliding-window sum along the axis with periodic wrap
    let idx = |x: usize, y: usize, z: usize| -> f32 { f.get(x, y, z) };
    match axis {
        0 => {
            for z in 0..nz {
                for y in 0..ny {
                    let mut sum: f64 = 0.0;
                    for k in 0..=2 * r {
                        sum += f64::from(idx((n - r + k) % n, y, z));
                    }
                    for x in 0..nx {
                        out.set(x, y, z, (sum * inv) as f32);
                        let leave = (x + n - r) % n;
                        let enter = (x + r + 1) % n;
                        sum += f64::from(idx(enter, y, z)) - f64::from(idx(leave, y, z));
                    }
                }
            }
        }
        1 => {
            for z in 0..nz {
                for x in 0..nx {
                    let mut sum: f64 = 0.0;
                    for k in 0..=2 * r {
                        sum += f64::from(idx(x, (n - r + k) % n, z));
                    }
                    for y in 0..ny {
                        out.set(x, y, z, (sum * inv) as f32);
                        let leave = (y + n - r) % n;
                        let enter = (y + r + 1) % n;
                        sum += f64::from(idx(x, enter, z)) - f64::from(idx(x, leave, z));
                    }
                }
            }
        }
        _ => {
            for y in 0..ny {
                for x in 0..nx {
                    let mut sum: f64 = 0.0;
                    for k in 0..=2 * r {
                        sum += f64::from(idx(x, y, (n - r + k) % n));
                    }
                    for z in 0..nz {
                        out.set(x, y, z, (sum * inv) as f32);
                        let leave = (z + n - r) % n;
                        let enter = (z + r + 1) % n;
                        sum += f64::from(idx(x, y, enter)) - f64::from(idx(x, y, leave));
                    }
                }
            }
        }
    }
    out
}

/// `passes` iterated periodic box blurs of half-width `r` on every axis.
pub fn smooth_periodic(f: &ScalarField, r: usize, passes: usize) -> ScalarField {
    let mut cur = f.clone();
    for _ in 0..passes {
        for axis in 0..3 {
            cur = box_blur_axis(&cur, axis, r);
        }
    }
    cur
}

/// Rescales the field in place to zero mean and unit RMS.
pub fn normalize_unit(f: &mut ScalarField) {
    let stats = tdb_field::FieldStats::of(f);
    let std = (stats.rms * stats.rms - stats.mean * stats.mean)
        .max(1e-30)
        .sqrt();
    let mean = stats.mean as f32;
    let inv = (1.0 / std) as f32;
    f.map_inplace(|v| (v - mean) * inv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::gaussian_field;
    use tdb_field::FieldStats;

    #[test]
    fn blur_preserves_mean() {
        let f = gaussian_field(16, 16, 16, 1);
        let before = FieldStats::of(&f).mean;
        let g = smooth_periodic(&f, 2, 2);
        let after = FieldStats::of(&g).mean;
        assert!((before - after).abs() < 1e-5);
    }

    #[test]
    fn blur_reduces_variance() {
        let f = gaussian_field(24, 24, 24, 2);
        let g = smooth_periodic(&f, 2, 1);
        assert!(FieldStats::of(&g).rms < 0.5 * FieldStats::of(&f).rms);
    }

    #[test]
    fn blur_of_constant_is_identity() {
        let mut f = ScalarField::zeros(8, 8, 8);
        f.map_inplace(|_| 5.0);
        let g = smooth_periodic(&f, 1, 3);
        for v in g.as_slice() {
            assert!((v - 5.0).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_is_periodic() {
        // an impulse at the edge leaks to the opposite side
        let mut f = ScalarField::zeros(8, 8, 8);
        f.set(0, 4, 4, 8.0);
        let g = box_blur_axis(&f, 0, 1);
        assert!(g.get(7, 4, 4) > 0.0);
        assert!(g.get(1, 4, 4) > 0.0);
        assert_eq!(g.get(3, 4, 4), 0.0);
    }

    #[test]
    fn sliding_window_matches_naive() {
        let f = gaussian_field(8, 8, 8, 3);
        let g = box_blur_axis(&f, 2, 2);
        // naive check at a few points
        for &(x, y, z) in &[(0usize, 0usize, 0usize), (3, 4, 5), (7, 7, 7)] {
            let mut sum = 0.0f64;
            for k in 0..5usize {
                let zz = (z + 8 - 2 + k) % 8;
                sum += f64::from(f.get(x, y, zz));
            }
            assert!((f64::from(g.get(x, y, z)) - sum / 5.0).abs() < 1e-5);
        }
    }

    #[test]
    fn normalize_unit_gives_unit_rms() {
        let mut f = gaussian_field(16, 16, 16, 9);
        f.map_inplace(|v| 3.0 * v + 7.0);
        normalize_unit(&mut f);
        let s = FieldStats::of(&f);
        assert!(s.mean.abs() < 1e-4);
        assert!((s.rms - 1.0).abs() < 1e-4);
    }
}
