//! Seeded Gaussian white-noise fields.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tdb_field::ScalarField;

/// Deterministic sub-seed derivation: one master seed, independent streams
/// per (purpose, index) pair.
pub fn derive_seed(master: u64, purpose: u64, index: u64) -> u64 {
    // splitmix64-style mixing
    let mut z = master
        .wrapping_add(purpose.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Standard-normal white noise of shape `(nx, ny, nz)`.
pub fn gaussian_field(nx: usize, ny: usize, nz: usize, seed: u64) -> ScalarField {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(nx * ny * nz);
    // Box-Muller on uniform pairs; cheap and dependency-light.
    while data.len() < nx * ny * nz {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        data.push((r * theta.cos()) as f32);
        if data.len() < nx * ny * nz {
            data.push((r * theta.sin()) as f32);
        }
    }
    ScalarField::from_vec(nx, ny, nz, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_field::FieldStats;

    #[test]
    fn deterministic_per_seed() {
        let a = gaussian_field(8, 8, 8, 42);
        let b = gaussian_field(8, 8, 8, 42);
        let c = gaussian_field(8, 8, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_standard_normal() {
        let f = gaussian_field(32, 32, 32, 7);
        let s = FieldStats::of(&f);
        assert!(s.mean.abs() < 0.02, "mean {}", s.mean);
        assert!((s.rms - 1.0).abs() < 0.02, "rms {}", s.rms);
        assert!(s.min < -3.0 && s.max > 3.0);
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let a = derive_seed(1, 0, 0);
        let b = derive_seed(1, 0, 1);
        let c = derive_seed(1, 1, 0);
        let d = derive_seed(2, 0, 0);
        let all = [a, b, c, d];
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(all[i], all[j]);
            }
        }
        assert_eq!(derive_seed(1, 0, 0), a);
    }
}
