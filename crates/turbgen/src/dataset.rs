//! Synthetic dataset descriptors.
//!
//! Mirrors the JHTDB catalogue (paper §2): forced isotropic turbulence,
//! MHD, and channel flow. Each dataset declares its raw fields (the ones a
//! simulation archive would store) and generates any time-step on demand,
//! deterministically.

use crate::synth::{generate_scalar, generate_solenoidal, GenParams};
use tdb_field::{Grid3, ScalarField, VectorField};

/// Which simulated archive a dataset mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Forced isotropic turbulence: velocity + pressure.
    Isotropic,
    /// Magnetohydrodynamics: velocity + magnetic field + pressure
    /// (vector potential omitted).
    Mhd,
    /// Channel flow: wall-bounded in `y`, stretched grid.
    Channel,
}

/// Descriptor of one raw (stored) field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RawFieldDesc {
    pub name: &'static str,
    pub ncomp: usize,
}

/// One generated time-step: the raw fields an archive node would ingest.
#[derive(Debug, Clone)]
pub struct TimeStepData {
    pub timestep: u32,
    pub fields: Vec<(&'static str, FieldData)>,
}

/// Raw field payload: scalar or three-component vector.
#[derive(Debug, Clone)]
pub enum FieldData {
    Scalar(ScalarField),
    Vector(VectorField<3>),
}

impl FieldData {
    /// Number of components.
    pub fn ncomp(&self) -> usize {
        match self {
            FieldData::Scalar(_) => 1,
            FieldData::Vector(_) => 3,
        }
    }

    /// Promotes to a 3-component view (scalars land in component 0) so the
    /// kernel pipeline has a single input type.
    pub fn as_vector3(&self) -> VectorField<3> {
        match self {
            FieldData::Vector(v) => v.clone(),
            FieldData::Scalar(s) => {
                let (nx, ny, nz) = s.dims();
                VectorField::from_components([
                    s.clone(),
                    ScalarField::zeros(nx, ny, nz),
                    ScalarField::zeros(nx, ny, nz),
                ])
            }
        }
    }
}

/// A fully specified synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    pub name: String,
    pub kind: DatasetKind,
    pub grid: Grid3,
    pub timesteps: u32,
    pub seed: u64,
    pub params: GenParams,
}

impl SyntheticDataset {
    /// MHD-like dataset on a periodic cube of edge `n`.
    pub fn mhd(n: usize, timesteps: u32, seed: u64) -> Self {
        Self {
            name: format!("mhd{n}"),
            kind: DatasetKind::Mhd,
            grid: Grid3::periodic_cube(n, std::f64::consts::TAU),
            timesteps,
            seed,
            params: GenParams::default(),
        }
    }

    /// Forced-isotropic-like dataset.
    pub fn isotropic(n: usize, timesteps: u32, seed: u64) -> Self {
        Self {
            name: format!("isotropic{n}"),
            kind: DatasetKind::Isotropic,
            grid: Grid3::periodic_cube(n, std::f64::consts::TAU),
            timesteps,
            seed,
            params: GenParams::default(),
        }
    }

    /// Channel-flow-like dataset (`ny` may differ; stretched `y`).
    pub fn channel(nx: usize, ny: usize, nz: usize, timesteps: u32, seed: u64) -> Self {
        Self {
            name: format!("channel{nx}x{ny}x{nz}"),
            kind: DatasetKind::Channel,
            grid: Grid3::channel(
                nx,
                ny,
                nz,
                8.0 * std::f64::consts::PI,
                3.0 * std::f64::consts::PI,
                1.7,
            ),
            timesteps,
            seed,
            params: GenParams::default(),
        }
    }

    /// The raw fields this dataset stores.
    pub fn raw_fields(&self) -> Vec<RawFieldDesc> {
        match self.kind {
            DatasetKind::Isotropic => vec![
                RawFieldDesc {
                    name: "velocity",
                    ncomp: 3,
                },
                RawFieldDesc {
                    name: "pressure",
                    ncomp: 1,
                },
            ],
            DatasetKind::Mhd => vec![
                RawFieldDesc {
                    name: "velocity",
                    ncomp: 3,
                },
                RawFieldDesc {
                    name: "magnetic",
                    ncomp: 3,
                },
                RawFieldDesc {
                    name: "pressure",
                    ncomp: 1,
                },
            ],
            DatasetKind::Channel => vec![RawFieldDesc {
                name: "velocity",
                ncomp: 3,
            }],
        }
    }

    /// Descriptor of one raw field by name.
    pub fn raw_field(&self, name: &str) -> Option<RawFieldDesc> {
        self.raw_fields().into_iter().find(|f| f.name == name)
    }

    /// Generates time-step `t`. Deterministic in `(self, t)`.
    ///
    /// # Panics
    /// Panics if `t >= self.timesteps`.
    pub fn generate(&self, t: u32) -> TimeStepData {
        assert!(t < self.timesteps, "time-step {t} out of range");
        let mut fields = Vec::new();
        match self.kind {
            DatasetKind::Isotropic | DatasetKind::Mhd => {
                let u = generate_solenoidal(&self.grid, self.seed, 1, t, &self.params);
                fields.push(("velocity", FieldData::Vector(u)));
                if self.kind == DatasetKind::Mhd {
                    let b = generate_solenoidal(&self.grid, self.seed, 2, t, &self.params);
                    fields.push(("magnetic", FieldData::Vector(b)));
                }
                let p = generate_scalar(&self.grid, self.seed, 3, t, &self.params);
                fields.push(("pressure", FieldData::Scalar(p)));
            }
            DatasetKind::Channel => {
                // generate on a matching periodic cube, then damp toward the
                // walls with a parabolic profile (u = 0 at the walls).
                let (nx, ny, nz) = self.grid.dims();
                let h = std::f64::consts::TAU / nx as f64;
                let pgrid = Grid3 {
                    nx,
                    ny,
                    nz,
                    sx: tdb_field::Spacing::Uniform(h),
                    sy: tdb_field::Spacing::Uniform(h),
                    sz: tdb_field::Spacing::Uniform(h),
                    periodic: [true, true, true],
                };
                let mut u = generate_solenoidal(&pgrid, self.seed, 1, t, &self.params);
                for c in 0..3 {
                    let comp = u.comp_mut(c);
                    for yj in 0..ny {
                        let yc = self.grid.sy.coord(yj); // in [-1, 1]
                        let mask = (1.0 - yc * yc) as f32;
                        for z in 0..nz {
                            for x in 0..nx {
                                let v = comp.get(x, yj, z);
                                comp.set(x, yj, z, v * mask);
                            }
                        }
                    }
                }
                fields.push(("velocity", FieldData::Vector(u)));
            }
        }
        TimeStepData {
            timestep: t,
            fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhd_has_three_raw_fields() {
        let d = SyntheticDataset::mhd(16, 4, 1);
        let names: Vec<_> = d.raw_fields().iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["velocity", "magnetic", "pressure"]);
        assert_eq!(d.raw_field("magnetic").unwrap().ncomp, 3);
        assert_eq!(d.raw_field("pressure").unwrap().ncomp, 1);
        assert!(d.raw_field("nope").is_none());
    }

    #[test]
    fn generate_produces_declared_fields() {
        let d = SyntheticDataset::mhd(16, 4, 1);
        let ts = d.generate(2);
        assert_eq!(ts.timestep, 2);
        let names: Vec<_> = ts.fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["velocity", "magnetic", "pressure"]);
        for (_, f) in &ts.fields {
            match f {
                FieldData::Vector(v) => assert_eq!(v.dims(), (16, 16, 16)),
                FieldData::Scalar(s) => assert_eq!(s.dims(), (16, 16, 16)),
            }
        }
    }

    #[test]
    fn velocity_and_magnetic_are_independent() {
        let d = SyntheticDataset::mhd(16, 4, 1);
        let ts = d.generate(0);
        let FieldData::Vector(u) = &ts.fields[0].1 else {
            panic!()
        };
        let FieldData::Vector(b) = &ts.fields[1].1 else {
            panic!()
        };
        assert_ne!(u, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn generate_rejects_out_of_range_timestep() {
        let d = SyntheticDataset::isotropic(8, 2, 1);
        let _ = d.generate(2);
    }

    #[test]
    fn channel_velocity_vanishes_at_walls() {
        let d = SyntheticDataset::channel(16, 17, 8, 2, 3);
        let ts = d.generate(0);
        let FieldData::Vector(u) = &ts.fields[0].1 else {
            panic!()
        };
        for z in 0..8 {
            for x in 0..16 {
                assert_eq!(u.at(x, 0, z), [0.0, 0.0, 0.0]);
                assert_eq!(u.at(x, 16, z), [0.0, 0.0, 0.0]);
            }
        }
        // interior is nonzero
        assert!(u.norm_at(8, 8, 4) != 0.0);
    }

    #[test]
    fn scalar_as_vector3_puts_data_in_component_zero() {
        let s = ScalarField::from_fn(4, 4, 4, |x, _, _| x as f32);
        let f = FieldData::Scalar(s);
        assert_eq!(f.ncomp(), 1);
        let v = f.as_vector3();
        assert_eq!(v.at(2, 0, 0), [2.0, 0.0, 0.0]);
    }
}
