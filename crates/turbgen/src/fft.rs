//! Minimal radix-2 FFT and 1-D longitudinal energy spectra.
//!
//! Used only as a diagnostic: verifying that the synthetic fields carry a
//! decaying multi-scale spectrum rather than white noise.

/// In-place radix-2 Cooley–Tukey FFT of interleaved complex data
/// (`re, im` pairs). Length must be a power of two.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut cr = 1.0;
            let mut ci = 0.0;
            for j in 0..len / 2 {
                let (ar, ai) = (re[i + j], im[i + j]);
                let (br, bi) = (re[i + j + len / 2], im[i + j + len / 2]);
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                re[i + j] = ar + tr;
                im[i + j] = ai + ti;
                re[i + j + len / 2] = ar - tr;
                im[i + j + len / 2] = ai - ti;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// 1-D longitudinal energy spectrum of component `comp` of a vector field:
/// `E(k) = ⟨|û(k)|²⟩` averaged over all lines along `x`. Returns `nx/2`
/// wavenumber bins (k = 0 .. nx/2-1).
pub fn longitudinal_spectrum(field: &tdb_field::VectorField<3>, comp: usize) -> Vec<f64> {
    let (nx, ny, nz) = field.dims();
    assert!(nx.is_power_of_two());
    let mut spec = vec![0.0f64; nx / 2];
    let f = field.comp(comp);
    let mut re = vec![0.0f64; nx];
    let mut im = vec![0.0f64; nx];
    for z in 0..nz {
        for y in 0..ny {
            for (x, r) in re.iter_mut().enumerate() {
                *r = f64::from(f.get(x, y, z));
            }
            im.fill(0.0);
            fft_inplace(&mut re, &mut im);
            for (k, s) in spec.iter_mut().enumerate() {
                *s += (re[k] * re[k] + im[k] * im[k]) / (nx * nx) as f64;
            }
        }
    }
    let lines = (ny * nz) as f64;
    for s in &mut spec {
        *s /= lines;
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_field::{ScalarField, VectorField};

    #[test]
    fn fft_of_single_tone() {
        let n = 32;
        let k0 = 5;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im);
        for k in 0..n {
            let mag = (re[k] * re[k] + im[k] * im[k]).sqrt();
            if k == k0 || k == n - k0 {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "k={k} mag={mag}");
            } else {
                assert!(mag < 1e-9, "k={k} mag={mag}");
            }
        }
    }

    #[test]
    fn fft_parseval() {
        let n = 64;
        let sig: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5)
            .collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im);
        let time: f64 = sig.iter().map(|v| v * v).sum();
        let freq: f64 = re
            .iter()
            .zip(&im)
            .map(|(r, i)| (r * r + i * i) / n as f64)
            .sum();
        assert!((time - freq).abs() < 1e-9);
    }

    #[test]
    fn spectrum_peaks_at_injected_mode() {
        let n = 32;
        let k0 = 3usize;
        let fx = ScalarField::from_fn(n, n, n, |x, _, _| {
            (std::f64::consts::TAU * k0 as f64 * x as f64 / n as f64).sin() as f32
        });
        let v = VectorField::from_components([
            fx,
            ScalarField::zeros(n, n, n),
            ScalarField::zeros(n, n, n),
        ]);
        let spec = longitudinal_spectrum(&v, 0);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, k0);
    }

    #[test]
    fn synthetic_field_spectrum_decays() {
        use crate::synth::{generate_solenoidal, GenParams};
        let g = tdb_field::Grid3::periodic_cube(32, std::f64::consts::TAU);
        let u = generate_solenoidal(&g, 11, 0, 0, &GenParams::default());
        let spec = longitudinal_spectrum(&u, 0);
        // energy at large scales (k=1..3) dominates the smallest scales
        let low: f64 = spec[1..4].iter().sum();
        let high: f64 = spec[12..16].iter().sum();
        assert!(low > 10.0 * high, "low {low} high {high}");
    }
}
