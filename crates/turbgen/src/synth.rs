//! Solenoidal intermittent field synthesis.

use crate::noise::{derive_seed, gaussian_field};
use crate::smooth::{normalize_unit, smooth_periodic};
use tdb_field::{Grid3, ScalarField, VectorField};
use tdb_kernels::{DiffScheme, FdOrder};

/// Tunable parameters of the synthetic cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Box-blur half-width for the vector potential (sets the energy-
    /// containing scale).
    pub smooth_radius: usize,
    /// Blur passes for the potential (3 ≈ Gaussian).
    pub smooth_passes: usize,
    /// Lognormal intermittency exponent μ: `w = exp(μ g)`. Zero gives a
    /// near-Gaussian field; larger values fatten the vorticity-norm tail.
    pub intermittency_mu: f64,
    /// Blur half-width of the envelope noise `g` (sets the size of intense
    /// "worm" regions).
    pub envelope_radius: usize,
    /// Blur passes for the envelope.
    pub envelope_passes: usize,
    /// Target RMS of the vorticity norm after rescaling. The paper's MHD
    /// PDF (Fig. 2) spans ~[0, 90+] with thresholds 44/60/80; an RMS of 10
    /// puts those thresholds at 4.4σ/6σ/8σ.
    pub vorticity_rms: f64,
    /// Finite-difference order used for the generating curl.
    pub fd_order: FdOrder,
    /// Number of time-steps per full keyframe rotation (temporal
    /// correlation length).
    pub evolution_period: u32,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            smooth_radius: 2,
            smooth_passes: 2,
            intermittency_mu: 0.40,
            envelope_radius: 4,
            envelope_passes: 2,
            vorticity_rms: 10.0,
            fd_order: FdOrder::O4,
            evolution_period: 64,
        }
    }
}

/// Smoothed, unit-variance noise for keyframe `index` of stream `purpose`.
fn smooth_unit_noise(
    grid: &Grid3,
    seed: u64,
    purpose: u64,
    index: u64,
    radius: usize,
    passes: usize,
) -> ScalarField {
    let (nx, ny, nz) = grid.dims();
    let raw = gaussian_field(nx, ny, nz, derive_seed(seed, purpose, index));
    // clamp the blur window to the smallest axis so tiny test grids work
    let max_r = (nx.min(ny).min(nz) - 1) / 2;
    let radius = radius.min(max_r);
    let mut s = smooth_periodic(&raw, radius, passes);
    normalize_unit(&mut s);
    s
}

/// Blends two keyframes with a rotating phase: unit variance at any phase.
fn keyframe_blend(a: &ScalarField, b: &ScalarField, phase: f64) -> ScalarField {
    let (c, s) = (phase.cos() as f32, phase.sin() as f32);
    let mut out = a.clone();
    out.zip_inplace(b, |x, y| c * x + s * y);
    out
}

/// Generates a divergence-free, intermittent vector field on a fully
/// periodic grid for time-step `t`.
///
/// `purpose` separates independent fields of one dataset (velocity vs
/// magnetic field). Determinism: the result depends only on
/// `(grid, seed, purpose, t, params)`.
pub fn generate_solenoidal(
    grid: &Grid3,
    seed: u64,
    purpose: u64,
    t: u32,
    params: &GenParams,
) -> VectorField<3> {
    assert!(
        grid.periodic.iter().all(|&p| p),
        "solenoidal synthesis needs a fully periodic grid"
    );
    let phase = std::f64::consts::TAU * f64::from(t) / f64::from(params.evolution_period.max(1));
    // vector potential: 3 components × 2 keyframes
    let potential: [ScalarField; 3] = std::array::from_fn(|c| {
        let a = smooth_unit_noise(
            grid,
            seed,
            purpose * 16 + c as u64,
            0,
            params.smooth_radius,
            params.smooth_passes,
        );
        let b = smooth_unit_noise(
            grid,
            seed,
            purpose * 16 + c as u64,
            1,
            params.smooth_radius,
            params.smooth_passes,
        );
        keyframe_blend(&a, &b, phase)
    });
    // intermittency envelope
    let mut potential = potential;
    if params.intermittency_mu != 0.0 {
        let ga = smooth_unit_noise(
            grid,
            seed,
            purpose * 16 + 8,
            0,
            params.envelope_radius,
            params.envelope_passes,
        );
        let gb = smooth_unit_noise(
            grid,
            seed,
            purpose * 16 + 8,
            1,
            params.envelope_radius,
            params.envelope_passes,
        );
        let g = keyframe_blend(&ga, &gb, phase);
        let mu = params.intermittency_mu as f32;
        for comp in &mut potential {
            comp.zip_inplace(&g, |a, gv| a * (mu * gv).exp());
        }
    }
    let scheme = DiffScheme::new(grid, params.fd_order);
    let u = scheme.curl(&VectorField::from_components(potential));
    // rescale so the vorticity RMS hits the target
    let vort = scheme.curl(&u);
    let rms = tdb_field::FieldStats::of(&vort.norm()).rms;
    let scale = (params.vorticity_rms / rms.max(1e-30)) as f32;
    let mut u = u;
    for c in 0..3 {
        u.comp_mut(c).map_inplace(|v| v * scale);
    }
    u
}

/// Generates a smooth scalar field (pressure-like) for time-step `t`.
pub fn generate_scalar(
    grid: &Grid3,
    seed: u64,
    purpose: u64,
    t: u32,
    params: &GenParams,
) -> ScalarField {
    let phase = std::f64::consts::TAU * f64::from(t) / f64::from(params.evolution_period.max(1));
    let a = smooth_unit_noise(
        grid,
        seed,
        purpose * 16,
        0,
        params.smooth_radius,
        params.smooth_passes,
    );
    let b = smooth_unit_noise(
        grid,
        seed,
        purpose * 16,
        1,
        params.smooth_radius,
        params.smooth_passes,
    );
    keyframe_blend(&a, &b, phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;
    use tdb_field::FieldStats;

    fn grid(n: usize) -> Grid3 {
        Grid3::periodic_cube(n, TAU)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = grid(16);
        let p = GenParams::default();
        let a = generate_solenoidal(&g, 5, 0, 3, &p);
        let b = generate_solenoidal(&g, 5, 0, 3, &p);
        assert_eq!(a, b);
        let c = generate_solenoidal(&g, 5, 1, 3, &p);
        assert_ne!(a, c);
    }

    #[test]
    fn field_is_divergence_free() {
        let g = grid(24);
        let p = GenParams::default();
        let u = generate_solenoidal(&g, 1, 0, 0, &p);
        let scheme = DiffScheme::new(&g, p.fd_order);
        let div = scheme.divergence(&u);
        let umax = u.norm().as_slice().iter().fold(0.0f32, |m, &v| m.max(v));
        let dmax = div.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        // discrete div(curl) identity: zero to rounding, relative to u scale
        assert!(dmax < 1e-3 * umax.max(1.0), "dmax {dmax} umax {umax}");
    }

    #[test]
    fn vorticity_rms_hits_target() {
        let g = grid(24);
        let p = GenParams::default();
        let u = generate_solenoidal(&g, 2, 0, 0, &p);
        let scheme = DiffScheme::new(&g, p.fd_order);
        let rms = FieldStats::of(&scheme.curl(&u).norm()).rms;
        assert!((rms - p.vorticity_rms).abs() < 1e-3 * p.vorticity_rms);
    }

    #[test]
    fn intermittency_fattens_the_tail() {
        let g = grid(32);
        let mut p = GenParams {
            intermittency_mu: 0.0,
            ..GenParams::default()
        };
        let gauss = generate_solenoidal(&g, 3, 0, 0, &p);
        p.intermittency_mu = 0.8;
        let interm = generate_solenoidal(&g, 3, 0, 0, &p);
        let scheme = DiffScheme::new(&g, p.fd_order);
        let frac_above = |u: &VectorField<3>, k: f64| {
            let norm = scheme.curl(u).norm();
            let rms = FieldStats::of(&norm).rms;
            let thr = (k * rms) as f32;
            norm.as_slice().iter().filter(|&&v| v > thr).count() as f64 / norm.len() as f64
        };
        let fg = frac_above(&gauss, 4.0);
        let fi = frac_above(&interm, 4.0);
        assert!(fi > 5.0 * fg.max(1e-7), "gauss {fg}, intermittent {fi}");
    }

    #[test]
    fn adjacent_timesteps_are_correlated_distant_ones_less() {
        let g = grid(16);
        let p = GenParams::default();
        let corr = |a: &VectorField<3>, b: &VectorField<3>| {
            let mut num = 0.0f64;
            let mut da = 0.0f64;
            let mut db = 0.0f64;
            for c in 0..3 {
                for (x, y) in a.comp(c).as_slice().iter().zip(b.comp(c).as_slice()) {
                    num += f64::from(*x) * f64::from(*y);
                    da += f64::from(*x).powi(2);
                    db += f64::from(*y).powi(2);
                }
            }
            num / (da.sqrt() * db.sqrt())
        };
        let u0 = generate_solenoidal(&g, 7, 0, 0, &p);
        let u1 = generate_solenoidal(&g, 7, 0, 1, &p);
        let u16 = generate_solenoidal(&g, 7, 0, 16, &p);
        let c01 = corr(&u0, &u1);
        let c016 = corr(&u0, &u16);
        assert!(c01 > 0.9, "adjacent correlation {c01}");
        assert!(c016 < c01, "distant {c016} !< adjacent {c01}");
    }

    #[test]
    fn scalar_generation_unit_variance() {
        let g = grid(16);
        let p = GenParams::default();
        let s = generate_scalar(&g, 1, 3, 5, &p);
        let st = FieldStats::of(&s);
        assert!(st.mean.abs() < 0.05);
        assert!((st.rms - 1.0).abs() < 0.05);
    }
}
