//! Synthetic turbulence generator.
//!
//! The paper evaluates on the JHU MHD and forced-isotropic DNS archives,
//! which are not redistributable. This crate generates the closest synthetic
//! equivalent (see DESIGN.md §1): solenoidal velocity and magnetic fields
//! with large-scale spatial correlation and a *heavy-tailed* vorticity PDF,
//! so that extreme-event threshold queries have the same selectivity
//! structure as the paper's (fractions of ~1e-3 … 1e-6 of all points above
//! 4.4σ/6σ/8σ).
//!
//! Construction per time-step:
//!
//! 1. white-noise vector potential `A` (seeded, reproducible),
//! 2. periodic iterated-box smoothing of `A` (large-scale correlation),
//! 3. lognormal intermittency envelope `w = exp(μ g)` from an independent
//!    smoothed unit-variance noise `g`, applied to `A`,
//! 4. `u = ∇ × (w A)` — exactly divergence-free by the discrete identity,
//! 5. rescaling so the curl of `u` (the vorticity) has a prescribed RMS.
//!
//! Time evolution blends two fixed keyframe potentials with a slowly
//! rotating phase, giving smooth, deterministic, random-access time-steps.

pub mod dataset;
pub mod fft;
pub mod noise;
pub mod smooth;
pub mod synth;

pub use dataset::{DatasetKind, SyntheticDataset, TimeStepData};
pub use synth::{generate_solenoidal, GenParams};
