//! Sub-sampled keyframe compression for atom payloads.
//!
//! Follows the JHTDB compression study (Wu/Zaki/Meneveau,
//! arXiv:1910.11994): store a spatially sub-sampled *keyframe lattice*
//! per atom plane plus temporally sub-sampled keyframe time-steps, and
//! re-derive the skipped samples at decode time — Lagrange interpolation
//! on the kept lattice spatially, Hermite/linear interpolation between
//! keyframe time-steps temporally. The error is *bounded by
//! construction*: every sample whose reconstruction misses the configured
//! `max_error` is shipped as a sparse correction holding the original
//! bits, so decode can never be further off than the bound.
//!
//! Three codecs, each self-describing via a one-byte id prefix:
//!
//! * [`CODEC_RAW`] — the identity codec (little-endian `f32`s),
//! * [`CODEC_LOSSLESS`] — bit-exact byte-shuffled varint delta coding of
//!   the `f32` bit patterns ([`lossless`]); NaN/Inf payloads round-trip
//!   bitwise, which the SSD cache tier requires,
//! * [`CODEC_LOSSY`] — the spatial keyframe codec ([`spatial`]) whose
//!   kept lattice is itself lossless-coded.
//!
//! The temporal codec ([`temporal`]) spans whole frame sequences and is
//! exercised by the `repro -- compression` experiment; the block storage
//! tier is time-step-major and therefore integrates the spatial codec
//! per record (see DESIGN.md §10).

mod corrections;
pub mod lossless;
pub mod spatial;
pub mod temporal;
pub mod varint;

/// Identity codec id: payload is `n` little-endian `f32`s.
pub const CODEC_RAW: u8 = 0;
/// Bit-exact codec id: shuffle + varint delta of `f32` bit patterns.
pub const CODEC_LOSSLESS: u8 = 1;
/// Keyframe codec id: sub-sampled lattice + corrections.
pub const CODEC_LOSSY: u8 = 2;

/// Which codec the storage tier applies to atom payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionMode {
    /// Store raw samples (the seed behaviour).
    #[default]
    Off,
    /// Bit-exact shuffle + varint delta coding.
    Lossless,
    /// Sub-sampled keyframes with bounded-error reconstruction.
    Lossy,
}

impl CompressionMode {
    /// Stable lower-case name, used on the wire and by `tdbql info`.
    pub fn as_str(self) -> &'static str {
        match self {
            CompressionMode::Off => "off",
            CompressionMode::Lossless => "lossless",
            CompressionMode::Lossy => "lossy",
        }
    }

    /// Parses a mode name (the inverse of [`Self::as_str`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" | "none" => Some(CompressionMode::Off),
            "lossless" => Some(CompressionMode::Lossless),
            "lossy" => Some(CompressionMode::Lossy),
            _ => None,
        }
    }
}

impl std::fmt::Display for CompressionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The compression knob threaded `ClusterConfig` → storage → wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionConfig {
    /// Codec selection; [`CompressionMode::Off`] preserves the seed
    /// on-disk format byte for byte.
    pub mode: CompressionMode,
    /// Keyframe stride per axis for the lossy codec (2 keeps every other
    /// sample plus the far face: 5³ of 8³ = 4.1× fewer samples).
    pub stride: u32,
    /// Absolute reconstruction-error bound for the lossy codec. Samples
    /// the interpolant misses by more than this ship as corrections.
    pub max_error: f64,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self {
            mode: CompressionMode::Off,
            stride: 2,
            max_error: 1e-3,
        }
    }
}

impl CompressionConfig {
    /// A lossless configuration (stride/max_error are ignored).
    pub fn lossless() -> Self {
        Self {
            mode: CompressionMode::Lossless,
            ..Self::default()
        }
    }

    /// A lossy configuration with the given lattice stride and bound.
    pub fn lossy(stride: u32, max_error: f64) -> Self {
        Self {
            mode: CompressionMode::Lossy,
            stride,
            max_error,
        }
    }

    /// Whether any codec other than the identity is active.
    pub fn is_active(&self) -> bool {
        self.mode != CompressionMode::Off
    }
}

/// Decode-side failure: the payload does not parse under its declared
/// codec. Storage maps this onto its corruption error (the payload is
/// CRC-protected, so reaching this means an encoder/decoder bug or a
/// fault-injected corruption, not bit rot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Payload ended before the declared structure was complete.
    Truncated,
    /// Unknown codec id byte.
    UnknownCodec(u8),
    /// Structural invariant violated (counts, strides, lengths).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed payload truncated"),
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id:#x}"),
            CodecError::Invalid(what) => write!(f, "invalid compressed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encoder output plus the stats the storage tier reports as
/// `compress.*` metrics.
#[derive(Debug, Clone)]
pub struct EncodedPlane {
    /// Self-describing payload (codec id byte first).
    pub bytes: Vec<u8>,
    /// Largest |reconstructed − original| the decoder will exhibit for
    /// this plane (0 for raw/lossless; for lossy, the max over samples
    /// *not* shipped as corrections, hence ≤ the configured bound).
    pub max_error: f64,
    /// Sparse corrections stored (lossy only).
    pub corrections: usize,
}

/// Encodes one atom plane (`tdb_zorder::ATOM_POINTS` samples) under
/// `cfg`. The output always begins with the codec id byte, so
/// [`decode_plane`] needs no configuration.
pub fn encode_plane(cfg: &CompressionConfig, plane: &[f32]) -> EncodedPlane {
    match cfg.mode {
        CompressionMode::Off => {
            let mut bytes = Vec::with_capacity(1 + plane.len() * 4);
            bytes.push(CODEC_RAW);
            for v in plane {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            EncodedPlane {
                bytes,
                max_error: 0.0,
                corrections: 0,
            }
        }
        CompressionMode::Lossless => {
            let mut bytes = Vec::with_capacity(1 + plane.len());
            bytes.push(CODEC_LOSSLESS);
            lossless::encode(plane, &mut bytes);
            EncodedPlane {
                bytes,
                max_error: 0.0,
                corrections: 0,
            }
        }
        CompressionMode::Lossy => {
            let mut bytes = Vec::new();
            bytes.push(CODEC_LOSSY);
            let stats = spatial::encode(plane, cfg.stride, cfg.max_error, &mut bytes);
            EncodedPlane {
                bytes,
                max_error: stats.max_error,
                corrections: stats.corrections,
            }
        }
    }
}

/// Decodes a self-describing plane payload back to `n` samples.
pub fn decode_plane(bytes: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    let (&codec, body) = bytes.split_first().ok_or(CodecError::Truncated)?;
    match codec {
        CODEC_RAW => {
            if body.len() != n * 4 {
                return Err(CodecError::Invalid("raw payload length"));
            }
            Ok(body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect())
        }
        CODEC_LOSSLESS => lossless::decode(body, n),
        CODEC_LOSSY => spatial::decode(body, n),
        other => Err(CodecError::UnknownCodec(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_zorder::ATOM_POINTS;

    fn smooth_plane() -> Vec<f32> {
        (0..ATOM_POINTS)
            .map(|i| {
                let (x, y, z) = (i % 8, (i / 8) % 8, i / 64);
                ((x as f64 * 0.4).sin() * (y as f64 * 0.3).cos() + 0.1 * z as f64) as f32
            })
            .collect()
    }

    #[test]
    fn mode_names_roundtrip() {
        for m in [
            CompressionMode::Off,
            CompressionMode::Lossless,
            CompressionMode::Lossy,
        ] {
            assert_eq!(CompressionMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(CompressionMode::parse("zstd"), None);
    }

    #[test]
    fn raw_plane_roundtrip_and_self_describing() {
        let plane = smooth_plane();
        let enc = encode_plane(&CompressionConfig::default(), &plane);
        assert_eq!(enc.bytes.first(), Some(&CODEC_RAW));
        assert_eq!(decode_plane(&enc.bytes, plane.len()).unwrap(), plane);
    }

    #[test]
    fn lossless_plane_roundtrip_compresses_smooth_data() {
        let plane = smooth_plane();
        let enc = encode_plane(&CompressionConfig::lossless(), &plane);
        assert_eq!(enc.bytes.first(), Some(&CODEC_LOSSLESS));
        assert!(enc.bytes.len() < plane.len() * 4, "{}", enc.bytes.len());
        assert_eq!(decode_plane(&enc.bytes, plane.len()).unwrap(), plane);
    }

    #[test]
    fn lossy_plane_honours_bound_and_beats_4x_on_smooth_data() {
        let plane = smooth_plane();
        let bound = 1e-3;
        let enc = encode_plane(&CompressionConfig::lossy(2, bound), &plane);
        assert_eq!(enc.bytes.first(), Some(&CODEC_LOSSY));
        let back = decode_plane(&enc.bytes, plane.len()).unwrap();
        for (a, b) in plane.iter().zip(&back) {
            assert!((f64::from(*a) - f64::from(*b)).abs() <= bound);
        }
        assert!(enc.max_error <= bound);
        let ratio = (plane.len() * 4) as f64 / enc.bytes.len() as f64;
        assert!(ratio >= 4.0, "ratio {ratio:.2}");
    }

    #[test]
    fn unknown_codec_is_rejected() {
        assert_eq!(
            decode_plane(&[0x77, 1, 2, 3], 1),
            Err(CodecError::UnknownCodec(0x77))
        );
        assert_eq!(decode_plane(&[], 0), Err(CodecError::Truncated));
    }
}
