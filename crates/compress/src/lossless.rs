//! Bit-exact compression of `f32` sample streams.
//!
//! Pipeline: take each sample's raw bit pattern, delta it against the
//! previous pattern (wrapping, zigzag-mapped so near-equal neighbours
//! yield tiny words), *shuffle* the delta words into four byte lanes
//! (all low bytes, then the next lane, …), and code each lane with
//! varint-framed zero-run suppression. Smooth fields leave the high
//! lanes almost entirely zero, which the run coder collapses; NaN, Inf
//! and negative zero survive untouched because the codec never leaves
//! bit-pattern space.

use crate::varint::{get_u64, put_u64, unzigzag, zigzag};
use crate::CodecError;

/// Zero runs shorter than this stay literal: ending a literal segment and
/// opening the next costs two framing bytes.
const MIN_RUN: usize = 3;

/// Appends the lossless encoding of `samples` to `out`.
pub fn encode(samples: &[f32], out: &mut Vec<u8>) {
    put_u64(out, samples.len() as u64);
    // delta + zigzag in bit-pattern space
    let mut prev = 0u32;
    let words: Vec<u32> = samples
        .iter()
        .map(|v| {
            let bits = v.to_bits();
            let delta = bits.wrapping_sub(prev) as i32;
            prev = bits;
            zigzag(delta)
        })
        .collect();
    // byte shuffle: lane l holds byte l of every word
    for lane in 0..4 {
        let bytes: Vec<u8> = words.iter().map(|w| (w >> (8 * lane)) as u8).collect();
        encode_lane(&bytes, out);
    }
}

/// Decodes `n` samples encoded by [`encode`], requiring the payload to
/// be exactly the encoding (no trailing bytes).
pub fn decode(mut body: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    let out = decode_prefix(&mut body, n)?;
    if !body.is_empty() {
        return Err(CodecError::Invalid("trailing bytes after lossless payload"));
    }
    Ok(out)
}

/// Decodes `n` samples from the front of `buf`, advancing it past the
/// encoding — the embedding the spatial codec uses for its kept lattice.
pub fn decode_prefix(buf: &mut &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    let stored_n = get_u64(buf)? as usize;
    if stored_n != n {
        return Err(CodecError::Invalid("lossless sample count mismatch"));
    }
    let mut words = vec![0u32; n];
    for lane in 0..4 {
        decode_lane(buf, &mut words, lane)?;
    }
    let mut prev = 0u32;
    Ok(words
        .into_iter()
        .map(|w| {
            let bits = prev.wrapping_add(unzigzag(w) as u32);
            prev = bits;
            f32::from_bits(bits)
        })
        .collect())
}

/// One byte lane as alternating varint-framed segments: literal length,
/// literal bytes, zero-run length, repeating until the lane is complete
/// (the trailing zero-run is omitted when literals finish the lane).
fn encode_lane(bytes: &[u8], out: &mut Vec<u8>) {
    let mut pos = 0;
    while pos < bytes.len() {
        // find the next profitable zero run
        let mut run_start = bytes.len();
        let mut run_len = 0;
        let mut i = pos;
        while i < bytes.len() {
            if bytes[i] == 0 {
                let start = i;
                while i < bytes.len() && bytes[i] == 0 {
                    i += 1;
                }
                if i - start >= MIN_RUN || i == bytes.len() {
                    run_start = start;
                    run_len = i - start;
                    break;
                }
            } else {
                i += 1;
            }
        }
        let lit = &bytes[pos..run_start];
        put_u64(out, lit.len() as u64);
        out.extend_from_slice(lit);
        pos = run_start + run_len;
        if run_len > 0 {
            put_u64(out, run_len as u64);
        }
    }
    if bytes.is_empty() {
        put_u64(out, 0);
    }
}

fn decode_lane(buf: &mut &[u8], words: &mut [u32], lane: usize) -> Result<(), CodecError> {
    let n = words.len();
    let mut produced = 0;
    if n == 0 {
        // the empty lane still frames one zero-length literal
        if get_u64(buf)? != 0 {
            return Err(CodecError::Invalid("nonempty lane for empty stream"));
        }
        return Ok(());
    }
    while produced < n {
        let lit = get_u64(buf)? as usize;
        if lit > n - produced || lit > buf.len() {
            return Err(CodecError::Invalid("lane literal overruns stream"));
        }
        let (head, rest) = buf.split_at(lit);
        for (w, &b) in words[produced..produced + lit].iter_mut().zip(head) {
            *w |= u32::from(b) << (8 * lane);
        }
        *buf = rest;
        produced += lit;
        if produced < n {
            let run = get_u64(buf)? as usize;
            if run == 0 || run > n - produced {
                return Err(CodecError::Invalid("lane zero-run overruns stream"));
            }
            produced += run; // the words are already zero in this lane
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(samples: &[f32]) -> Vec<f32> {
        let mut b = Vec::new();
        encode(samples, &mut b);
        decode(&b, samples.len()).expect("decode")
    }

    fn assert_bitwise_equal(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn lossless_roundtrip_empty_and_small() {
        assert_bitwise_equal(&roundtrip(&[]), &[]);
        assert_bitwise_equal(&roundtrip(&[1.5]), &[1.5]);
        assert_bitwise_equal(&roundtrip(&[0.0; 100]), &[0.0; 100]);
    }

    #[test]
    fn lossless_roundtrip_specials_bitwise() {
        let specials = [
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7fc0_dead), // payload-carrying NaN
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            f32::from_bits(1), // subnormal
            f32::MAX,
            f32::MIN,
        ];
        assert_bitwise_equal(&roundtrip(&specials), &specials);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let samples: Vec<f32> = (0..4096).map(|i| (i as f32 * 1e-3).sin()).collect();
        let mut b = Vec::new();
        encode(&samples, &mut b);
        // bit-pattern deltas of smooth f32 data leave the two high lanes
        // nearly zero: expect ~2.2 bytes/sample against 4 raw
        assert!(
            b.len() * 4 < samples.len() * 4 * 3,
            "no gain: {} of {}",
            b.len(),
            samples.len() * 4
        );
        assert_bitwise_equal(&decode(&b, samples.len()).unwrap(), &samples);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let samples: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut b = Vec::new();
        encode(&samples, &mut b);
        for cut in [0, 1, b.len() / 2, b.len() - 1] {
            assert!(decode(&b[..cut], samples.len()).is_err(), "cut {cut}");
        }
        assert!(decode(&b, samples.len() + 1).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The satellite guarantee: arbitrary payloads — including NaN
        /// and Inf bit patterns — round-trip bitwise identical.
        #[test]
        fn lossless_roundtrip_bitwise_identical(bits in prop::collection::vec(any::<u32>(), 0..700)) {
            let samples: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
            let back = roundtrip(&samples);
            for (x, y) in samples.iter().zip(&back) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
