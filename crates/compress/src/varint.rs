//! LEB128 varints and zigzag mapping.
//!
//! The codecs store counts, run lengths and signed deltas as varints so
//! small magnitudes — the overwhelmingly common case on smooth simulation
//! fields — cost one byte.

use crate::CodecError;

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from the front of `buf`, advancing it.
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
        *buf = rest;
        if shift >= 64 {
            return Err(CodecError::Invalid("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed value to an unsigned one with small magnitudes staying
/// small: 0, -1, 1, -2, … → 0, 1, 2, 3, …
pub fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// 64-bit [`zigzag`], for quantised-lattice and correction residuals.
pub fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag64`].
pub fn unzigzag64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_varints() {
        let mut b = Vec::new();
        put_u64(&mut b, 0);
        put_u64(&mut b, 127);
        put_u64(&mut b, 128);
        put_u64(&mut b, u64::MAX);
        let mut s = b.as_slice();
        assert_eq!(get_u64(&mut s).unwrap(), 0);
        assert_eq!(get_u64(&mut s).unwrap(), 127);
        assert_eq!(get_u64(&mut s).unwrap(), 128);
        assert_eq!(get_u64(&mut s).unwrap(), u64::MAX);
        assert!(s.is_empty());
        assert_eq!(get_u64(&mut s), Err(CodecError::Truncated));
    }

    proptest! {
        #[test]
        fn varint_roundtrip(v in any::<u64>()) {
            let mut b = Vec::new();
            put_u64(&mut b, v);
            let mut s = b.as_slice();
            prop_assert_eq!(get_u64(&mut s).unwrap(), v);
            prop_assert!(s.is_empty());
        }

        #[test]
        fn zigzag_roundtrip(v in any::<i32>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
