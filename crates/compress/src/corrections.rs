//! Sparse correction streams shared by the spatial and temporal codecs.
//!
//! A correction pins one sample the predictor missed. With a positive
//! quantisation step `q` (the codecs use `max_error / 2`) a correction is
//! usually just the quantised residual `round((orig − recon) / q)` as a
//! varint — the decoder adds it back onto its own reconstruction, so the
//! final error is at most `q / 2`. Samples the quantised form cannot
//! represent within the bound (non-finite originals, astronomic
//! residuals) escape to the original's exact 4 bit-pattern bytes. The
//! encoder always evaluates the *decoder's* arithmetic when deciding, so
//! the configured bound holds by construction.

use crate::varint::{get_u64, put_u64, unzigzag64, zigzag64};
use crate::CodecError;

/// Residuals/values beyond this many quantisation steps escape to exact
/// bits (guards the `f64 → i64` rounding against overflow).
pub(crate) const MAX_STEPS: f64 = (1u64 << 40) as f64;

/// What the decoder will produce for a quantised correction.
pub(crate) fn dequantised(recon: f32, d: i64, q: f64) -> f32 {
    (f64::from(recon) + d as f64 * q) as f32
}

enum Fix {
    Quantised(i64),
    Exact(u32),
}

/// Scans `orig` against `recon`, appends `varint ncorr` plus the
/// correction stream to `out`, and returns `(max_uncorrected_error,
/// ncorr)` — the worst error the decoder will exhibit and the correction
/// count, for the `compress.*` metrics.
pub(crate) fn encode(
    orig: &[f32],
    recon: &[f32],
    q: f64,
    max_error: f64,
    out: &mut Vec<u8>,
) -> (f64, usize) {
    let mut max_err = 0.0f64;
    let mut corr: Vec<(usize, Fix)> = Vec::new();
    for (idx, (&o, &r)) in orig.iter().zip(recon).enumerate() {
        // bitwise-equal needs no fix even when non-finite (a prior pass
        // may already have restored the sample's exact bits)
        if o.to_bits() == r.to_bits() {
            continue;
        }
        let err = (f64::from(o) - f64::from(r)).abs();
        // NaN anywhere fails the comparison, so non-finite samples (and
        // non-finite reconstructions) always land in the correction arm
        if err <= max_error && o.is_finite() {
            max_err = max_err.max(err);
            continue;
        }
        let fix = if q > 0.0 && o.is_finite() {
            let steps = (f64::from(o) - f64::from(r)) / q;
            let d = if steps.is_finite() && steps.abs() < MAX_STEPS {
                steps.round() as i64
            } else {
                0
            };
            let cand = dequantised(r, d, q);
            if d != 0 && cand.is_finite() && (f64::from(o) - f64::from(cand)).abs() <= max_error {
                Fix::Quantised(d)
            } else {
                Fix::Exact(o.to_bits())
            }
        } else {
            Fix::Exact(o.to_bits())
        };
        corr.push((idx, fix));
    }
    put_u64(out, corr.len() as u64);
    let mut prev = 0usize;
    for (idx, fix) in &corr {
        put_u64(out, (idx - prev) as u64); // ascending, delta-coded
        prev = *idx;
        match fix {
            Fix::Quantised(d) => put_u64(out, zigzag64(*d) + 1),
            Fix::Exact(bits) => {
                if q > 0.0 {
                    put_u64(out, 0); // escape marker
                }
                out.extend_from_slice(&bits.to_le_bytes());
            }
        }
    }
    (max_err, corr.len())
}

/// Applies a correction stream written by [`encode`] onto `vals`.
pub(crate) fn decode(buf: &mut &[u8], q: f64, vals: &mut [f32]) -> Result<(), CodecError> {
    let ncorr = get_u64(buf)? as usize;
    let mut idx = 0usize;
    for i in 0..ncorr {
        let delta = get_u64(buf)? as usize;
        idx = if i == 0 { delta } else { idx + delta };
        let slot = vals
            .get_mut(idx)
            .ok_or(CodecError::Invalid("correction index out of range"))?;
        let exact = if q > 0.0 {
            let code = get_u64(buf)?;
            if code == 0 {
                true
            } else {
                *slot = dequantised(*slot, unzigzag64(code - 1), q);
                false
            }
        } else {
            true
        };
        if exact {
            if buf.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let (head, rest) = buf.split_at(4);
            *buf = rest;
            *slot = f32::from_bits(u32::from_le_bytes([head[0], head[1], head[2], head[3]]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(orig: &[f32], recon: &[f32], q: f64, bound: f64) -> (Vec<f32>, f64, usize) {
        let mut b = Vec::new();
        let (max_err, n) = encode(orig, recon, q, bound, &mut b);
        let mut vals = recon.to_vec();
        let mut s = b.as_slice();
        decode(&mut s, q, &mut vals).expect("decode");
        assert!(s.is_empty());
        (vals, max_err, n)
    }

    #[test]
    fn quantised_corrections_restore_within_bound() {
        let orig: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let recon: Vec<f32> = orig.iter().map(|v| v + 0.05).collect(); // uniformly off
        let bound = 1e-3;
        let (vals, max_err, n) = roundtrip(&orig, &recon, bound / 2.0, bound);
        assert_eq!(n, 100, "every sample off by 0.05 needs correcting");
        assert!(max_err <= bound);
        for (a, b) in orig.iter().zip(&vals) {
            assert!((f64::from(*a) - f64::from(*b)).abs() <= bound);
        }
    }

    #[test]
    fn nonfinite_and_huge_residuals_escape_to_exact_bits() {
        let orig = [f32::NAN, f32::INFINITY, 1.0e38, -0.5];
        let recon = [0.0f32, 0.0, -1.0e38, -0.5];
        let (vals, _, n) = roundtrip(&orig, &recon, 5e-4, 1e-3);
        assert_eq!(n, 3);
        assert!(vals[0].is_nan());
        assert_eq!(vals[1], f32::INFINITY);
        assert_eq!(vals[2], 1.0e38);
        assert_eq!(vals[3], -0.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn corrected_streams_always_meet_the_bound(
            bits in prop::collection::vec(any::<u32>(), 1..200),
            noise in prop::collection::vec(-1.0f64..1.0, 1..200),
            bound_exp in -6i32..0,
        ) {
            let n = bits.len().min(noise.len());
            let orig: Vec<f32> = bits.iter().take(n).map(|&b| f32::from_bits(b)).collect();
            let recon: Vec<f32> = orig
                .iter()
                .zip(&noise)
                .map(|(&o, &e)| if o.is_finite() { (f64::from(o) + e) as f32 } else { 0.0 })
                .collect();
            let bound = 10f64.powi(bound_exp);
            let (vals, max_err, _) = roundtrip(&orig, &recon, bound / 2.0, bound);
            prop_assert!(max_err <= bound);
            for (a, b) in orig.iter().zip(&vals) {
                if a.is_finite() {
                    prop_assert!((f64::from(*a) - f64::from(*b)).abs() <= bound, "{a} vs {b}");
                } else {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
