//! The temporal keyframe codec for frame sequences.
//!
//! Keeps every `every`-th time-step (plus the last) as a lossless-coded
//! keyframe and re-derives the frames in between at decode time by
//! cubic Hermite interpolation: Catmull-Rom tangents where a keyframe
//! exists beyond the segment, one-sided secant tangents at the sequence
//! edges (with no far keyframe on either side this degenerates to exact
//! linear interpolation). As in the spatial codec, samples the predictor
//! misses by more than `max_error` ship as sparse corrections
//! ([`crate::corrections`]), so the bound holds by construction —
//! keyframes themselves are always bit-exact.
//!
//! Partition blocks are time-step-major — one block never holds the same
//! atom at two time-steps — so this codec operates above the block
//! layer, on whole frame sequences; the `repro -- compression`
//! experiment sweeps it against the spatial tier (EXPERIMENTS.md).

use crate::varint::{get_u64, put_u64};
use crate::{corrections, lossless, CodecError};

/// Encoder-side stats, mirroring [`crate::spatial::SpatialStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TemporalStats {
    /// Max |reconstructed − original| over uncorrected samples.
    pub max_error: f64,
    /// Total sparse corrections across all predicted frames.
    pub corrections: usize,
    /// Keyframes kept (the rest are re-derived).
    pub keyframes: usize,
}

/// Keyframe time-steps for `n` frames at interval `every`.
fn keyframe_steps(n: usize, every: u32) -> Vec<usize> {
    let every = every.max(1) as usize;
    let mut ks: Vec<usize> = (0..n).step_by(every).collect();
    if n > 0 && ks.last() != Some(&(n - 1)) {
        ks.push(n - 1);
    }
    ks
}

/// Predicts frame `t` from the keyframes (`ks` indices into the
/// sequence, `keyvals` the keyframe payloads in order).
fn predict(t: usize, ks: &[usize], keyvals: &[Vec<f32>], out: &mut [f32]) {
    // segment ka < t < kb between consecutive keyframes
    let seg = ks.partition_point(|&k| k < t);
    let (ka, kb) = (ks[seg - 1], ks[seg]);
    let (va, vb) = (&keyvals[seg - 1], &keyvals[seg]);
    let span = (kb - ka) as f64;
    let u = (t - ka) as f64 / span;
    let (h00, h10, h01, h11) = hermite_basis(u);
    // Catmull-Rom tangents (scaled to the segment) where a far keyframe
    // exists; the segment's own secant otherwise — with both neighbours
    // missing the cubic collapses to exact linear interpolation
    let vp = if seg >= 2 {
        Some(&keyvals[seg - 2])
    } else {
        None
    };
    let vn = if seg + 1 < ks.len() {
        Some(&keyvals[seg + 1])
    } else {
        None
    };
    let sa = vp.map(|_| span / (kb - ks[seg - 2]) as f64);
    let sb = vn.map(|_| span / (ks[seg + 1] - ka) as f64);
    for (i, o) in out.iter_mut().enumerate() {
        let (a, b) = (f64::from(va[i]), f64::from(vb[i]));
        let ma = match (vp, sa) {
            (Some(vp), Some(s)) => (b - f64::from(vp[i])) * s,
            _ => b - a,
        };
        let mb = match (vn, sb) {
            (Some(vn), Some(s)) => (f64::from(vn[i]) - a) * s,
            _ => b - a,
        };
        *o = (h00 * a + h10 * ma + h01 * b + h11 * mb) as f32;
    }
}

fn hermite_basis(u: f64) -> (f64, f64, f64, f64) {
    let (u2, u3) = (u * u, u * u * u);
    (
        2.0 * u3 - 3.0 * u2 + 1.0,
        u3 - 2.0 * u2 + u,
        -2.0 * u3 + 3.0 * u2,
        u3 - u2,
    )
}

/// The correction quantum for a bound (see the spatial codec).
fn quantum(max_error: f64) -> f64 {
    if max_error > 0.0 {
        max_error / 2.0
    } else {
        0.0
    }
}

/// Encodes `frames` (equal-length sample vectors, one per time-step).
pub fn encode(frames: &[Vec<f32>], every: u32, max_error: f64, out: &mut Vec<u8>) -> TemporalStats {
    let n = frames.len();
    let frame_len = frames.first().map_or(0, Vec::len);
    assert!(
        frames.iter().all(|f| f.len() == frame_len),
        "ragged frame sequence"
    );
    let ks = keyframe_steps(n, every);
    let q = quantum(max_error);
    put_u64(out, n as u64);
    put_u64(out, frame_len as u64);
    put_u64(out, u64::from(every.max(1)));
    out.extend_from_slice(&q.to_le_bytes());
    for &k in &ks {
        lossless::encode(&frames[k], out);
    }
    let keyvals: Vec<Vec<f32>> = ks.iter().map(|&k| frames[k].clone()).collect();
    let mut stats = TemporalStats {
        keyframes: ks.len(),
        ..Default::default()
    };
    let mut pred = vec![0.0f32; frame_len];
    for (t, frame) in frames.iter().enumerate() {
        if ks.binary_search(&t).is_ok() {
            continue;
        }
        predict(t, &ks, &keyvals, &mut pred);
        let (max_err, ncorr) = corrections::encode(frame, &pred, q, max_error, out);
        stats.max_error = stats.max_error.max(max_err);
        stats.corrections += ncorr;
    }
    stats
}

/// Decodes a sequence written by [`encode`].
pub fn decode(mut body: &[u8]) -> Result<Vec<Vec<f32>>, CodecError> {
    let buf = &mut body;
    let n = get_u64(buf)? as usize;
    let frame_len = get_u64(buf)? as usize;
    let every = get_u64(buf)? as u32;
    if buf.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    let q = f64::from_le_bytes([
        head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
    ]);
    if !q.is_finite() || q < 0.0 {
        return Err(CodecError::Invalid("temporal quantum out of range"));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let ks = keyframe_steps(n, every);
    let mut keyvals = Vec::with_capacity(ks.len());
    for _ in &ks {
        keyvals.push(lossless::decode_prefix(buf, frame_len)?);
    }
    let mut frames: Vec<Vec<f32>> = Vec::with_capacity(n);
    for t in 0..n {
        if let Ok(seg) = ks.binary_search(&t) {
            frames.push(keyvals[seg].clone());
            continue;
        }
        let mut pred = vec![0.0f32; frame_len];
        predict(t, &ks, &keyvals, &mut pred);
        corrections::decode(buf, q, &mut pred)?;
        frames.push(pred);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_sequence(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|t| {
                (0..len)
                    .map(|i| ((t as f64 * 0.1 + i as f64 * 0.01).sin()) as f32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn keyframe_steps_cover_both_ends() {
        assert_eq!(keyframe_steps(8, 4), vec![0, 4, 7]);
        assert_eq!(keyframe_steps(9, 4), vec![0, 4, 8]);
        assert_eq!(keyframe_steps(1, 4), vec![0]);
        assert_eq!(keyframe_steps(0, 4), Vec::<usize>::new());
    }

    #[test]
    fn smooth_sequence_roundtrips_within_bound_and_compresses() {
        let frames = smooth_sequence(16, 256);
        let bound = 1e-3;
        let mut b = Vec::new();
        let stats = encode(&frames, 4, bound, &mut b);
        assert_eq!(stats.keyframes, 5);
        assert!(stats.max_error <= bound);
        let raw = 16 * 256 * 4;
        assert!(b.len() * 2 < raw, "{} of {raw}", b.len());
        let back = decode(&b).unwrap();
        assert_eq!(back.len(), frames.len());
        for (f, g) in frames.iter().zip(&back) {
            for (a, c) in f.iter().zip(g) {
                assert!((f64::from(*a) - f64::from(*c)).abs() <= bound);
            }
        }
    }

    #[test]
    fn keyframes_are_bitwise_exact() {
        let mut frames = smooth_sequence(9, 64);
        frames[0][7] = f32::NAN;
        frames[8][3] = f32::NEG_INFINITY;
        let mut b = Vec::new();
        encode(&frames, 4, 1e-3, &mut b);
        let back = decode(&b).unwrap();
        for &t in &[0usize, 4, 8] {
            for (a, c) in frames[t].iter().zip(&back[t]) {
                assert_eq!(a.to_bits(), c.to_bits(), "keyframe {t}");
            }
        }
    }

    #[test]
    fn nonfinite_predicted_samples_correct_bitwise() {
        let mut frames = smooth_sequence(8, 32);
        frames[2][5] = f32::NAN;
        frames[3][9] = f32::INFINITY;
        let mut b = Vec::new();
        encode(&frames, 4, 1e-3, &mut b);
        let back = decode(&b).unwrap();
        assert!(back[2][5].is_nan());
        assert_eq!(back[3][9], f32::INFINITY);
    }

    #[test]
    fn cubic_prediction_rarely_misses_on_smooth_data() {
        let frames = smooth_sequence(32, 128);
        // interior (Catmull-Rom) segments predict to ~5e-4 here; the
        // one-sided edge segments carry the error tail, so "rarely" is
        // judged at a bound past the interior accuracy
        let bound = 5e-3;
        let mut hermite = Vec::new();
        let s_h = encode(&frames, 4, bound, &mut hermite);
        assert!(
            s_h.corrections * 10 < 30 * 128,
            "cubic prediction misses too often: {}",
            s_h.corrections
        );
        let back = decode(&hermite).unwrap();
        for (f, g) in frames.iter().zip(&back) {
            for (a, c) in f.iter().zip(g) {
                assert!((f64::from(*a) - f64::from(*c)).abs() <= bound);
            }
        }
    }

    #[test]
    fn truncated_sequence_is_rejected() {
        let frames = smooth_sequence(8, 32);
        let mut b = Vec::new();
        encode(&frames, 4, 1e-3, &mut b);
        assert!(decode(&b[..b.len() / 2]).is_err());
        assert!(decode(&[]).is_err());
    }
}
