//! The spatial keyframe codec for one 8³ atom plane.
//!
//! Keep a sub-sampled lattice — every `stride`-th sample per axis plus
//! the far face, so interpolation never extrapolates — quantise the kept
//! samples, and re-derive every skipped sample at decode time by
//! separable Lagrange interpolation on the kept (non-uniform) node set
//! via [`tdb_kernels::lagrange_basis`]. Samples the interpolant misses
//! by more than `max_error` are repaired by one of two arms, chosen
//! per plane (a mode byte in the header):
//!
//! * **sparse** ([`MODE_SPARSE`]) — index-delta-coded corrections
//!   ([`crate::corrections`]); cheapest when the interpolant rarely
//!   misses (smooth, well-resolved data),
//! * **dense** ([`MODE_DENSE`]) — a bit-packed quantised residual for
//!   *every* skipped sample, with varint overflow and exact-bits escape
//!   codes; cheapest on rough data where sparse corrections would cover
//!   most of the plane anyway.
//!
//! Either way the bound holds by construction: the encoder reconstructs
//! with the decoder's own arithmetic before deciding what to store, and
//! anything still out of bound ships as the original's exact bits
//! (DESIGN.md §10 gives the argument). The encoder additionally tries
//! two quantisation steps — `max_error / 2` and `1.98 · max_error`, both
//! of which keep rounding within the bound — and keeps whichever
//! (quantum, arm) pair encodes smallest; the choice is self-describing,
//! so the decoder has no policy.
//!
//! With `max_error ≤ 0` the kept lattice is stored lossless instead of
//! quantised, and every sample the (then bit-exact at kept positions)
//! interpolant misses at all is corrected with its original bits.

use tdb_kernels::lagrange_basis;
use tdb_zorder::{ATOM_POINTS, ATOM_WIDTH};

use crate::corrections::{self, dequantised, MAX_STEPS};
use crate::varint::{get_u64, put_u64, unzigzag64, zigzag64};
use crate::{lossless, CodecError};

/// Mode byte: skipped samples repaired by sparse corrections only.
const MODE_SPARSE: u8 = 0;
/// Mode byte: a dense bit-packed residual stream covers every skipped
/// sample (sparse corrections still follow, for kept-node escapes).
const MODE_DENSE: u8 = 1;

/// Encoder-side stats reported as `compress.*` metrics by the storage
/// tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpatialStats {
    /// Max |reconstructed − original| over the samples *not* corrected —
    /// the worst error the decoder will exhibit (≤ the configured bound).
    pub max_error: f64,
    /// Number of sparse corrections stored.
    pub corrections: usize,
}

/// Kept sample positions along one axis: `0, stride, 2·stride, …` plus
/// the last index so the interpolant always brackets its targets.
fn kept_axis(stride: u32) -> Vec<usize> {
    let stride = (stride.max(1) as usize).min(ATOM_WIDTH - 1);
    let mut kept: Vec<usize> = (0..ATOM_WIDTH).step_by(stride).collect();
    if kept.last() != Some(&(ATOM_WIDTH - 1)) {
        kept.push(ATOM_WIDTH - 1);
    }
    kept
}

/// The quantisation step for a bound: half of it, so lattice rounding
/// spends at most half the error budget. Non-positive bounds disable
/// quantisation (bit-exact lattice).
fn quantum(max_error: f64) -> f64 {
    if max_error > 0.0 {
        max_error / 2.0
    } else {
        0.0
    }
}

/// The 8×k weight matrix for one axis: row `p` holds the Lagrange basis
/// over the kept nodes evaluated at position `p`. Rows at kept positions
/// are exactly the Kronecker delta, so kept samples reconstruct bit-exact.
fn axis_weights(kept: &[usize]) -> Vec<[f64; ATOM_WIDTH]> {
    let nodes: Vec<f64> = kept.iter().map(|&p| p as f64).collect();
    (0..ATOM_WIDTH)
        .map(|p| {
            let mut w = [0.0f64; ATOM_WIDTH];
            lagrange_basis(&nodes, p as f64, &mut w);
            w
        })
        .collect()
}

/// Separable tensor-product reconstruction of the full 8³ plane from the
/// kept lattice (x-fastest layout, matching atom payload order).
fn reconstruct(kept_vals: &[f32], kept: &[usize]) -> Vec<f32> {
    let k = kept.len();
    let w = axis_weights(kept); // identical per axis: the lattice is cubic
                                // pass 1: expand x (k³ → 8·k²)
    let mut t1 = vec![0.0f64; ATOM_WIDTH * k * k];
    for jl in 0..k * k {
        for x in 0..ATOM_WIDTH {
            let mut acc = 0.0f64;
            for i in 0..k {
                acc += w[x][i] * f64::from(kept_vals[i + jl * k]);
            }
            t1[x + jl * ATOM_WIDTH] = acc;
        }
    }
    // pass 2: expand y (8·k² → 8²·k)
    let mut t2 = vec![0.0f64; ATOM_WIDTH * ATOM_WIDTH * k];
    for l in 0..k {
        for y in 0..ATOM_WIDTH {
            for x in 0..ATOM_WIDTH {
                let mut acc = 0.0f64;
                for j in 0..k {
                    acc += w[y][j] * t1[x + (j + l * k) * ATOM_WIDTH];
                }
                t2[x + (y + l * ATOM_WIDTH) * ATOM_WIDTH] = acc;
            }
        }
    }
    // pass 3: expand z (8²·k → 8³)
    let mut out = vec![0.0f32; ATOM_POINTS];
    for z in 0..ATOM_WIDTH {
        for yx in 0..ATOM_WIDTH * ATOM_WIDTH {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc += w[z][l] * t2[yx + l * ATOM_WIDTH * ATOM_WIDTH];
            }
            out[yx + z * ATOM_WIDTH * ATOM_WIDTH] = acc as f32;
        }
    }
    out
}

/// Quantises one kept sample. Values the grid cannot hold (non-finite,
/// astronomically large) map to 0 — the corrections pass restores them,
/// and mapping rather than escaping keeps the reconstruction tensor
/// finite so one rogue sample cannot pollute the whole plane.
fn quantise(v: f32, q: f64) -> i64 {
    let steps = f64::from(v) / q;
    if steps.is_finite() && steps.abs() < MAX_STEPS {
        steps.round() as i64
    } else {
        0
    }
}

/// Plane indices *not* on the kept lattice, in payload order — the
/// positions the dense residual stream covers.
fn skipped_indices(kept: &[usize]) -> Vec<usize> {
    let mut on_axis = [false; ATOM_WIDTH];
    for &p in kept {
        on_axis[p] = true;
    }
    (0..ATOM_POINTS)
        .filter(|&i| {
            let (x, y, z) = (
                i % ATOM_WIDTH,
                (i / ATOM_WIDTH) % ATOM_WIDTH,
                i / (ATOM_WIDTH * ATOM_WIDTH),
            );
            !(on_axis[x] && on_axis[y] && on_axis[z])
        })
        .collect()
}

/// Encoded length of one varint.
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Writes the dense residual stream: one code per skipped sample, in
/// payload order. A code is `zigzag(d) + 1` for a quantised residual of
/// `d` steps, or `0` to escape to the original's exact 4 bytes. Codes
/// are bit-packed at a per-plane width `b`; codes that do not fit
/// inline (`code ≥ 2^b − 1`) pack the all-ones marker and spill to a
/// varint, interleaved in position order with the escape payloads.
/// Mutates `recon` into the decoder's post-stream state and returns the
/// number of samples actually adjusted (for the `compress.*` metrics).
fn dense_encode(
    plane: &[f32],
    recon: &mut [f32],
    skipped: &[usize],
    q: f64,
    max_error: f64,
    out: &mut Vec<u8>,
) -> usize {
    let mut codes = Vec::with_capacity(skipped.len());
    for &idx in skipped {
        let (o, r) = (plane[idx], recon[idx]);
        let mut code = 0u64;
        if o.is_finite() {
            let steps = (f64::from(o) - f64::from(r)) / q;
            let d = if steps.is_finite() && steps.abs() < MAX_STEPS {
                steps.round() as i64
            } else {
                0
            };
            let cand = dequantised(r, d, q);
            if cand.is_finite() && (f64::from(o) - f64::from(cand)).abs() <= max_error {
                recon[idx] = cand;
                code = zigzag64(d) + 1;
            }
        }
        if code == 0 {
            recon[idx] = o; // exact-bits escape
        }
        codes.push(code);
    }
    // pick the packed width minimising bitstream + overflow varints
    // (the 4-byte escape payloads cost the same at any width)
    let (mut best_b, mut best_cost) = (2usize, usize::MAX);
    for b in 2..=16usize {
        let esc = (1u64 << b) - 1;
        let cost = (codes.len() * b).div_ceil(8)
            + codes
                .iter()
                .filter(|&&c| c >= esc)
                .map(|&c| varint_len(c))
                .sum::<usize>();
        if cost < best_cost {
            (best_b, best_cost) = (b, cost);
        }
    }
    let (b, esc) = (best_b, (1u64 << best_b) - 1);
    out.push(b as u8);
    let mut acc = 0u64;
    let mut nbits = 0usize;
    for &c in &codes {
        acc |= c.min(esc) << nbits;
        nbits += b;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
    for (&idx, &c) in skipped.iter().zip(&codes) {
        if c >= esc {
            put_u64(out, c);
        }
        if c == 0 {
            out.extend_from_slice(&plane[idx].to_bits().to_le_bytes());
        }
    }
    codes.iter().filter(|&&c| c != 1).count()
}

/// Applies a dense residual stream written by [`dense_encode`].
fn dense_decode(
    buf: &mut &[u8],
    skipped: &[usize],
    q: f64,
    vals: &mut [f32],
) -> Result<(), CodecError> {
    let (&b, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
    *buf = rest;
    let b = usize::from(b);
    if !(2..=16).contains(&b) {
        return Err(CodecError::Invalid("dense residual width out of range"));
    }
    if q <= 0.0 {
        return Err(CodecError::Invalid(
            "dense residuals need a positive quantum",
        ));
    }
    let nbytes = (skipped.len() * b).div_ceil(8);
    if buf.len() < nbytes {
        return Err(CodecError::Truncated);
    }
    let (packed, rest) = buf.split_at(nbytes);
    *buf = rest;
    let esc = (1u64 << b) - 1;
    let mut acc = 0u64;
    let mut nbits = 0usize;
    let mut next = packed.iter();
    for &idx in skipped {
        while nbits < b {
            acc |= u64::from(*next.next().ok_or(CodecError::Truncated)?) << nbits;
            nbits += 8;
        }
        let mut c = acc & esc;
        acc >>= b;
        nbits -= b;
        if c == esc {
            c = get_u64(buf)?;
        }
        if c == 0 {
            if buf.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let (head, rest) = buf.split_at(4);
            *buf = rest;
            vals[idx] = f32::from_bits(u32::from_le_bytes([head[0], head[1], head[2], head[3]]));
        } else {
            vals[idx] = dequantised(vals[idx], unzigzag64(c - 1), q);
        }
    }
    Ok(())
}

/// Encodes one full payload variant (`quantum` × `mode`) into `out`.
fn encode_variant(
    plane: &[f32],
    stride: u32,
    kept: &[usize],
    q: f64,
    max_error: f64,
    mode: u8,
    out: &mut Vec<u8>,
) -> SpatialStats {
    // gather the kept lattice in z-major/y/x-minor order
    let k = kept.len();
    let mut kept_vals = Vec::with_capacity(k * k * k);
    for &z in kept {
        for &y in kept {
            for &x in kept {
                kept_vals.push(plane[x + (y + z * ATOM_WIDTH) * ATOM_WIDTH]);
            }
        }
    }
    put_u64(out, u64::from(stride));
    put_u64(out, ATOM_POINTS as u64);
    out.extend_from_slice(&q.to_le_bytes());
    out.push(mode);
    let lattice: Vec<f32> = if q > 0.0 {
        // delta-coded quantised lattice: what the decoder dequantises is
        // what we must interpolate from
        let mut prev = 0i64;
        let mut dequant = Vec::with_capacity(kept_vals.len());
        for &v in &kept_vals {
            let qi = quantise(v, q);
            put_u64(out, zigzag64(qi.wrapping_sub(prev)));
            prev = qi;
            dequant.push((qi as f64 * q) as f32);
        }
        dequant
    } else {
        lossless::encode(&kept_vals, out);
        kept_vals
    };
    let mut recon = reconstruct(&lattice, kept);
    let dense_fixes = if mode == MODE_DENSE {
        dense_encode(plane, &mut recon, &skipped_indices(kept), q, max_error, out)
    } else {
        0
    };
    // sparse pass: everything still out of bound (for the dense arm that
    // is only kept-node escapes, since the stream repaired the rest)
    let (max_err, ncorr) = corrections::encode(plane, &recon, q, max_error, out);
    SpatialStats {
        max_error: max_err,
        corrections: ncorr + dense_fixes,
    }
}

/// Encodes `plane` (must be one atom plane of [`ATOM_POINTS`] samples)
/// and appends the payload to `out`. Returns the stats the storage tier
/// reports.
pub fn encode(plane: &[f32], stride: u32, max_error: f64, out: &mut Vec<u8>) -> SpatialStats {
    assert_eq!(
        plane.len(),
        ATOM_POINTS,
        "spatial codec works on atom planes"
    );
    let kept = kept_axis(stride);
    if max_error <= 0.0 {
        // bit-exact lattice, exact-bits corrections: one variant only
        return encode_variant(plane, stride, &kept, 0.0, max_error, MODE_SPARSE, out);
    }
    // Both candidate quanta keep rounding within the bound (error ≤ q/2):
    // the fine one favours few-correction planes, the coarse one shrinks
    // every stored integer by two bits. The smallest encoding wins; the
    // header carries the choice, so this is pure encoder policy.
    let mut best: Option<(Vec<u8>, SpatialStats)> = None;
    for q in [quantum(max_error), 1.98 * max_error] {
        for mode in [MODE_SPARSE, MODE_DENSE] {
            let mut buf = Vec::new();
            let stats = encode_variant(plane, stride, &kept, q, max_error, mode, &mut buf);
            if best.as_ref().map_or(true, |(b, _)| buf.len() < b.len()) {
                best = Some((buf, stats));
            }
        }
    }
    let (buf, stats) = best.expect("at least one encoding variant");
    out.extend_from_slice(&buf);
    stats
}

/// Decodes a payload written by [`encode`] back to `n` samples.
pub fn decode(mut body: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    if n != ATOM_POINTS {
        return Err(CodecError::Invalid("spatial codec works on atom planes"));
    }
    let buf = &mut body;
    let stride = get_u64(buf)? as u32;
    if stride == 0 || stride as usize >= ATOM_WIDTH {
        return Err(CodecError::Invalid("spatial stride out of range"));
    }
    if get_u64(buf)? as usize != ATOM_POINTS {
        return Err(CodecError::Invalid("spatial plane size mismatch"));
    }
    if buf.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    let q = f64::from_le_bytes([
        head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
    ]);
    if !q.is_finite() || q < 0.0 {
        return Err(CodecError::Invalid("spatial quantum out of range"));
    }
    let (&mode, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
    *buf = rest;
    if mode != MODE_SPARSE && mode != MODE_DENSE {
        return Err(CodecError::Invalid("unknown spatial repair mode"));
    }
    let kept = kept_axis(stride);
    let k = kept.len();
    let lattice: Vec<f32> = if q > 0.0 {
        let mut prev = 0i64;
        let mut vals = Vec::with_capacity(k * k * k);
        for _ in 0..k * k * k {
            prev = prev.wrapping_add(unzigzag64(get_u64(buf)?));
            vals.push((prev as f64 * q) as f32);
        }
        vals
    } else {
        lossless::decode_prefix(buf, k * k * k)?
    };
    let mut out = reconstruct(&lattice, &kept);
    if mode == MODE_DENSE {
        dense_decode(buf, &skipped_indices(&kept), q, &mut out)?;
    }
    corrections::decode(buf, q, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plane_from(f: impl Fn(usize, usize, usize) -> f64) -> Vec<f32> {
        let mut p = vec![0.0f32; ATOM_POINTS];
        for z in 0..ATOM_WIDTH {
            for y in 0..ATOM_WIDTH {
                for x in 0..ATOM_WIDTH {
                    p[x + (y + z * ATOM_WIDTH) * ATOM_WIDTH] = f(x, y, z) as f32;
                }
            }
        }
        p
    }

    fn roundtrip(plane: &[f32], stride: u32, bound: f64) -> (Vec<f32>, SpatialStats, usize) {
        let mut b = Vec::new();
        let stats = encode(plane, stride, bound, &mut b);
        let back = decode(&b, plane.len()).expect("decode");
        (back, stats, b.len())
    }

    #[test]
    fn kept_axis_always_includes_both_faces() {
        for stride in 1..8 {
            let k = kept_axis(stride);
            assert_eq!(k.first(), Some(&0));
            assert_eq!(k.last(), Some(&7));
            assert!(k.windows(2).all(|w| w[0] < w[1]), "{k:?}");
        }
        assert_eq!(kept_axis(2), vec![0, 2, 4, 6, 7]);
    }

    #[test]
    fn polynomial_fields_interpolate_without_corrections_when_unquantised() {
        // degree ≤ 4 per axis: a 5-node basis reproduces them exactly, and
        // a non-positive bound keeps the lattice bit-exact
        let plane = plane_from(|x, y, z| {
            let (x, y, z) = (x as f64, y as f64, z as f64);
            0.5 * x * x - y * z + 2.0 * z - 3.0
        });
        let mut b = Vec::new();
        let stats = encode(&plane, 2, 0.0, &mut b);
        // f64 rounding in the basis weights may cost a few ULP-level
        // corrections, but the interpolation itself must be exact
        assert!(
            stats.corrections < 8,
            "polynomial must interpolate (almost) exactly: {}",
            stats.corrections
        );
        let back = decode(&b, plane.len()).expect("decode");
        for (a, b) in plane.iter().zip(&back) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn smooth_field_beats_4x_within_bound() {
        let plane = plane_from(|x, y, z| {
            (x as f64 * 0.5).sin() * (y as f64 * 0.4).cos() + (z as f64 * 0.3).sin()
        });
        let bound = 1e-2;
        let (back, stats, encoded) = roundtrip(&plane, 2, bound);
        for (a, b) in plane.iter().zip(&back) {
            assert!((f64::from(*a) - f64::from(*b)).abs() <= bound);
        }
        assert!(stats.max_error <= bound);
        let ratio = (ATOM_POINTS * 4) as f64 / encoded as f64;
        assert!(ratio >= 4.0, "ratio {ratio:.2}");
    }

    #[test]
    fn nonfinite_samples_roundtrip_bitwise_via_corrections() {
        let mut plane = plane_from(|x, _, _| x as f64);
        plane[17] = f32::NAN;
        plane[100] = f32::INFINITY;
        plane[511] = f32::NEG_INFINITY;
        let (back, _, _) = roundtrip(&plane, 2, 1e-3);
        assert!(back[17].is_nan());
        assert_eq!(back[100], f32::INFINITY);
        assert_eq!(back[511], f32::NEG_INFINITY);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[], ATOM_POINTS).is_err());
        assert!(decode(&[0, 0, 0], ATOM_POINTS).is_err());
        let plane = plane_from(|x, y, z| (x + y + z) as f64);
        let mut b = Vec::new();
        encode(&plane, 2, 1e-3, &mut b);
        assert!(decode(&b[..b.len() / 3], ATOM_POINTS).is_err());
        assert!(decode(&b, 13).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The satellite guarantee: lossy reconstruction error never
        /// exceeds the configured bound, for arbitrary payloads (finite
        /// and not), strides and bounds.
        #[test]
        fn reconstruction_error_never_exceeds_bound(
            bits in prop::collection::vec(any::<u32>(), ATOM_POINTS..ATOM_POINTS + 1),
            stride in 1u32..5,
            bound_exp in -6i32..0,
        ) {
            let plane: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
            let bound = 10f64.powi(bound_exp);
            let (back, stats, _) = roundtrip(&plane, stride, bound);
            prop_assert!(stats.max_error <= bound);
            for (a, b) in plane.iter().zip(&back) {
                if a.is_finite() {
                    prop_assert!(
                        (f64::from(*a) - f64::from(*b)).abs() <= bound,
                        "{a} decoded as {b}"
                    );
                } else {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
