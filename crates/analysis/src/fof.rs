//! Friends-of-friends clustering.
//!
//! Two points are friends when they lie within the linking length `b` of
//! each other (Chebyshev metric on the periodic grid; one time-step apart
//! at most in the 4-D variant). Clusters are the transitive closure —
//! "the locations of maximum vorticity in the dataset were clustered ...
//! in 4d using a friends-of-friends algorithm" (paper §3, Fig. 3).

use std::collections::HashMap;

use tdb_cache::ThresholdPoint;

/// A threshold point tagged with its time-step (4-D clustering input).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceTimePoint {
    pub timestep: u32,
    pub point: ThresholdPoint,
}

/// Summary of one friends-of-friends cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Number of member points.
    pub size: usize,
    /// Largest field norm among members.
    pub peak_value: f32,
    /// Location of the peak (grid coordinates).
    pub peak_location: (u32, u32, u32),
    /// Time-step of the peak (0 for 3-D clustering).
    pub peak_timestep: u32,
    /// Time-steps spanned (1 for 3-D clustering).
    pub timespan: u32,
    /// Member indexes into the input slice.
    pub members: Vec<usize>,
}

/// Disjoint-set forest with path compression and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Periodic Chebyshev-adjacency test along one axis.
#[inline]
fn axis_close(a: u32, b: u32, n: u32, link: u32) -> bool {
    let d = a.abs_diff(b);
    d <= link || n - d <= link
}

/// Friends-of-friends clustering of one time-step's points on a periodic
/// grid of extents `dims`, linking length `link` (grid units, Chebyshev).
/// Returns clusters sorted by descending peak value.
pub fn fof_clusters_3d(
    points: &[ThresholdPoint],
    dims: (u32, u32, u32),
    link: u32,
) -> Vec<ClusterStats> {
    let tagged: Vec<SpaceTimePoint> = points
        .iter()
        .map(|&point| SpaceTimePoint { timestep: 0, point })
        .collect();
    fof_clusters_4d(&tagged, dims, link, 0)
}

/// 4-D friends-of-friends: points are friends when within `link` in every
/// spatial axis (periodic) *and* within `time_link` time-steps.
pub fn fof_clusters_4d(
    points: &[SpaceTimePoint],
    dims: (u32, u32, u32),
    link: u32,
    time_link: u32,
) -> Vec<ClusterStats> {
    assert!(link >= 1, "linking length must be at least one grid unit");
    let n = points.len();
    let mut dsu = Dsu::new(n);
    // spatial-hash on cells of edge `link`: friends are always in the same
    // or an adjacent cell
    let cell_of = |p: &SpaceTimePoint| -> (u32, u32, u32, u32) {
        let (x, y, z) = p.point.coords();
        (x / link, y / link, z / link, p.timestep)
    };
    let ncells = (
        dims.0.div_ceil(link),
        dims.1.div_ceil(link),
        dims.2.div_ceil(link),
    );
    let mut buckets: HashMap<(u32, u32, u32, u32), Vec<usize>> = HashMap::new();
    for (i, p) in points.iter().enumerate() {
        buckets.entry(cell_of(p)).or_default().push(i);
    }
    let close = |a: &SpaceTimePoint, b: &SpaceTimePoint| -> bool {
        if a.timestep.abs_diff(b.timestep) > time_link {
            return false;
        }
        let (ax, ay, az) = a.point.coords();
        let (bx, by, bz) = b.point.coords();
        axis_close(ax, bx, dims.0, link)
            && axis_close(ay, by, dims.1, link)
            && axis_close(az, bz, dims.2, link)
    };
    for (&(cx, cy, cz, ct), members) in &buckets {
        // within-cell pairs
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if close(&points[a], &points[b]) {
                    dsu.union(a, b);
                }
            }
        }
        // neighbour cells (half of them, to visit each pair once), with
        // periodic wrap in space and ±time_link in time
        for dt in 0..=time_link {
            for dzi in -1i64..=1 {
                for dyi in -1i64..=1 {
                    for dxi in -1i64..=1 {
                        if dt == 0 && (dzi, dyi, dxi) <= (0, 0, 0) {
                            continue;
                        }
                        let nb = (
                            (i64::from(cx) + dxi).rem_euclid(i64::from(ncells.0)) as u32,
                            (i64::from(cy) + dyi).rem_euclid(i64::from(ncells.1)) as u32,
                            (i64::from(cz) + dzi).rem_euclid(i64::from(ncells.2)) as u32,
                            ct + dt,
                        );
                        let Some(others) = buckets.get(&nb) else {
                            continue;
                        };
                        for &a in members {
                            for &b in others {
                                if close(&points[a], &points[b]) {
                                    dsu.union(a, b);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // collect clusters
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        groups.entry(dsu.find(i)).or_default().push(i);
    }
    let mut out: Vec<ClusterStats> = groups
        .into_values()
        .map(|members| {
            let peak = members
                .iter()
                .copied()
                .max_by(|&a, &b| points[a].point.value.total_cmp(&points[b].point.value))
                .expect("nonempty cluster");
            let ts: Vec<u32> = members.iter().map(|&i| points[i].timestep).collect();
            let tmin = ts.iter().min().copied().unwrap_or(0);
            let tmax = ts.iter().max().copied().unwrap_or(0);
            ClusterStats {
                size: members.len(),
                peak_value: points[peak].point.value,
                peak_location: points[peak].point.coords(),
                peak_timestep: points[peak].timestep,
                timespan: tmax - tmin + 1,
                members,
            }
        })
        .collect();
    out.sort_by(|a, b| b.peak_value.total_cmp(&a.peak_value));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: u32, y: u32, z: u32, v: f32) -> ThresholdPoint {
        ThresholdPoint::at(x, y, z, v)
    }

    #[test]
    fn two_blobs_form_two_clusters() {
        let points = vec![
            p(1, 1, 1, 5.0),
            p(2, 1, 1, 6.0),
            p(1, 2, 1, 4.0),
            p(30, 30, 30, 9.0),
            p(31, 30, 30, 8.0),
        ];
        let clusters = fof_clusters_3d(&points, (64, 64, 64), 1);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].peak_value, 9.0);
        assert_eq!(clusters[0].size, 2);
        assert_eq!(clusters[1].size, 3);
        assert_eq!(clusters[1].peak_location, (2, 1, 1));
    }

    #[test]
    fn linking_length_controls_merging() {
        let points = vec![p(0, 0, 0, 1.0), p(3, 0, 0, 2.0)];
        assert_eq!(fof_clusters_3d(&points, (64, 64, 64), 1).len(), 2);
        assert_eq!(fof_clusters_3d(&points, (64, 64, 64), 3).len(), 1);
    }

    #[test]
    fn clusters_wrap_around_periodic_boundaries() {
        let points = vec![p(63, 5, 5, 1.0), p(0, 5, 5, 2.0)];
        let clusters = fof_clusters_3d(&points, (64, 64, 64), 1);
        assert_eq!(clusters.len(), 1, "periodic neighbours must link");
    }

    #[test]
    fn transitive_chains_form_one_cluster() {
        let points: Vec<ThresholdPoint> = (0..20).map(|i| p(i, 0, 0, i as f32)).collect();
        let clusters = fof_clusters_3d(&points, (64, 64, 64), 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].size, 20);
    }

    #[test]
    fn four_d_links_across_adjacent_timesteps_only() {
        let pts = vec![
            SpaceTimePoint {
                timestep: 0,
                point: p(5, 5, 5, 1.0),
            },
            SpaceTimePoint {
                timestep: 1,
                point: p(6, 5, 5, 2.0),
            },
            SpaceTimePoint {
                timestep: 5,
                point: p(5, 5, 5, 3.0),
            },
        ];
        let clusters = fof_clusters_4d(&pts, (64, 64, 64), 1, 1);
        assert_eq!(clusters.len(), 2);
        let biggest = clusters.iter().find(|c| c.size == 2).unwrap();
        assert_eq!(biggest.timespan, 2);
        // with a huge time link everything merges
        let merged = fof_clusters_4d(&pts, (64, 64, 64), 1, 10);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].timespan, 6);
    }

    #[test]
    fn result_is_invariant_under_input_permutation() {
        let mut points: Vec<ThresholdPoint> = Vec::new();
        for i in 0..30u32 {
            points.push(p((i * 7) % 50, (i * 13) % 50, (i * 29) % 50, i as f32));
        }
        let a = fof_clusters_3d(&points, (50, 50, 50), 2);
        points.reverse();
        let b = fof_clusters_3d(&points, (50, 50, 50), 2);
        let mut sa: Vec<usize> = a.iter().map(|c| c.size).collect();
        let mut sb: Vec<usize> = b.iter().map(|c| c.size).collect();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
        assert_eq!(a[0].peak_value, b[0].peak_value);
    }

    #[test]
    fn singletons_are_clusters_of_one() {
        let points = vec![p(0, 0, 0, 1.0)];
        let clusters = fof_clusters_3d(&points, (8, 8, 8), 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].size, 1);
        assert_eq!(clusters[0].timespan, 1);
        assert!(fof_clusters_3d(&[], (8, 8, 8), 1).is_empty());
    }
}
