//! Tracking intense-event clusters through time.
//!
//! "Once obtained from the service, these locations can be clustered in
//! both 3d and 4d. This allows scientists to examine their evolution with
//! the flow" (paper §3). Given per-time-step friends-of-friends clusters,
//! this module links them into tracks: a cluster at step `t+1` continues
//! the track of the nearest cluster at step `t` whose peak lies within a
//! linking distance (periodic Chebyshev metric), each cluster continuing
//! at most one track.

use crate::fof::ClusterStats;

/// Periodic Chebyshev distance between two grid points.
fn chebyshev_periodic(a: (u32, u32, u32), b: (u32, u32, u32), dims: (u32, u32, u32)) -> u32 {
    let axis = |x: u32, y: u32, n: u32| {
        let d = x.abs_diff(y);
        d.min(n - d)
    };
    axis(a.0, b.0, dims.0)
        .max(axis(a.1, b.1, dims.1))
        .max(axis(a.2, b.2, dims.2))
}

/// One cluster's life across time-steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// `(step index, cluster index within that step)` per visited step,
    /// consecutive steps only.
    pub path: Vec<(usize, usize)>,
    /// Largest peak value along the track.
    pub peak_value: f32,
    /// Step index where the peak occurs.
    pub peak_step: usize,
}

impl Track {
    /// Number of steps the track spans.
    pub fn lifetime(&self) -> usize {
        self.path.len()
    }
}

/// Links per-step clusters into tracks.
///
/// `steps[i]` holds the clusters of step `i` (any order). A cluster links
/// to the nearest unclaimed cluster of the previous step whose peak is
/// within `max_link` (periodic Chebyshev); unlinked clusters start new
/// tracks. Tracks are returned sorted by descending peak value.
pub fn track_clusters(
    steps: &[Vec<ClusterStats>],
    dims: (u32, u32, u32),
    max_link: u32,
) -> Vec<Track> {
    let mut tracks: Vec<Track> = Vec::new();
    // open_tracks[j] = index into `tracks` whose tail is cluster j of the
    // previous step
    let mut open: Vec<usize> = Vec::new();
    for (step_idx, clusters) in steps.iter().enumerate() {
        let prev: Vec<usize> = open.clone();
        let mut claimed = vec![false; prev.len()];
        let mut next_open = vec![usize::MAX; clusters.len()];
        // greedy nearest-match: iterate clusters by descending peak so the
        // strongest events claim their predecessors first
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_by(|&a, &b| clusters[b].peak_value.total_cmp(&clusters[a].peak_value));
        for ci in order {
            let c = &clusters[ci];
            let mut best: Option<(u32, usize)> = None;
            for (pj, &track_idx) in prev.iter().enumerate() {
                if claimed[pj] {
                    continue;
                }
                let (last_step, last_ci) = *tracks[track_idx].path.last().expect("nonempty");
                debug_assert_eq!(last_step + 1, step_idx);
                let d = chebyshev_periodic(
                    c.peak_location,
                    steps[last_step][last_ci].peak_location,
                    dims,
                );
                if d <= max_link && best.map_or(true, |(bd, _)| d < bd) {
                    best = Some((d, pj));
                }
            }
            let track_idx = match best {
                Some((_, pj)) => {
                    claimed[pj] = true;
                    let idx = prev[pj];
                    tracks[idx].path.push((step_idx, ci));
                    if c.peak_value > tracks[idx].peak_value {
                        tracks[idx].peak_value = c.peak_value;
                        tracks[idx].peak_step = step_idx;
                    }
                    idx
                }
                None => {
                    tracks.push(Track {
                        path: vec![(step_idx, ci)],
                        peak_value: c.peak_value,
                        peak_step: step_idx,
                    });
                    tracks.len() - 1
                }
            };
            next_open[ci] = track_idx;
        }
        open = next_open;
    }
    tracks.sort_by(|a, b| b.peak_value.total_cmp(&a.peak_value));
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fof::fof_clusters_3d;
    use tdb_cache::ThresholdPoint;

    fn blob(cx: u32, cy: u32, cz: u32, peak: f32) -> Vec<ThresholdPoint> {
        vec![
            ThresholdPoint::at(cx, cy, cz, peak),
            ThresholdPoint::at(cx + 1, cy, cz, peak * 0.8),
            ThresholdPoint::at(cx, cy + 1, cz, peak * 0.7),
        ]
    }

    fn clusters_of(points: Vec<ThresholdPoint>) -> Vec<ClusterStats> {
        fof_clusters_3d(&points, (64, 64, 64), 2)
    }

    #[test]
    fn a_moving_blob_forms_one_track() {
        // a blob drifting +2 in x per step, peak growing then decaying
        let steps: Vec<Vec<ClusterStats>> = (0..5)
            .map(|t| {
                let peak = 10.0 + 5.0 * (2.0 - (t as f32 - 2.0).abs());
                clusters_of(blob(10 + 2 * t as u32, 20, 20, peak))
            })
            .collect();
        let tracks = track_clusters(&steps, (64, 64, 64), 3);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].lifetime(), 5);
        assert_eq!(tracks[0].peak_step, 2);
        assert!((tracks[0].peak_value - 20.0).abs() < 1e-5);
    }

    #[test]
    fn distant_blobs_form_separate_tracks() {
        let steps: Vec<Vec<ClusterStats>> = (0..3)
            .map(|t| {
                let mut pts = blob(10, 10, 10 + t as u32, 5.0);
                pts.extend(blob(50, 50, 50, 9.0));
                clusters_of(pts)
            })
            .collect();
        let tracks = track_clusters(&steps, (64, 64, 64), 3);
        assert_eq!(tracks.len(), 2);
        // strongest first
        assert!(tracks[0].peak_value > tracks[1].peak_value);
        assert_eq!(tracks[0].lifetime(), 3);
        assert_eq!(tracks[1].lifetime(), 3);
    }

    #[test]
    fn track_breaks_when_the_event_jumps_too_far() {
        let steps = vec![
            clusters_of(blob(10, 10, 10, 5.0)),
            clusters_of(blob(40, 40, 40, 6.0)), // far away: new track
        ];
        let tracks = track_clusters(&steps, (64, 64, 64), 3);
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|t| t.lifetime() == 1));
    }

    #[test]
    fn tracking_wraps_periodic_boundaries() {
        let steps = vec![
            clusters_of(blob(62, 10, 10, 5.0)),
            clusters_of(blob(1, 10, 10, 5.5)), // wrapped neighbour
        ];
        let tracks = track_clusters(&steps, (64, 64, 64), 4);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].lifetime(), 2);
    }

    #[test]
    fn a_dying_event_frees_its_slot() {
        // blob A exists at steps 0-1; a new blob B appears at step 2 in a
        // different place: two tracks, no spurious linkage
        let steps = vec![
            clusters_of(blob(10, 10, 10, 5.0)),
            clusters_of(blob(11, 10, 10, 4.0)),
            clusters_of(blob(30, 30, 30, 7.0)),
        ];
        let tracks = track_clusters(&steps, (64, 64, 64), 3);
        assert_eq!(tracks.len(), 2);
        let lifetimes: Vec<usize> = tracks.iter().map(Track::lifetime).collect();
        assert!(lifetimes.contains(&2) && lifetimes.contains(&1));
    }

    #[test]
    fn merging_events_claim_nearest_predecessor_by_strength() {
        // two blobs converge; at step 1 only one cluster remains — it
        // continues exactly one of the two tracks
        let steps = vec![
            {
                let mut pts = blob(10, 10, 10, 5.0);
                pts.extend(blob(18, 10, 10, 8.0));
                clusters_of(pts)
            },
            clusters_of(blob(14, 10, 10, 9.0)),
        ];
        let tracks = track_clusters(&steps, (64, 64, 64), 6);
        assert_eq!(tracks.len(), 2);
        let continued = tracks
            .iter()
            .find(|t| t.lifetime() == 2)
            .expect("one continues");
        assert_eq!(continued.peak_value, 9.0);
    }
}
