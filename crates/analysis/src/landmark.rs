//! The landmark database (paper §7, future work).
//!
//! "The introduction of an application-aware cache for query results lays
//! the groundwork for the creation of a landmark database. Such a database
//! can store the locations of the highest vorticity regions in the dataset
//! or more broadly regions of interest and their associated statistics."

use std::collections::BTreeMap;

use tdb_zorder::Box3;

use crate::fof::ClusterStats;

/// One region of interest and its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Landmark {
    pub dataset: String,
    pub field: String,
    pub timestep: u32,
    /// Bounding box of the region.
    pub region: Box3,
    pub peak_value: f32,
    pub peak_location: (u32, u32, u32),
    pub num_points: usize,
}

/// An in-memory landmark catalogue, ordered by descending peak value per
/// (dataset, field).
#[derive(Debug, Default)]
pub struct LandmarkDb {
    entries: BTreeMap<(String, String), Vec<Landmark>>,
}

impl LandmarkDb {
    /// Empty catalogue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the clusters of one time-step's threshold query as
    /// landmarks. `dims` bounds the per-cluster bounding boxes.
    pub fn record_clusters(
        &mut self,
        dataset: &str,
        field: &str,
        timestep: u32,
        clusters: &[ClusterStats],
        points: &[tdb_cache::ThresholdPoint],
    ) {
        for c in clusters {
            let mut lo = [u32::MAX; 3];
            let mut hi = [0u32; 3];
            for &m in &c.members {
                let (x, y, z) = points[m].coords();
                for (i, v) in [x, y, z].into_iter().enumerate() {
                    lo[i] = lo[i].min(v);
                    hi[i] = hi[i].max(v);
                }
            }
            self.insert(Landmark {
                dataset: dataset.to_string(),
                field: field.to_string(),
                timestep,
                region: Box3::new(lo, hi),
                peak_value: c.peak_value,
                peak_location: c.peak_location,
                num_points: c.size,
            });
        }
    }

    /// Inserts a landmark, keeping per-key ordering by peak value.
    pub fn insert(&mut self, lm: Landmark) {
        let key = (lm.dataset.clone(), lm.field.clone());
        let list = self.entries.entry(key).or_default();
        let pos = list
            .binary_search_by(|e| lm.peak_value.total_cmp(&e.peak_value))
            .unwrap_or_else(|p| p);
        list.insert(pos, lm);
    }

    /// The `k` most intense landmarks of a field across all time-steps.
    pub fn top(&self, dataset: &str, field: &str, k: usize) -> &[Landmark] {
        self.entries
            .get(&(dataset.to_string(), field.to_string()))
            .map(|v| &v[..k.min(v.len())])
            .unwrap_or(&[])
    }

    /// Landmarks of one time-step.
    pub fn at_timestep(&self, dataset: &str, field: &str, t: u32) -> Vec<&Landmark> {
        self.entries
            .get(&(dataset.to_string(), field.to_string()))
            .map(|v| v.iter().filter(|l| l.timestep == t).collect())
            .unwrap_or_default()
    }

    /// Total number of landmarks.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fof::fof_clusters_3d;
    use tdb_cache::ThresholdPoint;

    #[test]
    fn record_and_rank_landmarks() {
        let points = vec![
            ThresholdPoint::at(1, 1, 1, 5.0),
            ThresholdPoint::at(2, 1, 1, 7.0),
            ThresholdPoint::at(40, 40, 40, 9.0),
        ];
        let clusters = fof_clusters_3d(&points, (64, 64, 64), 1);
        let mut db = LandmarkDb::new();
        db.record_clusters("mhd", "vorticity", 3, &clusters, &points);
        assert_eq!(db.len(), 2);
        let top = db.top("mhd", "vorticity", 1);
        assert_eq!(top[0].peak_value, 9.0);
        assert_eq!(top[0].num_points, 1);
        // bounding box of the two-point cluster
        let second = &db.top("mhd", "vorticity", 2)[1];
        assert_eq!(second.region, Box3::new([1, 1, 1], [2, 1, 1]));
        assert_eq!(db.at_timestep("mhd", "vorticity", 3).len(), 2);
        assert!(db.at_timestep("mhd", "vorticity", 0).is_empty());
        assert!(db.top("mhd", "pressure", 5).is_empty());
    }

    #[test]
    fn insert_keeps_descending_order_across_timesteps() {
        let mut db = LandmarkDb::new();
        for (t, v) in [(0u32, 3.0f32), (1, 9.0), (2, 6.0)] {
            db.insert(Landmark {
                dataset: "iso".into(),
                field: "q".into(),
                timestep: t,
                region: Box3::cube(2),
                peak_value: v,
                peak_location: (0, 0, 0),
                num_points: 1,
            });
        }
        let tops: Vec<f32> = db.top("iso", "q", 3).iter().map(|l| l.peak_value).collect();
        assert_eq!(tops, vec![9.0, 6.0, 3.0]);
    }
}
