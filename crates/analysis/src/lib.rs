//! Scientific analysis on top of threshold-query results.
//!
//! The paper's use cases (§3): cluster the locations of maximum vorticity
//! with a friends-of-friends algorithm in 3-D (one time-step) or 4-D
//! (space-time) to find the most intense events and follow their
//! evolution, and maintain a *landmark database* of regions of interest
//! (the future-work item of §7).

pub mod fof;
pub mod landmark;
pub mod tracking;

pub use fof::{fof_clusters_3d, fof_clusters_4d, ClusterStats, SpaceTimePoint};
pub use landmark::{Landmark, LandmarkDb};
pub use tracking::{track_clusters, Track};
