//! Query and result types.

use tdb_cache::ThresholdPoint;
use tdb_cluster::{QueryMode, TimeBreakdown};
use tdb_kernels::DerivedField;
use tdb_zorder::Box3;

/// Server-side result-size limits and failure policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryLimits {
    /// Maximum locations a threshold query may return ("currently this
    /// limit is set conservatively to 10⁶ locations", paper §4).
    pub max_points: u64,
    /// Fail the whole query when any node is unavailable or over its
    /// deadline instead of degrading to a partial answer.
    pub strict: bool,
    /// Per-node modelled-time deadline in seconds; a node whose modelled
    /// evaluation time exceeds it is treated as failed (degraded or, in
    /// strict mode, an error). `None` disables the deadline.
    pub node_deadline_s: Option<f64>,
}

impl Default for QueryLimits {
    fn default() -> Self {
        Self {
            max_points: 1_000_000,
            strict: false,
            node_deadline_s: None,
        }
    }
}

/// A threshold query as submitted by a client.
#[derive(Debug, Clone)]
pub struct ThresholdQuery {
    /// Stored raw field the derived quantity is computed from.
    pub raw_field: String,
    /// Derived quantity whose norm is compared against the threshold.
    pub derived: DerivedField,
    pub timestep: u32,
    /// Spatial region; `None` queries the entire time-step (the common
    /// case in the paper).
    pub query_box: Option<Box3>,
    pub threshold: f64,
    /// Whether to consult/update the semantic cache.
    pub use_cache: bool,
    /// Full evaluation or the I/O-only probe of Fig. 8.
    pub mode: QueryMode,
    /// Worker processes per node (scaling experiments); `None` uses the
    /// cluster default.
    pub procs_override: Option<usize>,
}

impl ThresholdQuery {
    /// The typical query: a whole time-step, cache enabled.
    pub fn whole_timestep(
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        threshold: f64,
    ) -> Self {
        Self {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
            query_box: None,
            threshold,
            use_cache: true,
            mode: QueryMode::Full,
            procs_override: None,
        }
    }

    /// Disables the cache for this query (the paper's "no cache" runs).
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// Restricts the query to a box.
    pub fn in_box(mut self, b: Box3) -> Self {
        self.query_box = Some(b);
        self
    }

    /// Overrides the per-node process count.
    pub fn with_procs(mut self, procs: usize) -> Self {
        self.procs_override = Some(procs);
        self
    }
}

/// Result of a threshold query.
#[derive(Debug)]
pub struct ThresholdResult {
    /// Locations (Morton-coded) with the field norm at each.
    pub points: Vec<ThresholdPoint>,
    /// Modelled/measured execution-time breakdown (Fig. 9 phases).
    pub breakdown: TimeBreakdown,
    /// Nodes that answered from their semantic cache.
    pub cache_hits: usize,
    /// Nodes that participated.
    pub nodes: usize,
    /// Real wall-clock of the in-process evaluation.
    pub wall_s: f64,
    /// Span tree of the query's phases and per-node work.
    pub trace: Option<tdb_obs::QueryTrace>,
    /// Present when one or more nodes failed and the answer is partial:
    /// names the failed nodes and the grid boxes whose data is missing.
    pub degraded: Option<tdb_cluster::DegradedInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_compose() {
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 2, 44.0)
            .without_cache()
            .in_box(Box3::cube(32))
            .with_procs(8);
        assert!(!q.use_cache);
        assert_eq!(q.query_box, Some(Box3::cube(32)));
        assert_eq!(q.procs_override, Some(8));
        assert_eq!(q.timestep, 2);
    }

    #[test]
    fn default_limit_matches_paper() {
        assert_eq!(QueryLimits::default().max_points, 1_000_000);
    }
}
