//! The local-evaluation baseline of paper §5.3.
//!
//! "To perform the evaluation locally the user requests the derived field
//! of interest from the database by submitting multiple queries over
//! subregions of a time-step ... a Web-service request will be much larger
//! due to the overhead of wrapping the data in an xml format. After the
//! field of interest is obtained locally the user has to threshold it."
//! One collaborator reported this took **over 20 hours** per time-step;
//! the integrated evaluation takes minutes. This module reproduces that
//! comparison with the same device models the integrated path uses.

use tdb_cluster::mediator::ThresholdRequest;
use tdb_cluster::{Cluster, QueryMode, TimeBreakdown};
use tdb_kernels::DerivedField;
use tdb_storage::device::DeviceProfile;
use tdb_storage::StorageResult;
use tdb_zorder::Box3;

/// Modelled cost of the client-side evaluation strategy.
#[derive(Debug, Clone)]
pub struct LocalBaselineReport {
    /// Number of sub-region requests the user must issue.
    pub num_subqueries: u64,
    /// Bytes the user downloads (XML-wrapped derived field).
    pub download_bytes: u64,
    /// Modelled server time (I/O + compute, same as integrated path).
    pub server_s: f64,
    /// Modelled wide-area transfer time.
    pub transfer_s: f64,
    /// Total local-evaluation time.
    pub total_s: f64,
    /// Components of the derived field shipped per point.
    pub ncomp_shipped: u64,
}

/// Estimates the cost of evaluating a threshold query *locally*: the user
/// downloads the derived field (e.g. the 9-component velocity gradient
/// needed for the vorticity) sub-region by sub-region over `user_link` and
/// thresholds on their own machine.
///
/// The server-side portion is *evaluated for real* (same scan and kernel
/// machinery as the integrated path, cache disabled); the user-bound
/// transfer is modelled from the XML-inflated payload size.
pub fn local_evaluation_estimate(
    cluster: &Cluster,
    raw_field: &str,
    derived: DerivedField,
    timestep: u32,
    query_box: &Box3,
    subregion_edge: u32,
    user_link: &DeviceProfile,
) -> StorageResult<LocalBaselineReport> {
    // the user must fetch every component the derived field is built from
    let ncomp_shipped: u64 = match derived {
        DerivedField::Norm => 3,
        DerivedField::CurlNorm => 9, // velocity gradient
        DerivedField::QCriterion
        | DerivedField::RInvariant
        | DerivedField::GradientNorm
        | DerivedField::StrainRateNorm => 9,
        DerivedField::DivergenceAbs => 3,
        // filtered fields ship the filtered components themselves
        DerivedField::BoxFilteredNorm { .. } => 3,
        DerivedField::LaplacianNorm => 3,
    };
    // server does the same scan + kernel work as the integrated path
    let req = ThresholdRequest {
        raw_field: raw_field.to_string(),
        derived,
        timestep,
        query_box: *query_box,
        threshold: f64::NEG_INFINITY,
        use_cache: false,
        mode: QueryMode::Full,
        procs_override: None,
        strict: false,
        node_deadline_s: None,
    };
    let server = server_cost(cluster, &req)?;
    let npoints = query_box.num_points();
    let ext = query_box.extent();
    let sub = u64::from(subregion_edge.max(1));
    let num_subqueries: u64 = ext.iter().map(|e| e.div_ceil(sub)).product();
    let download_bytes = tdb_cluster::wire::xml_cutout_bytes(npoints, ncomp_shipped);
    // each subquery pays a round-trip; the payload streams at link rate
    let transfer_s = user_link.time(2 * num_subqueries, download_bytes);
    Ok(LocalBaselineReport {
        num_subqueries,
        download_bytes,
        server_s: server,
        transfer_s,
        total_s: server + transfer_s,
        ncomp_shipped,
    })
}

/// Modelled server time for producing the derived field: the I/O and
/// compute phases of a full-scan query (PDF machinery reuses the exact
/// scan+kernel path without materialising points).
fn server_cost(cluster: &Cluster, req: &ThresholdRequest) -> StorageResult<f64> {
    let pdf = cluster.get_pdf(req, 0.0, 1.0, 4)?;
    let b: TimeBreakdown = pdf.breakdown;
    Ok(b.io_s + b.compute_s)
}

#[cfg(test)]
mod tests {

    #[test]
    fn gradient_fields_ship_nine_components() {
        // pure size-model check, no cluster required
        let n = 64u64 * 64 * 64;
        let bytes9 = tdb_cluster::wire::xml_cutout_bytes(n, 9);
        let bytes3 = tdb_cluster::wire::xml_cutout_bytes(n, 3);
        assert!(bytes9 > 2 * bytes3);
    }
}
