//! Service-level errors.

use std::fmt;

use tdb_storage::StorageError;

/// Failure while building the archive and cluster.
#[derive(Debug)]
pub enum BuildError {
    Storage(StorageError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Storage(e) => write!(f, "storage failure during build: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Storage(e) => Some(e),
        }
    }
}

impl From<StorageError> for BuildError {
    fn from(e: StorageError) -> Self {
        BuildError::Storage(e)
    }
}

/// Failure of a user query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// "Users receive an error message notifying them if their request has
    /// a threshold that is set too low" (paper §4).
    ThresholdTooLow { points: u64, limit: u64 },
    /// The raw field is not part of this dataset.
    UnknownField(String),
    /// The time-step is outside the archive.
    UnknownTimestep { timestep: u32, available: u32 },
    /// The query box reaches outside the grid.
    RegionOutOfBounds,
    /// The storage or cluster layer failed (corrupt partition, missing
    /// data, I/O error). Carries the rendered cause.
    Backend(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ThresholdTooLow { points, limit } => write!(
                f,
                "threshold too low: {points} locations exceed it, limit is {limit}; \
                 raise the threshold or request the field values directly"
            ),
            QueryError::UnknownField(name) => write!(f, "unknown raw field '{name}'"),
            QueryError::UnknownTimestep {
                timestep,
                available,
            } => write!(
                f,
                "time-step {timestep} out of range (archive holds 0..{available})"
            ),
            QueryError::RegionOutOfBounds => write!(f, "query box reaches outside the grid"),
            QueryError::Backend(detail) => write!(f, "backend failure: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = QueryError::ThresholdTooLow {
            points: 2_000_000,
            limit: 1_000_000,
        };
        let s = e.to_string();
        assert!(s.contains("2000000") && s.contains("1000000"));
        assert!(QueryError::UnknownField("vort".into())
            .to_string()
            .contains("vort"));
    }
}
