//! ThresholDB: efficient threshold queries of derived fields in a
//! numerical-simulation database.
//!
//! This crate is the public face of the reproduction of Kanov, Burns &
//! Lalescu (EDBT 2015): a [`TurbulenceService`] that
//!
//! 1. generates a synthetic turbulence archive ([`tdb_turbgen`]),
//! 2. bulk-loads it into a simulated cluster of database nodes
//!    ([`tdb_cluster`], [`tdb_storage`]),
//! 3. evaluates threshold / PDF / top-k / cutout queries of raw and
//!    derived fields data-parallel near the data, with an
//!    application-aware semantic cache ([`tdb_cache`]).
//!
//! ```no_run
//! use tdb_core::{ServiceConfig, TurbulenceService, ThresholdQuery};
//! use tdb_kernels::DerivedField;
//!
//! let config = ServiceConfig::small_mhd("/tmp/tdb-demo");
//! let service = TurbulenceService::build(config).unwrap();
//! let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 44.0);
//! let result = service.get_threshold(&q).unwrap();
//! println!("{} points above threshold: {}", result.points.len(), result.breakdown);
//! ```

pub mod baseline;
pub mod batch;
pub mod error;
pub mod query;
pub mod service;

pub use baseline::{local_evaluation_estimate, LocalBaselineReport};
pub use batch::{BatchSession, JobId, JobSpec, JobState, MyDb};
pub use error::{BuildError, QueryError};
pub use query::{QueryLimits, ThresholdQuery, ThresholdResult};
pub use service::{ServiceConfig, TurbulenceService};

// Re-export the vocabulary types users need alongside the service.
pub use tdb_cache::ThresholdPoint;
pub use tdb_cluster::{DegradedInfo, FailedNode, QueryMode, TimeBreakdown};
pub use tdb_kernels::interp::LagOrder;
pub use tdb_kernels::{DerivedField, FdOrder};
pub use tdb_obs::{AttrValue, MetricsSnapshot, QueryTrace, TraceSpan};
pub use tdb_turbgen::SyntheticDataset;
pub use tdb_zorder::Box3;
