//! The service facade: archive generation, bulk load, and query entry
//! points.

use std::collections::HashMap;
use std::path::PathBuf;

use parking_lot::Mutex;
use tdb_cluster::mediator::ThresholdRequest;
use tdb_cluster::{
    Cluster, ClusterBuilder, ClusterConfig, PdfResponse, ThresholdResponse, TopKResponse,
};
use tdb_field::{FieldStats, VectorField};
use tdb_kernels::{DerivedField, DiffScheme};
use tdb_turbgen::dataset::FieldData;
use tdb_turbgen::SyntheticDataset;
use tdb_zorder::Box3;

use crate::error::{BuildError, QueryError};
use crate::query::{QueryLimits, ThresholdQuery, ThresholdResult};

/// Everything needed to stand a service up.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pub dataset: SyntheticDataset,
    pub cluster: ClusterConfig,
    pub limits: QueryLimits,
    /// Directory for partition files.
    pub data_dir: PathBuf,
}

impl ServiceConfig {
    /// A laptop-scale MHD archive (64³, 4 time-steps, 4 nodes) for tests
    /// and quickstarts.
    pub fn small_mhd(dir: impl Into<PathBuf>) -> Self {
        Self {
            dataset: SyntheticDataset::mhd(64, 4, 0x7db),
            cluster: ClusterConfig {
                chunk_atoms: 2,
                ..ClusterConfig::default()
            },
            limits: QueryLimits::default(),
            data_dir: dir.into(),
        }
    }
}

/// The running service: the paper's Web-services layer, minus SOAP.
pub struct TurbulenceService {
    dataset: SyntheticDataset,
    cluster: Cluster,
    limits: QueryLimits,
    /// Memoised whole-field statistics per (field, derived, timestep).
    stats_cache: Mutex<HashMap<(String, String, u32), FieldStats>>,
}

impl TurbulenceService {
    /// Generates every time-step of the dataset and bulk-loads it into a
    /// fresh cluster.
    pub fn build(config: ServiceConfig) -> Result<Self, BuildError> {
        let fields: Vec<(String, u8)> = config
            .dataset
            .raw_fields()
            .into_iter()
            .map(|f| (f.name.to_string(), f.ncomp as u8))
            .collect();
        let field_refs: Vec<(&str, u8)> = fields.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        let mut builder = ClusterBuilder::new(
            &config.data_dir,
            &config.dataset.name,
            config.dataset.grid.clone(),
            &field_refs,
            config.cluster.clone(),
        )?;
        for t in 0..config.dataset.timesteps {
            let step = config.dataset.generate(t);
            for (name, data) in &step.fields {
                match data {
                    FieldData::Vector(v) => {
                        builder.ingest_timestep(t, name, 3, |atom| v.extract_atom(atom))?
                    }
                    FieldData::Scalar(s) => {
                        builder.ingest_timestep(t, name, 1, |atom| s.extract_atom(atom).to_vec())?
                    }
                }
            }
        }
        Ok(Self {
            dataset: config.dataset,
            cluster: builder.finish()?,
            limits: config.limits,
            stats_cache: Mutex::new(HashMap::new()),
        })
    }

    /// The underlying cluster (experiment control: cache/buffer-pool
    /// clearing, device registry).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The dataset descriptor.
    pub fn dataset(&self) -> &SyntheticDataset {
        &self.dataset
    }

    /// Result-size limits.
    pub fn limits(&self) -> QueryLimits {
        self.limits
    }

    /// The whole-grid query box.
    pub fn full_box(&self) -> Box3 {
        let (nx, ny, nz) = self.dataset.grid.dims();
        Box3::grid(nx as u32, ny as u32, nz as u32)
    }

    fn validate(&self, raw_field: &str, timestep: u32, b: &Box3) -> Result<(), QueryError> {
        if self.dataset.raw_field(raw_field).is_none() {
            return Err(QueryError::UnknownField(raw_field.to_string()));
        }
        if timestep >= self.dataset.timesteps {
            return Err(QueryError::UnknownTimestep {
                timestep,
                available: self.dataset.timesteps,
            });
        }
        if !self.full_box().contains_box(b) {
            return Err(QueryError::RegionOutOfBounds);
        }
        Ok(())
    }

    fn request(&self, q: &ThresholdQuery) -> ThresholdRequest {
        ThresholdRequest {
            raw_field: q.raw_field.clone(),
            derived: q.derived,
            timestep: q.timestep,
            query_box: q.query_box.unwrap_or_else(|| self.full_box()),
            threshold: q.threshold,
            use_cache: q.use_cache,
            mode: q.mode,
            procs_override: q.procs_override,
            strict: self.limits.strict,
            node_deadline_s: self.limits.node_deadline_s,
        }
    }

    /// `GetThreshold`: all locations where the derived field's norm is at
    /// or above the threshold (paper Algorithm 1 end to end).
    pub fn get_threshold(&self, q: &ThresholdQuery) -> Result<ThresholdResult, QueryError> {
        let req = self.request(q);
        self.validate(&q.raw_field, q.timestep, &req.query_box)?;
        let response = self.cluster.get_threshold(&req).map_err(|e| {
            tdb_obs::add("query.threshold.failed", 1);
            QueryError::Backend(e.to_string())
        })?;
        let ThresholdResponse {
            points,
            breakdown,
            cache_hits,
            nodes,
            wall_s,
            trace,
            degraded,
            node_models: _,
        } = response;
        if points.len() as u64 > self.limits.max_points {
            tdb_obs::add("query.threshold.rejected", 1);
            return Err(QueryError::ThresholdTooLow {
                points: points.len() as u64,
                limit: self.limits.max_points,
            });
        }
        tdb_obs::add("query.threshold.ok", 1);
        Ok(ThresholdResult {
            points,
            breakdown,
            cache_hits,
            nodes,
            wall_s,
            trace,
            degraded,
        })
    }

    /// Runs several threshold queries as one admitted batch: queries over
    /// the same scan key share a single atom scan on every node (the
    /// mediator's scan scheduler coalesces them), and each gets exactly
    /// the answer it would have received alone.
    pub fn get_threshold_batch(
        &self,
        queries: &[ThresholdQuery],
    ) -> Vec<Result<ThresholdResult, QueryError>> {
        // validate everything up front; invalid queries never reach the
        // cluster but keep their slot in the result vector
        let prepared: Vec<Result<ThresholdRequest, QueryError>> = queries
            .iter()
            .map(|q| {
                let req = self.request(q);
                self.validate(&q.raw_field, q.timestep, &req.query_box)?;
                Ok(req)
            })
            .collect();
        let valid: Vec<ThresholdRequest> = prepared
            .iter()
            .filter_map(|r| r.as_ref().ok().cloned())
            .collect();
        let mut responses = self.cluster.get_threshold_batch(&valid).into_iter();
        prepared
            .into_iter()
            .map(|slot| {
                let _req = slot?;
                let response = responses.next().ok_or_else(|| {
                    QueryError::Backend("batch executor returned too few responses".to_string())
                })?;
                let response = response.map_err(|e| {
                    tdb_obs::add("query.threshold.failed", 1);
                    QueryError::Backend(e.to_string())
                })?;
                let ThresholdResponse {
                    points,
                    breakdown,
                    cache_hits,
                    nodes,
                    wall_s,
                    trace,
                    degraded,
                    node_models: _,
                } = response;
                if points.len() as u64 > self.limits.max_points {
                    tdb_obs::add("query.threshold.rejected", 1);
                    return Err(QueryError::ThresholdTooLow {
                        points: points.len() as u64,
                        limit: self.limits.max_points,
                    });
                }
                tdb_obs::add("query.threshold.ok", 1);
                Ok(ThresholdResult {
                    points,
                    breakdown,
                    cache_hits,
                    nodes,
                    wall_s,
                    trace,
                    degraded,
                })
            })
            .collect()
    }

    /// A frozen view of every process-wide metric (buffer-pool and cache
    /// counters, per-device I/O, query counts and latencies).
    pub fn metrics_snapshot(&self) -> tdb_obs::MetricsSnapshot {
        tdb_obs::global().snapshot()
    }

    /// PDF of the derived field's norm over a time-step (paper Fig. 2).
    pub fn get_pdf(
        &self,
        q: &ThresholdQuery,
        origin: f64,
        bin_width: f64,
        nbins: usize,
    ) -> Result<PdfResponse, QueryError> {
        let req = self.request(q);
        self.validate(&q.raw_field, q.timestep, &req.query_box)?;
        self.cluster
            .get_pdf(&req, origin, bin_width, nbins)
            .map_err(|e| QueryError::Backend(e.to_string()))
    }

    /// The k most intense locations of a derived field.
    pub fn get_topk(&self, q: &ThresholdQuery, k: usize) -> Result<TopKResponse, QueryError> {
        let req = self.request(q);
        self.validate(&q.raw_field, q.timestep, &req.query_box)?;
        self.cluster
            .get_topk(&req, k)
            .map_err(|e| QueryError::Backend(e.to_string()))
    }

    /// Raw-field cutout (the data-download path users fall back to when
    /// the threshold limit bites).
    pub fn get_cutout(
        &self,
        raw_field: &str,
        timestep: u32,
        cutout: &Box3,
    ) -> Result<(VectorField<3>, tdb_cluster::TimeBreakdown), QueryError> {
        self.validate(raw_field, timestep, cutout)?;
        self.cluster
            .get_cutout(raw_field, timestep, cutout)
            .map_err(|e| QueryError::Backend(e.to_string()))
    }

    /// Top-k with PDF-guided pruning: instead of scanning with an unbounded
    /// threshold, consult the (cacheable) PDF to pick a threshold expected
    /// to pass roughly `k` points, run a threshold query there, and lower
    /// the threshold bin by bin if too few points survive. Warm PDFs make
    /// this much cheaper than [`TurbulenceService::get_topk`] while
    /// returning identical answers.
    pub fn get_topk_guided(
        &self,
        q: &ThresholdQuery,
        k: usize,
    ) -> Result<Vec<tdb_cache::ThresholdPoint>, QueryError> {
        assert!(k >= 1);
        let stats = self.derived_stats(&q.raw_field, q.derived, q.timestep)?;
        // PDF over [min, max] in 64 bins — served from the PDF cache on
        // repeats
        let span = (stats.max - stats.min).max(1e-12);
        let nbins = 64usize;
        let width = span / nbins as f64;
        let pdf = self.get_pdf(q, stats.min, width, nbins)?;
        // walk bins from the top until the cumulative count reaches k
        let counts = pdf.histogram.counts();
        let mut cumulative = 0u64;
        let mut bin = counts.len();
        while bin > 0 && cumulative < k as u64 {
            bin -= 1;
            cumulative += counts.get(bin).copied().unwrap_or(0);
        }
        let mut threshold = stats.min + width * bin as f64;
        loop {
            let probe = ThresholdQuery {
                threshold,
                ..q.clone()
            };
            let r = self.get_threshold(&probe)?;
            if r.points.len() >= k || threshold <= stats.min {
                let mut points = r.points;
                points.sort_unstable_by(|a, b| b.value.total_cmp(&a.value));
                points.truncate(k);
                return Ok(points);
            }
            // rounding starved us: step one bin down (floor at the minimum)
            threshold = (threshold - width).max(stats.min);
        }
    }

    /// Interpolates a raw field at arbitrary positions (grid units, may
    /// be fractional) with 4/6/8-point Lagrange polynomials — the JHTDB
    /// `GetVelocity` family of point queries.
    pub fn interpolate_at(
        &self,
        raw_field: &str,
        timestep: u32,
        positions: &[[f64; 3]],
        order: tdb_kernels::interp::LagOrder,
    ) -> Result<(Vec<[f32; 3]>, tdb_cluster::TimeBreakdown), QueryError> {
        self.validate(raw_field, timestep, &self.full_box())?;
        self.cluster
            .get_points(raw_field, timestep, positions, order)
            .map_err(|e| QueryError::Backend(e.to_string()))
    }

    /// Exact whole-field statistics of a derived quantity, computed from
    /// the regenerated time-step (used to pick thresholds as multiples of
    /// the RMS, as the experiments do). Memoised.
    pub fn derived_stats(
        &self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
    ) -> Result<FieldStats, QueryError> {
        self.validate(raw_field, timestep, &self.full_box())?;
        let key = (raw_field.to_string(), derived.name(), timestep);
        if let Some(s) = self.stats_cache.lock().get(&key) {
            return Ok(*s);
        }
        let step = self.dataset.generate(timestep);
        let data = step
            .fields
            .iter()
            .find(|(n, _)| *n == raw_field)
            .map(|(_, d)| d.as_vector3())
            .ok_or_else(|| QueryError::UnknownField(raw_field.to_string()))?;
        let scheme = DiffScheme::new(&self.dataset.grid, self.cluster.config().fd_order);
        let (nx, ny, nz) = data.dims();
        let mut padded = tdb_field::PaddedVector::zeros(nx, ny, nz, derived.halo(&scheme));
        padded.fill_periodic_from(&data, [0, 0, 0]);
        let norm = derived.eval(&padded, &scheme, [0, 0, 0]);
        let stats = FieldStats::of(&norm);
        self.stats_cache.lock().insert(key, stats);
        Ok(stats)
    }

    /// Picks the threshold whose expected selectivity matches `fraction`
    /// of all grid points (experiment calibration helper): the exact
    /// `1 - fraction` quantile of the derived field's norm.
    pub fn threshold_for_fraction(
        &self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        fraction: f64,
    ) -> Result<f64, QueryError> {
        assert!((0.0..=1.0).contains(&fraction));
        self.validate(raw_field, timestep, &self.full_box())?;
        let step = self.dataset.generate(timestep);
        let data = step
            .fields
            .iter()
            .find(|(n, _)| *n == raw_field)
            .map(|(_, d)| d.as_vector3())
            .ok_or_else(|| QueryError::UnknownField(raw_field.to_string()))?;
        let scheme = DiffScheme::new(&self.dataset.grid, self.cluster.config().fd_order);
        let (nx, ny, nz) = data.dims();
        let mut padded = tdb_field::PaddedVector::zeros(nx, ny, nz, derived.halo(&scheme));
        padded.fill_periodic_from(&data, [0, 0, 0]);
        let norm = derived.eval(&padded, &scheme, [0, 0, 0]);
        // tdb-lint: allow(float-width) — selects an exact f32 data value
        // as the threshold; the widening to f64 below is lossless
        let mut values: Vec<f32> = norm.as_slice().to_vec();
        let k = ((values.len() as f64) * fraction).round() as usize;
        let k = k.clamp(1, values.len());
        let idx = values.len() - k;
        let (_, pivot, _) = values.select_nth_unstable_by(idx, |a, b| a.total_cmp(b));
        Ok(f64::from(*pivot))
    }
}
