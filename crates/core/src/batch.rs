//! Batch queries and MyDB — the paper's §7 future work, implemented.
//!
//! "We plan on deploying a server-side computing environment for users
//! similar to the CasJobs service for the Sloan Digital Sky Survey. In
//! such an environment users can run queries in batch mode and save their
//! results in a personal database called MyDB, which resides on the
//! servers near the data."
//!
//! A [`BatchSession`] owns a background worker that drains a job queue
//! against the service; every job writes its result into the session's
//! [`MyDb`], a quota-bounded per-user result store that later jobs (and
//! the user) can read back without re-running the query.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use tdb_cache::ThresholdPoint;

use crate::query::ThresholdQuery;
use crate::service::TurbulenceService;

/// Identifies a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// What a batch job runs.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A threshold query whose points land in `output_table`.
    Threshold {
        query: ThresholdQuery,
        output_table: String,
    },
    /// A top-k query whose points land in `output_table`.
    TopK {
        query: ThresholdQuery,
        k: usize,
        output_table: String,
    },
}

impl JobSpec {
    fn output_table(&self) -> &str {
        match self {
            JobSpec::Threshold { output_table, .. } | JobSpec::TopK { output_table, .. } => {
                output_table
            }
        }
    }
}

/// Life cycle of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    Queued,
    Running,
    /// Finished; `rows` were written to the output table.
    Done {
        rows: usize,
        modelled_s: f64,
    },
    Failed(String),
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done { .. } | JobState::Failed(_))
    }
}

/// One saved result table.
#[derive(Debug, Clone)]
pub struct MyDbTable {
    /// The query that produced it, rendered for provenance.
    pub provenance: String,
    pub points: Vec<ThresholdPoint>,
}

impl MyDbTable {
    fn bytes(&self) -> u64 {
        64 + self.points.len() as u64 * 12
    }
}

/// The per-user result store.
#[derive(Debug)]
pub struct MyDb {
    tables: Mutex<BTreeMap<String, MyDbTable>>,
    quota_bytes: u64,
}

impl MyDb {
    fn new(quota_bytes: u64) -> Self {
        Self {
            tables: Mutex::new(BTreeMap::new()),
            quota_bytes,
        }
    }

    /// Stores a table, enforcing the quota. Replacing a table reclaims its
    /// old footprint first.
    pub fn put(&self, name: &str, table: MyDbTable) -> Result<(), String> {
        let mut tables = self.tables.lock();
        let existing: u64 = tables
            .iter()
            .filter(|(n, _)| n.as_str() != name)
            .map(|(_, t)| t.bytes())
            .sum();
        if existing + table.bytes() > self.quota_bytes {
            return Err(format!(
                "MyDB quota exceeded: {} + {} bytes > {} quota",
                existing,
                table.bytes(),
                self.quota_bytes
            ));
        }
        tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Reads a table.
    pub fn get(&self, name: &str) -> Option<MyDbTable> {
        self.tables.lock().get(name).cloned()
    }

    /// Drops a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.lock().remove(name).is_some()
    }

    /// Lists table names.
    pub fn list(&self) -> Vec<String> {
        self.tables.lock().keys().cloned().collect()
    }

    /// Total stored bytes.
    pub fn used_bytes(&self) -> u64 {
        self.tables.lock().values().map(MyDbTable::bytes).sum()
    }
}

struct JobBoard {
    states: Mutex<BTreeMap<JobId, JobState>>,
    changed: Condvar,
}

/// A batch-mode session bound to one service.
pub struct BatchSession {
    mydb: Arc<MyDb>,
    board: Arc<JobBoard>,
    sender: Option<mpsc::Sender<(JobId, JobSpec)>>,
    worker: Option<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl BatchSession {
    /// Opens a session with a MyDB quota (paper's MyDB "resides on the
    /// servers near the data" — here, next to the service).
    pub fn open(service: Arc<TurbulenceService>, quota_bytes: u64) -> Self {
        let mydb = Arc::new(MyDb::new(quota_bytes));
        let board = Arc::new(JobBoard {
            states: Mutex::new(BTreeMap::new()),
            changed: Condvar::new(),
        });
        let (tx, rx) = mpsc::channel::<(JobId, JobSpec)>();
        let worker_mydb = Arc::clone(&mydb);
        let worker_board = Arc::clone(&board);
        let worker = std::thread::spawn(move || {
            for (id, spec) in rx {
                set_state(&worker_board, id, JobState::Running);
                let outcome = run_job(&service, &worker_mydb, &spec);
                let state = match outcome {
                    Ok((rows, modelled_s)) => JobState::Done { rows, modelled_s },
                    Err(msg) => JobState::Failed(msg),
                };
                set_state(&worker_board, id, state);
            }
        });
        Self {
            mydb,
            board,
            sender: Some(tx),
            worker: Some(worker),
            next_id: AtomicU64::new(1),
        }
    }

    /// Enqueues a job and returns its id immediately. If the session is
    /// shutting down (queue closed or worker gone) the job lands directly
    /// in a terminal [`JobState::Failed`] instead of panicking.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        set_state(&self.board, id, JobState::Queued);
        let sent = self
            .sender
            .as_ref()
            .is_some_and(|tx| tx.send((id, spec)).is_ok());
        if !sent {
            set_state(
                &self.board,
                id,
                JobState::Failed("batch session is shut down".to_string()),
            );
        }
        id
    }

    /// Current state of a job.
    pub fn status(&self, id: JobId) -> Option<JobState> {
        self.board.states.lock().get(&id).cloned()
    }

    /// Blocks until the job reaches a terminal state. An id this session
    /// never issued resolves to a terminal [`JobState::Failed`] rather
    /// than blocking forever or panicking.
    pub fn wait(&self, id: JobId) -> JobState {
        let mut states = self.board.states.lock();
        loop {
            match states.get(&id) {
                Some(s) if s.is_terminal() => return s.clone(),
                Some(_) => self.board.changed.wait(&mut states),
                None => return JobState::Failed(format!("unknown job {id:?}")),
            }
        }
    }

    /// The session's result store.
    pub fn mydb(&self) -> &MyDb {
        &self.mydb
    }

    /// Drains the queue and shuts the worker down.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.sender.take(); // closing the channel ends the worker loop
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for BatchSession {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn set_state(board: &JobBoard, id: JobId, state: JobState) {
    board.states.lock().insert(id, state);
    board.changed.notify_all();
}

fn run_job(
    service: &TurbulenceService,
    mydb: &MyDb,
    spec: &JobSpec,
) -> Result<(usize, f64), String> {
    let (points, modelled_s, provenance) = match spec {
        JobSpec::Threshold { query, .. } => {
            let r = service.get_threshold(query).map_err(|e| e.to_string())?;
            let prov = format!(
                "threshold {}/{} t={} k={}",
                query.raw_field,
                query.derived.name(),
                query.timestep,
                query.threshold
            );
            (r.points, r.breakdown.total_s(), prov)
        }
        JobSpec::TopK { query, k, .. } => {
            let r = service.get_topk(query, *k).map_err(|e| e.to_string())?;
            let prov = format!(
                "topk {}/{} t={} k={k}",
                query.raw_field,
                query.derived.name(),
                query.timestep
            );
            (r.points, r.breakdown.total_s(), prov)
        }
    };
    let rows = points.len();
    mydb.put(spec.output_table(), MyDbTable { provenance, points })?;
    Ok((rows, modelled_s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::DerivedField;

    fn small_service(tag: &str) -> Arc<TurbulenceService> {
        let mut config = ServiceConfig::small_mhd(
            std::env::temp_dir().join(format!("tdb_batch_{tag}_{}", std::process::id())),
        );
        config.dataset = tdb_turbgen::SyntheticDataset::mhd(32, 2, 0xbeef);
        config.cluster.chunk_atoms = 2;
        config.cluster.num_nodes = 2;
        Arc::new(TurbulenceService::build(config).expect("build"))
    }

    #[test]
    fn jobs_run_and_results_land_in_mydb() {
        let service = small_service("run");
        let session = BatchSession::open(Arc::clone(&service), 10 << 20);
        let q = ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 30.0);
        let job = session.submit(JobSpec::Threshold {
            query: q.clone(),
            output_table: "intense_t0".into(),
        });
        let state = session.wait(job);
        let JobState::Done { rows, modelled_s } = state else {
            panic!("job failed: {state:?}");
        };
        assert!(modelled_s > 0.0);
        let table = session.mydb().get("intense_t0").expect("table saved");
        assert_eq!(table.points.len(), rows);
        assert!(table.provenance.contains("curl_norm"));
        // identical to running the query interactively
        let direct = service.get_threshold(&q).unwrap();
        assert_eq!(direct.points.len(), rows);
        session.close();
    }

    #[test]
    fn jobs_execute_in_submission_order_and_states_progress() {
        let service = small_service("order");
        let session = BatchSession::open(service, 10 << 20);
        let mk = |t: u32, table: &str| JobSpec::Threshold {
            query: ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, t, 35.0),
            output_table: table.into(),
        };
        let a = session.submit(mk(0, "a"));
        let b = session.submit(mk(1, "b"));
        let c = session.submit(JobSpec::TopK {
            query: ThresholdQuery::whole_timestep("velocity", DerivedField::QCriterion, 0, 0.0),
            k: 7,
            output_table: "c".into(),
        });
        assert!(session.wait(a).is_terminal());
        assert!(session.wait(b).is_terminal());
        let JobState::Done { rows, .. } = session.wait(c) else {
            panic!("topk job failed");
        };
        assert_eq!(rows, 7);
        let mut names = session.mydb().list();
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn failed_jobs_report_the_query_error() {
        let service = small_service("fail");
        let session = BatchSession::open(service, 10 << 20);
        let job = session.submit(JobSpec::Threshold {
            query: ThresholdQuery::whole_timestep("bogus", DerivedField::Norm, 0, 1.0),
            output_table: "never".into(),
        });
        let JobState::Failed(msg) = session.wait(job) else {
            panic!("expected failure");
        };
        assert!(msg.contains("unknown raw field"));
        assert!(session.mydb().get("never").is_none());
    }

    #[test]
    fn mydb_quota_is_enforced() {
        let service = small_service("quota");
        // tiny quota: a whole-timestep low-threshold result cannot fit
        let session = BatchSession::open(service, 256);
        let job = session.submit(JobSpec::Threshold {
            query: ThresholdQuery::whole_timestep("velocity", DerivedField::CurlNorm, 0, 20.0),
            output_table: "big".into(),
        });
        let JobState::Failed(msg) = session.wait(job) else {
            panic!("expected quota failure");
        };
        assert!(msg.contains("quota"), "{msg}");
        assert_eq!(session.mydb().used_bytes(), 0);
    }

    #[test]
    fn mydb_tables_replace_and_drop() {
        let db = MyDb::new(10_000);
        let table = |n: usize| MyDbTable {
            provenance: "p".into(),
            points: (0..n as u32)
                .map(|i| ThresholdPoint::at(i, 0, 0, 1.0))
                .collect(),
        };
        db.put("t", table(100)).unwrap();
        let used = db.used_bytes();
        // replacing reclaims the old footprint before checking the quota
        db.put("t", table(400)).unwrap();
        assert!(db.used_bytes() > used);
        assert_eq!(db.list(), vec!["t"]);
        assert!(db.drop_table("t"));
        assert!(!db.drop_table("t"));
        assert_eq!(db.used_bytes(), 0);
        // quota check on a fresh insert
        assert!(db.put("huge", table(2000)).is_err());
    }
}
