//! Shared-scan types: one atom scan serving many queries.
//!
//! Concurrent threshold/PDF/top-k queries over the same
//! `(dataset, raw field, derived kernel, timestep)` read the same atoms.
//! A [`SharedScanRequest`] groups such queries so each node decodes every
//! atom once and evaluates all pending kernels against it. Results are
//! byte-identical to independent execution because every kernel is a
//! pointwise stencil: the value at a grid point depends only on its halo
//! neighbourhood, never on the extent of the scanned domain.

use std::sync::Arc;

use tdb_cache::ThresholdPoint;
use tdb_field::Histogram;
use tdb_kernels::DerivedField;
use tdb_zorder::Box3;

use crate::node::{NodeResult, QueryMode};
use crate::placement::{Chunk, Layout};

/// The per-query kernel applied to the shared scan's decoded atoms.
#[derive(Debug, Clone)]
pub enum ScanKernel {
    /// All points with the derived norm at or above the threshold.
    Threshold { threshold: f64 },
    /// Histogram of the derived norm (PDF queries).
    Pdf {
        origin: f64,
        width: f64,
        nbins: usize,
    },
    /// Unbounded point collection; the caller keeps the k best
    /// (equivalent to a threshold scan at `-inf`).
    TopK,
}

/// One query participating in a shared scan.
#[derive(Debug, Clone)]
pub struct ScanParticipant {
    /// The participant's own region; clipped per chunk during the scan.
    pub query_box: Box3,
    pub kernel: ScanKernel,
    /// Whether this participant probes and fills the node caches.
    pub use_cache: bool,
}

/// Which chunks each node scans, decided by the mediator from one
/// placement snapshot. Nodes never consult a layout of their own — the
/// assignment is the single source of placement truth for a scan, which
/// is what lets the mediator re-target a failed node's chunks at a
/// replica and keeps every scan of a batch on one consistent topology.
#[derive(Debug, Clone)]
pub struct ScanAssignment {
    /// The placement snapshot the assignment was computed from (also
    /// used for halo-atom routing during the scan).
    pub layout: Arc<Layout>,
    /// `chunks[node]` = chunks that node must scan.
    pub chunks: Vec<Vec<Chunk>>,
    /// Whether this is the canonical primary-ownership assignment.
    /// Semantic-cache entries hold exactly a node's *primary* points for
    /// the full query box, so cache probes and fills are only sound on
    /// the canonical assignment; failover re-scans must bypass them.
    pub canonical: bool,
}

impl ScanAssignment {
    /// The canonical assignment: every node scans its primary chunks.
    pub fn canonical(layout: &Arc<Layout>) -> Self {
        let chunks = (0..layout.num_nodes())
            .map(|node| layout.chunks_of_node(node))
            .collect();
        Self {
            layout: Arc::clone(layout),
            chunks,
            canonical: true,
        }
    }

    /// The chunks assigned to `node` (empty when out of range).
    pub fn chunks_of(&self, node: usize) -> &[Chunk] {
        self.chunks.get(node).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A group of queries sharing one atom scan. All participants agree on
/// everything that shapes the scan itself; only the region, kernel and
/// cache policy vary per participant.
#[derive(Debug, Clone)]
pub struct SharedScanRequest {
    pub dataset: String,
    pub raw_field: String,
    pub derived: DerivedField,
    pub timestep: u32,
    pub mode: QueryMode,
    /// Worker processes per node for the shared scan.
    pub procs: usize,
    pub participants: Vec<ScanParticipant>,
    /// Chunk-to-node assignment for this scan.
    pub assignment: Arc<ScanAssignment>,
}

impl SharedScanRequest {
    /// Cache key shared by every participant (same dataset, field and
    /// time-step by construction).
    pub fn cache_key(&self) -> tdb_cache::CacheInfoKey {
        tdb_cache::CacheInfoKey {
            dataset: self.dataset.clone(),
            field: format!("{}/{}", self.raw_field, self.derived.name()),
            timestep: self.timestep,
        }
    }
}

/// One participant's share of a node's shared-scan outcome.
#[derive(Debug)]
pub struct SharedOutcome {
    /// Timing, cache status and (for point kernels) the points found.
    pub result: NodeResult,
    /// `Some` for [`ScanKernel::Pdf`] participants.
    pub histogram: Option<Histogram>,
}

/// Convenience accessor for point-kernel outcomes.
impl SharedOutcome {
    /// Takes the points out of the outcome.
    pub fn take_points(&mut self) -> Vec<ThresholdPoint> {
        std::mem::take(&mut self.result.points)
    }
}
