//! Shared-scan types: one atom scan serving many queries.
//!
//! Concurrent threshold/PDF/top-k queries over the same
//! `(dataset, raw field, derived kernel, timestep)` read the same atoms.
//! A [`SharedScanRequest`] groups such queries so each node decodes every
//! atom once and evaluates all pending kernels against it. Results are
//! byte-identical to independent execution because every kernel is a
//! pointwise stencil: the value at a grid point depends only on its halo
//! neighbourhood, never on the extent of the scanned domain.

use tdb_cache::ThresholdPoint;
use tdb_field::Histogram;
use tdb_kernels::DerivedField;
use tdb_zorder::Box3;

use crate::node::{NodeResult, QueryMode};

/// The per-query kernel applied to the shared scan's decoded atoms.
#[derive(Debug, Clone)]
pub enum ScanKernel {
    /// All points with the derived norm at or above the threshold.
    Threshold { threshold: f64 },
    /// Histogram of the derived norm (PDF queries).
    Pdf {
        origin: f64,
        width: f64,
        nbins: usize,
    },
    /// Unbounded point collection; the caller keeps the k best
    /// (equivalent to a threshold scan at `-inf`).
    TopK,
}

/// One query participating in a shared scan.
#[derive(Debug, Clone)]
pub struct ScanParticipant {
    /// The participant's own region; clipped per chunk during the scan.
    pub query_box: Box3,
    pub kernel: ScanKernel,
    /// Whether this participant probes and fills the node caches.
    pub use_cache: bool,
}

/// A group of queries sharing one atom scan. All participants agree on
/// everything that shapes the scan itself; only the region, kernel and
/// cache policy vary per participant.
#[derive(Debug, Clone)]
pub struct SharedScanRequest {
    pub dataset: String,
    pub raw_field: String,
    pub derived: DerivedField,
    pub timestep: u32,
    pub mode: QueryMode,
    /// Worker processes per node for the shared scan.
    pub procs: usize,
    pub participants: Vec<ScanParticipant>,
}

impl SharedScanRequest {
    /// Cache key shared by every participant (same dataset, field and
    /// time-step by construction).
    pub fn cache_key(&self) -> tdb_cache::CacheInfoKey {
        tdb_cache::CacheInfoKey {
            dataset: self.dataset.clone(),
            field: format!("{}/{}", self.raw_field, self.derived.name()),
            timestep: self.timestep,
        }
    }
}

/// One participant's share of a node's shared-scan outcome.
#[derive(Debug)]
pub struct SharedOutcome {
    /// Timing, cache status and (for point kernels) the points found.
    pub result: NodeResult,
    /// `Some` for [`ScanKernel::Pdf`] participants.
    pub histogram: Option<Histogram>,
}

/// Convenience accessor for point-kernel outcomes.
impl SharedOutcome {
    /// Takes the points out of the outcome.
    pub fn take_points(&mut self) -> Vec<ThresholdPoint> {
        std::mem::take(&mut self.result.points)
    }
}
