//! Mediator-side scan scheduler: batches concurrently submitted queries
//! over the same scan key into one shared atom scan.
//!
//! The first query to arrive for a [`ScanGroupKey`] becomes the batch
//! *leader*: it holds the batch open until `max_batch` queries have
//! joined or the coalescing window expires, then runs the whole batch
//! through [`Cluster::run_batch`] and distributes the per-query answers.
//! A query that arrives after a batch closed opens the next one — a scan
//! never picks up participants mid-flight, which is what gives joiners
//! snapshot isolation from partially built cache entries.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use tdb_storage::{StorageError, StorageResult};

use crate::config::CoalesceConfig;
use crate::mediator::{BatchAnswer, BatchQuery, Cluster, ScanGroupKey};

type Delivery = SyncSender<StorageResult<BatchAnswer>>;

struct Batch {
    entries: Vec<(BatchQuery, Delivery)>,
}

/// Coalesces concurrent queries into shared-scan batches.
pub struct ScanScheduler {
    window: Duration,
    max_batch: usize,
    open: Mutex<HashMap<ScanGroupKey, Batch>>,
    joined: Condvar,
}

impl ScanScheduler {
    /// A scheduler with the given batching knobs.
    pub fn new(config: CoalesceConfig) -> Self {
        Self {
            window: Duration::from_millis(config.window_ms),
            max_batch: config.max_batch.max(1),
            open: Mutex::new(HashMap::new()),
            joined: Condvar::new(),
        }
    }

    /// Submits one query and blocks until its batch has run, returning
    /// this query's own answer.
    pub(crate) fn submit(
        &self,
        cluster: &Cluster,
        query: BatchQuery,
    ) -> StorageResult<BatchAnswer> {
        let key = ScanGroupKey::of(query.request());
        let (tx, rx) = sync_channel(1);
        let leader = {
            let mut open = self.open.lock();
            loop {
                match open.get_mut(&key) {
                    Some(batch) if batch.entries.len() < self.max_batch => {
                        batch.entries.push((query, tx));
                        self.joined.notify_all();
                        break false;
                    }
                    Some(_) => {
                        // the open batch is already full; its leader just
                        // hasn't woken to close it yet. Joining anyway
                        // would overshoot max_batch, so wait for the
                        // close and open (or join) the next batch.
                        self.joined.wait(&mut open);
                    }
                    None => {
                        open.insert(
                            key.clone(),
                            Batch {
                                entries: vec![(query, tx)],
                            },
                        );
                        break true;
                    }
                }
            }
        };
        if leader {
            let deadline = Instant::now() + self.window;
            let mut open = self.open.lock();
            while open.get(&key).map_or(0, |b| b.entries.len()) < self.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if self.joined.wait_for(&mut open, deadline - now).timed_out() {
                    break;
                }
            }
            // removing the batch closes it: later arrivals open the next
            // one. The notify wakes queries parked on a full batch —
            // without it a run at max_batch strands them forever.
            let closed = open.remove(&key);
            self.joined.notify_all();
            drop(open);
            let Some(batch) = closed else {
                return Err(StorageError::internal(
                    "scan-group batch vanished under its leader",
                ));
            };
            let n = batch.entries.len();
            tdb_obs::add("scheduler.batches", 1);
            if n > 1 {
                tdb_obs::add("scheduler.coalesced", (n - 1) as u64);
            }
            let (queries, txs): (Vec<_>, Vec<_>) = batch.entries.into_iter().unzip();
            for (answer, tx) in cluster.run_batch(queries).into_iter().zip(txs) {
                // a joiner that gave up (disconnected) must not fail the rest
                let _ = tx.send(answer);
            }
        }
        rx.recv().unwrap_or_else(|_| {
            Err(StorageError::internal(
                "batch leader dropped without delivering an answer",
            ))
        })
    }
}
