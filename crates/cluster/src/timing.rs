//! Query execution-time breakdown.
//!
//! The five phases of the paper's Fig. 9: cache lookup, I/O, compute,
//! mediator↔DB communication and mediator↔user communication. Times are
//! seconds; I/O and network phases come from device models, compute and
//! cache-lookup are measured.

/// Stacked execution-time breakdown of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    pub cache_lookup_s: f64,
    pub io_s: f64,
    pub compute_s: f64,
    pub mediator_db_s: f64,
    pub mediator_user_s: f64,
}

impl TimeBreakdown {
    /// Total stacked time.
    pub fn total_s(&self) -> f64 {
        self.cache_lookup_s + self.io_s + self.compute_s + self.mediator_db_s + self.mediator_user_s
    }

    /// Component-wise maximum — nodes execute in parallel, so the cluster
    /// phase time is the slowest node's phase time.
    pub fn max_merge(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            cache_lookup_s: self.cache_lookup_s.max(other.cache_lookup_s),
            io_s: self.io_s.max(other.io_s),
            compute_s: self.compute_s.max(other.compute_s),
            mediator_db_s: self.mediator_db_s.max(other.mediator_db_s),
            mediator_user_s: self.mediator_user_s.max(other.mediator_user_s),
        }
    }
}

impl std::fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:.3}s (cache {:.3}, io {:.3}, compute {:.3}, med-db {:.3}, med-user {:.3})",
            self.total_s(),
            self.cache_lookup_s,
            self.io_s,
            self.compute_s,
            self.mediator_db_s,
            self.mediator_user_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let b = TimeBreakdown {
            cache_lookup_s: 0.1,
            io_s: 1.0,
            compute_s: 2.0,
            mediator_db_s: 0.2,
            mediator_user_s: 0.3,
        };
        assert!((b.total_s() - 3.6).abs() < 1e-12);
        assert!(b.to_string().contains("3.600"));
    }

    #[test]
    fn max_merge_is_componentwise() {
        let a = TimeBreakdown {
            io_s: 1.0,
            compute_s: 0.5,
            ..Default::default()
        };
        let b = TimeBreakdown {
            io_s: 0.2,
            compute_s: 2.0,
            ..Default::default()
        };
        let m = a.max_merge(&b);
        assert_eq!(m.io_s, 1.0);
        assert_eq!(m.compute_s, 2.0);
    }
}
