//! Per-thread CPU time.
//!
//! Worker compute is measured with `CLOCK_THREAD_CPUTIME_ID` rather than
//! wall-clock: the simulated nodes all share this machine's cores, so a
//! wall clock would charge one node's chunks for another node's
//! scheduling pressure. Thread CPU time is what the chunk actually cost,
//! and the pipeline simulator turns it back into elapsed time at the
//! configured process count.

/// Seconds of CPU time consumed by the calling thread.
pub fn thread_cpu_time_s() -> f64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; the clock id is a constant.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// Measures the thread CPU time spent in `f`.
pub fn measure_cpu<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let before = thread_cpu_time_s();
    let out = f();
    (out, (thread_cpu_time_s() - before).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotone_and_counts_work() {
        let (_, t) = measure_cpu(|| {
            let mut acc = 0u64;
            for i in 0..5_000_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc)
        });
        assert!(t > 0.0, "busy loop must consume CPU time");
        assert!(t < 10.0);
    }

    #[test]
    fn sleeping_consumes_no_cpu_time() {
        let (_, t) = measure_cpu(|| std::thread::sleep(std::time::Duration::from_millis(30)));
        assert!(t < 0.01, "sleep charged {t}s of CPU");
    }
}
