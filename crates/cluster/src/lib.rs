//! Distributed data-parallel evaluation over a simulated database cluster.
//!
//! Mirrors the JHTDB runtime (paper Figs. 1 & 5): a mediator splits every
//! query by the spatial layout of the data, submits the parts
//! asynchronously to the database nodes that own them, and assembles the
//! results. Each node evaluates its part with `P` worker processes over a
//! queue of fixed-size *chunks* (cubes of atoms), requesting only a
//! kernel-half-width band of halo data from adjacent nodes.
//!
//! The cluster is simulated in-process: nodes are threaded runtimes with
//! private storage ([`tdb_storage`]) and a private semantic cache
//! ([`tdb_cache`]); disks and links are device models; per-query I/O and
//! network time are derived from the *actual* access pattern by a small
//! event-driven pipeline simulator ([`sim`]), while compute and cache
//! lookups are measured wall-clock (DESIGN.md §4).

pub mod assemble;
pub mod config;
pub mod cputime;
pub mod mediator;
pub mod node;
pub mod placement;
pub mod rebalance;
pub mod scan;
pub mod scheduler;
pub mod sim;
pub mod timing;
pub mod wire;

pub use config::{ClusterConfig, CoalesceConfig, ReadPolicy, ReplicationConfig};
pub use mediator::{
    BatchAnswer, BatchQuery, Cluster, ClusterBuilder, DegradedInfo, FailedNode, PdfResponse,
    ThresholdResponse, TopKResponse,
};
pub use node::{QueryMode, ThresholdSubquery};
pub use placement::{Chunk, Layout, PlacementMode};
pub use rebalance::RebalanceReport;
pub use scan::{ScanAssignment, ScanKernel, ScanParticipant, SharedOutcome, SharedScanRequest};
pub use sim::NodeTimeModel;
pub use tdb_storage::{CompressionConfig, CompressionMode};
pub use timing::TimeBreakdown;
