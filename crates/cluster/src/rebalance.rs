//! Node join/leave rebalancing (DESIGN.md §11).
//!
//! Rendezvous placement makes membership changes move the minimal set of
//! chunks: a join moves only ~k/(n+1) of all chunks — each onto the new
//! node, never between existing nodes — and a leave re-homes exactly the
//! chunks whose chains contained the departed node. A change builds the
//! gaining nodes' new tables against the *old* topology (every source,
//! including a voluntarily leaving node, is still readable), then
//! atomically installs the next [`Topology`] generation. In-flight scans
//! hold an `Arc` to the old generation and finish on it undisturbed —
//! the shared-scan scheduler stays snapshot-consistent across the move.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use tdb_storage::device::IoSession;
use tdb_storage::{BlockCache, StorageError, StorageResult, Table, TableBuilder};

use crate::mediator::{split_zones, Cluster, NodeDevices, Topology};
use crate::node::NodeRuntime;
use crate::placement::{Layout, PlacementMode};

/// What a membership change moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The node that joined or left.
    pub node: usize,
    /// Chunks that changed nodes.
    pub chunks_moved: usize,
    /// Atom records copied between nodes (all fields × time-steps).
    pub atoms_copied: u64,
    /// The topology generation after the change.
    pub epoch: u64,
    /// Live nodes after the change.
    pub live_nodes: usize,
}

impl Cluster {
    /// Brings a pre-provisioned spare node into the cluster
    /// ([`crate::config::ReplicationConfig::spare_nodes`]), re-deriving
    /// chains over the grown node set and bulk-copying exactly the chunks
    /// the new node now stores. Requires rendezvous placement; existing
    /// nodes neither gain nor exchange chunks.
    pub fn join_node(&self) -> StorageResult<RebalanceReport> {
        let mut state = self.rebalance.lock();
        let old = self.topology_snapshot();
        if old.layout.mode() != PlacementMode::Rendezvous {
            return Err(StorageError::internal(
                "node join requires rendezvous placement (ReplicationConfig::rendezvous)",
            ));
        }
        let devices = state.spares.pop().ok_or_else(|| {
            StorageError::internal(
                "no spare node slots configured (ReplicationConfig::spare_nodes)",
            )
        })?;
        let node = state.node_devices.len();
        state.node_devices.push(devices.clone());
        let mut ids: Vec<usize> = old.layout.node_ids().to_vec();
        ids.push(node);
        let new_layout = Arc::new(Layout::over_nodes(
            self.grid.dims(),
            self.config.chunk_atoms,
            node + 1,
            &ids,
            self.config.replication.k,
            PlacementMode::Rendezvous,
        ));
        let epoch = old.epoch + 1;
        let mut next_file_id = state.next_file_id;
        let (runtime, gained, copied) =
            self.rebuild_node(&old, &new_layout, node, &devices, epoch, &mut next_file_id)?;
        state.next_file_id = next_file_id;
        let mut nodes = old.nodes.clone();
        nodes.resize(node + 1, None);
        if let Some(slot) = nodes.get_mut(node) {
            *slot = Some(Arc::new(runtime));
        }
        let live_nodes = nodes.iter().flatten().count();
        *self.topology.write() = Arc::new(Topology {
            layout: new_layout,
            nodes,
            epoch,
        });
        // chunk primaries changed hands, and semantic-cache entries hold
        // exactly the old canonical per-node point sets — drop them all
        self.clear_caches();
        tdb_obs::add("replication.rebalance.joins", 1);
        tdb_obs::add("replication.rebalance.chunks_moved", gained as u64);
        tdb_obs::add("replication.rebalance.atoms_copied", copied);
        Ok(RebalanceReport {
            node,
            chunks_moved: gained,
            atoms_copied: copied,
            epoch,
            live_nodes,
        })
    }

    /// Retires a node: survivors whose chains must absorb the departed
    /// node's chunks rebuild their tables (copying only the gained
    /// chunks' atoms — the rest is a local re-pack), then the shrunken
    /// topology is installed and the node's runtime dropped.
    pub fn leave_node(&self, node: usize) -> StorageResult<RebalanceReport> {
        let mut state = self.rebalance.lock();
        let old = self.topology_snapshot();
        if old.layout.mode() != PlacementMode::Rendezvous {
            return Err(StorageError::internal(
                "node leave requires rendezvous placement (ReplicationConfig::rendezvous)",
            ));
        }
        if !old.nodes.get(node).is_some_and(Option::is_some) {
            return Err(StorageError::internal(format!(
                "node {node} is not a live member of the cluster"
            )));
        }
        let survivors: Vec<usize> = old
            .layout
            .node_ids()
            .iter()
            .copied()
            .filter(|&n| n != node)
            .collect();
        if survivors.len() < self.config.replication.k {
            return Err(StorageError::internal(format!(
                "retiring node {node} would leave {} nodes, fewer than replication factor {}",
                survivors.len(),
                self.config.replication.k
            )));
        }
        let new_layout = Arc::new(Layout::over_nodes(
            self.grid.dims(),
            self.config.chunk_atoms,
            old.layout.num_nodes(),
            &survivors,
            self.config.replication.k,
            PlacementMode::Rendezvous,
        ));
        let epoch = old.epoch + 1;
        let mut next_file_id = state.next_file_id;
        let mut nodes = old.nodes.clone();
        let mut chunks_moved = 0usize;
        let mut atoms_copied = 0u64;
        for &g in &survivors {
            let gains = (0..new_layout.chunks().len()).any(|c| {
                new_layout.replicas_of_chunk(c).contains(&g)
                    && !old.layout.replicas_of_chunk(c).contains(&g)
            });
            if !gains {
                continue;
            }
            let devices = state.node_devices.get(g).cloned().ok_or_else(|| {
                StorageError::internal(format!("no device record for surviving node {g}"))
            })?;
            let (runtime, gained, copied) =
                self.rebuild_node(&old, &new_layout, g, &devices, epoch, &mut next_file_id)?;
            chunks_moved += gained;
            atoms_copied += copied;
            if let Some(slot) = nodes.get_mut(g) {
                *slot = Some(Arc::new(runtime));
            }
        }
        state.next_file_id = next_file_id;
        if let Some(slot) = nodes.get_mut(node) {
            *slot = None;
        }
        let live_nodes = survivors.len();
        *self.topology.write() = Arc::new(Topology {
            layout: new_layout,
            nodes,
            epoch,
        });
        self.clear_caches();
        tdb_obs::add("replication.rebalance.leaves", 1);
        tdb_obs::add("replication.rebalance.chunks_moved", chunks_moved as u64);
        tdb_obs::add("replication.rebalance.atoms_copied", atoms_copied);
        Ok(RebalanceReport {
            node,
            chunks_moved,
            atoms_copied,
            epoch,
            live_nodes,
        })
    }

    /// Builds `node`'s tables for the new layout in an epoch-suffixed
    /// directory, sourcing every chunk from the old topology: chunks the
    /// node already stored come from its own old tables (a local re-pack,
    /// not counted), gained chunks from the first live member of their
    /// old chain (counted as copied). Returns the fresh runtime, the
    /// gained-chunk count and the records copied.
    fn rebuild_node(
        &self,
        old: &Topology,
        new_layout: &Arc<Layout>,
        node: usize,
        devices: &NodeDevices,
        epoch: u64,
        next_file_id: &mut u64,
    ) -> StorageResult<(NodeRuntime, usize, u64)> {
        let stored_new: Vec<usize> = (0..new_layout.chunks().len())
            .filter(|&c| new_layout.replicas_of_chunk(c).contains(&node))
            .collect();
        let stored_old: HashSet<usize> = (0..old.layout.chunks().len())
            .filter(|&c| old.layout.replicas_of_chunk(c).contains(&node))
            .collect();
        let own_old = old.nodes.get(node).and_then(Option::as_ref);
        let gained = stored_new
            .iter()
            .filter(|c| !stored_old.contains(c))
            .count();
        let node_dir = self.dir.join(format!("node{node}_e{epoch}"));
        let zones = split_zones(
            &new_layout.stored_zranges_of_node(node),
            self.config.arrays_per_node,
        );
        let mut builders: Vec<(String, TableBuilder)> = Vec::with_capacity(self.fields.len());
        for (name, ncomp) in &self.fields {
            builders.push((
                name.clone(),
                TableBuilder::new(
                    &node_dir,
                    name,
                    *ncomp,
                    zones.clone(),
                    &devices.arrays,
                    self.config.compression,
                )?,
            ));
        }
        let mut copied = 0u64;
        let mut session = IoSession::new();
        for &timestep in &self.timesteps {
            for (name, builder) in &mut builders {
                let mut records = Vec::new();
                // layout.chunks() is z-ordered, so iterating stored chunks
                // in index order appends records in ascending key order
                for &c in &stored_new {
                    let local = stored_old.contains(&c);
                    let source = if local {
                        own_old
                    } else {
                        old.layout
                            .replicas_of_chunk(c)
                            .iter()
                            .find_map(|&r| old.nodes.get(r).and_then(Option::as_ref))
                    };
                    let Some(source) = source else {
                        return Err(StorageError::internal(format!(
                            "no live source for chunk {c} while rebuilding node {node}"
                        )));
                    };
                    let Some(chunk) = new_layout.chunks().get(c) else {
                        return Err(StorageError::internal(format!(
                            "chunk index {c} out of range rebuilding node {node}"
                        )));
                    };
                    let zr = chunk.zrange();
                    let codes: Vec<u64> = (zr.start..=zr.end).collect();
                    let recs = source.fetch_atoms(name, timestep, &codes, &mut session)?;
                    if recs.len() != codes.len() {
                        return Err(StorageError::MissingData {
                            detail: format!(
                                "chunk {c} source returned {} of {} atoms rebuilding node {node}",
                                recs.len(),
                                codes.len()
                            ),
                        });
                    }
                    if !local {
                        copied += recs.len() as u64;
                    }
                    records.extend(recs);
                }
                builder.append_timestep(timestep, records)?;
            }
        }
        let pool = Arc::new(BlockCache::with_policy(
            self.config.bufferpool_bytes,
            self.config.eviction,
            self.config.faults.clone(),
        ));
        let mut tables: HashMap<String, Table> = HashMap::new();
        for (name, builder) in builders {
            let table = builder.finish(Arc::clone(&pool), *next_file_id)?;
            *next_file_id += 1024;
            tables.insert(name, table);
        }
        let runtime = NodeRuntime::new(
            node,
            tables,
            pool,
            devices.ssd,
            devices.controller,
            self.config.compute_scale,
            self.config.synthetic_compute_s_per_point,
            self.config.cache_budget_bytes,
            Arc::clone(&self.grid),
            Arc::clone(&self.scheme),
            Arc::clone(&self.registry),
            self.lan,
            self.config.faults.clone(),
        );
        Ok((runtime, gained, copied))
    }
}
