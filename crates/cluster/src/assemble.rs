//! Assembling padded computation domains from atom records.
//!
//! "The data are read into memory and the particular field requested is
//! computed at each of the locations on the grid" (paper §4). A chunk's
//! computation domain is its grid box clipped to the query box, dilated by
//! the kernel half-width; this module figures out which atoms cover that
//! dilated box (wrapping on periodic axes) and scatters their payloads
//! into a [`PaddedVector`].

use std::collections::HashMap;

use tdb_field::PaddedVector;
use tdb_storage::{AtomRecord, StorageError, StorageResult};
use tdb_zorder::{AtomCoord, Box3, ATOM_WIDTH};

/// Atoms (by zindex) covering `domain` dilated by `halo`, with periodic
/// wrapping (or clamping on wall axes). Sorted and unique.
pub fn needed_atoms(
    domain: &Box3,
    halo: usize,
    dims: (usize, usize, usize),
    periodic: [bool; 3],
) -> Vec<AtomCoord> {
    let w = ATOM_WIDTH as i64;
    let dims = [dims.0 as i64, dims.1 as i64, dims.2 as i64];
    let mut axis_atoms: [Vec<i64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (((axis, &n), &per), (&lo, &hi)) in axis_atoms
        .iter_mut()
        .zip(&dims)
        .zip(&periodic)
        .zip(domain.lo.iter().zip(&domain.hi))
    {
        let lo = i64::from(lo) - halo as i64;
        let hi = i64::from(hi) + halo as i64;
        let mut set = std::collections::BTreeSet::new();
        let mut g = lo;
        while g <= hi {
            let wrapped = if per {
                g.rem_euclid(n)
            } else {
                g.clamp(0, n - 1)
            };
            set.insert(wrapped / w);
            // jump to the start of the next atom
            g = (g.div_euclid(w) + 1) * w;
        }
        *axis = set.into_iter().collect();
    }
    let [xs, ys, zs] = &axis_atoms;
    let mut out = Vec::new();
    for &az in zs {
        for &ay in ys {
            for &ax in xs {
                out.push(AtomCoord::new(ax as u32, ay as u32, az as u32));
            }
        }
    }
    out.sort_by_key(AtomCoord::zindex);
    out.dedup();
    out
}

/// Builds the padded input for a kernel over `domain` from fetched atoms.
///
/// `atoms` maps atom zindex → record; every atom returned by
/// [`needed_atoms`] must be present. Scalar fields (ncomp = 1) land in
/// component 0 of the padded vector.
///
/// A missing atom is a fetch-layer failure reported as a typed
/// [`StorageError`], so it travels the proto error channel instead of
/// killing the worker thread.
pub fn assemble_padded(
    domain: &Box3,
    halo: usize,
    dims: (usize, usize, usize),
    periodic: [bool; 3],
    atoms: &HashMap<u64, AtomRecord>,
) -> StorageResult<PaddedVector<3>> {
    let [ex, ey, ez] = domain.extent();
    let (ex, ey, ez) = (ex as usize, ey as usize, ez as usize);
    let mut padded = PaddedVector::zeros(ex, ey, ez, halo);
    let n = [dims.0 as i64, dims.1 as i64, dims.2 as i64];
    let h = halo as isize;
    let mut cached: Option<(AtomCoord, &AtomRecord)> = None;
    for z in -h..(ez as isize + h) {
        for y in -h..(ey as isize + h) {
            for x in -h..(ex as isize + h) {
                let mut g = [0u32; 3];
                for (((slot, local), &lo), (&n, &per)) in g
                    .iter_mut()
                    .zip([x, y, z])
                    .zip(&domain.lo)
                    .zip(n.iter().zip(&periodic))
                {
                    let raw = i64::from(lo) + local as i64;
                    *slot = if per {
                        raw.rem_euclid(n) as u32
                    } else {
                        raw.clamp(0, n - 1) as u32
                    };
                }
                let [gx, gy, gz] = g;
                let atom = AtomCoord::containing(gx, gy, gz);
                let rec = match cached {
                    Some((a, r)) if a == atom => r,
                    _ => {
                        let r = atoms.get(&atom.zindex()).ok_or_else(|| {
                            StorageError::internal(format!(
                                "atom {atom:?} missing from the fetch result"
                            ))
                        })?;
                        cached = Some((atom, r));
                        r
                    }
                };
                let off = atom.point_offset(gx, gy, gz).ok_or_else(|| {
                    StorageError::internal(format!(
                        "grid point ({gx},{gy},{gz}) outside its containing atom {atom:?}"
                    ))
                })?;
                for c in 0..usize::from(rec.ncomp).min(3) {
                    // tdb-lint: allow(panic-path) — off < ATOM_POINTS by point_offset's contract
                    padded.comp_mut(c).set(x, y, z, rec.plane(c)[off]);
                }
            }
        }
    }
    Ok(padded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_storage::AtomKey;
    use tdb_zorder::ATOM_POINTS;

    /// Builds an atom map over a whole grid where component `c` at global
    /// point (x,y,z) stores `c*1e6 + x + 10y + 100z`.
    fn atom_map(dims: (usize, usize, usize), ncomp: u8) -> HashMap<u64, AtomRecord> {
        let mut out = HashMap::new();
        for az in 0..(dims.2 / ATOM_WIDTH) as u32 {
            for ay in 0..(dims.1 / ATOM_WIDTH) as u32 {
                for ax in 0..(dims.0 / ATOM_WIDTH) as u32 {
                    let atom = AtomCoord::new(ax, ay, az);
                    let mut data = vec![0.0f32; usize::from(ncomp) * ATOM_POINTS];
                    for (gx, gy, gz) in atom.grid_points() {
                        let off = atom.point_offset(gx, gy, gz).unwrap();
                        for c in 0..usize::from(ncomp) {
                            data[c * ATOM_POINTS + off] =
                                (c as f32) * 1e6 + (gx + 10 * gy + 100 * gz) as f32;
                        }
                    }
                    out.insert(
                        atom.zindex(),
                        AtomRecord::new(AtomKey::new(0, atom.zindex()), ncomp, data).unwrap(),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn needed_atoms_interior_no_halo() {
        let domain = Box3::new([8, 8, 8], [15, 15, 15]);
        let atoms = needed_atoms(&domain, 0, (32, 32, 32), [true; 3]);
        assert_eq!(atoms, vec![AtomCoord::new(1, 1, 1)]);
    }

    #[test]
    fn needed_atoms_with_halo_spans_neighbours() {
        let domain = Box3::new([8, 8, 8], [15, 15, 15]);
        let atoms = needed_atoms(&domain, 2, (32, 32, 32), [true; 3]);
        assert_eq!(atoms.len(), 27, "3x3x3 atom neighbourhood");
    }

    #[test]
    fn needed_atoms_wraps_periodically() {
        let domain = Box3::new([0, 0, 0], [7, 7, 7]);
        let atoms = needed_atoms(&domain, 1, (32, 32, 32), [true; 3]);
        // neighbours at -1 wrap to lattice coordinate 3
        assert!(atoms.contains(&AtomCoord::new(3, 0, 0)));
        assert!(atoms.contains(&AtomCoord::new(3, 3, 3)));
        assert_eq!(atoms.len(), 27);
    }

    #[test]
    fn needed_atoms_clamps_on_walls() {
        let domain = Box3::new([0, 0, 0], [7, 7, 7]);
        let atoms = needed_atoms(&domain, 1, (32, 32, 32), [true, false, true]);
        // y neighbours clamp to the wall: only y-lattice 0 and 1 appear
        assert!(atoms.iter().all(|a| a.y <= 1));
        assert_eq!(atoms.len(), 3 * 2 * 3);
    }

    #[test]
    fn assemble_matches_source_values() {
        let dims = (32, 32, 32);
        let atoms = atom_map(dims, 3);
        let domain = Box3::new([8, 16, 8], [15, 23, 15]);
        let p = assemble_padded(&domain, 2, dims, [true; 3], &atoms).unwrap();
        // interior point
        let v = p.at(0, 0, 0);
        assert_eq!(v[0], (8 + 160 + 800) as f32);
        assert_eq!(v[1], 1e6 + 968.0);
        // halo point wraps/reads neighbour atoms
        let v = p.at(-2, -1, 7);
        assert_eq!(v[0], (6 + 10 * 15 + 100 * 15) as f32);
    }

    #[test]
    fn assemble_periodic_wrap_at_edge() {
        let dims = (16, 16, 16);
        let atoms = atom_map(dims, 1);
        let domain = Box3::new([8, 8, 8], [15, 15, 15]);
        let p = assemble_padded(&domain, 2, dims, [true; 3], &atoms).unwrap();
        // ghost at local x = 8 (global 16) wraps to x = 0
        assert_eq!(p.at(8, 0, 0)[0], (80 + 800) as f32);
        // scalar input: components 1, 2 stay zero
        assert_eq!(p.at(0, 0, 0)[1], 0.0);
        assert_eq!(p.at(0, 0, 0)[2], 0.0);
    }

    #[test]
    fn assemble_errors_on_missing_atom() {
        let dims = (16, 16, 16);
        let mut atoms = atom_map(dims, 1);
        atoms.remove(&AtomCoord::new(0, 0, 0).zindex());
        let domain = Box3::new([0, 0, 0], [7, 7, 7]);
        let err = assemble_padded(&domain, 0, dims, [true; 3], &atoms)
            .expect_err("missing atom must be a typed error");
        assert!(
            err.to_string().contains("missing from the fetch result"),
            "{err}"
        );
    }
}
