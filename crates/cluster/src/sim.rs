//! Event-driven pipeline simulator for per-node execution time.
//!
//! A node evaluates its chunk queue with `p` worker processes. Each chunk
//! first occupies its disk devices (each device serves one request at a
//! time — the node's data "reside ... on the same set of disks", paper
//! §5.3), then occupies its worker for the measured compute time. With one
//! worker the node time degenerates to `io + compute`; with many workers
//! compute overlaps other chunks' I/O and the node time approaches the
//! disk-schedule makespan — exactly the scaling behaviour of Figs. 7(a)
//! and 8.

use std::collections::HashMap;

use tdb_storage::device::DeviceId;

/// The simulated cost of one chunk of work.
#[derive(Debug, Clone, Default)]
pub struct ChunkCost {
    /// Time this chunk occupies each disk device (modelled).
    pub io: Vec<(DeviceId, f64)>,
    /// Measured kernel + threshold-scan time.
    pub compute_s: f64,
}

/// Simulates `p` workers draining `chunks` in order and returns
/// `(total_s, io_bound_s)` where `io_bound_s` is the pure disk-schedule
/// makespan (the "I/O only" time of Fig. 8).
pub fn pipeline_makespan(chunks: &[ChunkCost], p: usize) -> (f64, f64) {
    assert!(p >= 1);
    let mut workers = vec![0.0f64; p];
    let mut devices: HashMap<DeviceId, f64> = HashMap::new();
    let mut total = 0.0f64;
    for chunk in chunks {
        // earliest-available worker picks up the chunk
        let Some((widx, &wfree)) = workers.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1))
        else {
            continue; // p == 0: nothing can be scheduled
        };
        let mut t = wfree;
        // the chunk's reads queue on each device in turn
        for &(dev, io_s) in &chunk.io {
            let dfree = devices.entry(dev).or_insert(0.0);
            let start = t.max(*dfree);
            let end = start + io_s;
            *dfree = end;
            t = end;
        }
        let end = t + chunk.compute_s;
        if let Some(w) = workers.get_mut(widx) {
            *w = end;
        }
        total = total.max(end);
    }
    // pure-I/O schedule: per-device serial service, devices in parallel
    let mut io_per_dev: HashMap<DeviceId, f64> = HashMap::new();
    for chunk in chunks {
        for &(dev, io_s) in &chunk.io {
            *io_per_dev.entry(dev).or_insert(0.0) += io_s;
        }
    }
    let io_bound = io_per_dev.values().fold(0.0f64, |m, &v| m.max(v));
    (total, io_bound)
}

/// Closed-form serial-phase node-time model.
///
/// The paper's per-process evaluation is synchronous: read a region, then
/// compute over it, so a node's time is `io(p) + compute(p)` with
///
/// * `io(p) = max(io_serial / p, io_floor)` — one process reads strictly
///   serially; more processes drive the partitioned files on different
///   arrays in parallel until the slowest shared resource (an array, the
///   node's disk controller, or the LAN) becomes the floor — "the time to
///   perform I/O does not \[scale\] as the data ... reside on the same set
///   of disks" (§5.3);
/// * `compute(p) = max(C/p, longest chunk)` — embarrassingly parallel
///   kernel work, limited only by chunk granularity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeTimeModel {
    /// Strictly serial I/O schedule (one process).
    pub io_serial: f64,
    /// Per-device makespan floor (all devices driven concurrently).
    pub io_floor: f64,
    /// Total kernel CPU time across chunks.
    pub compute_total: f64,
    /// Longest single-chunk kernel time (parallel granularity limit).
    pub compute_max_chunk: f64,
}

impl NodeTimeModel {
    /// Aggregates per-chunk costs into the model. Pass-through devices
    /// (controllers, network links) never join the serial schedule — a
    /// serial process already waits on the end device of each request —
    /// but they do bound parallel throughput (the floor).
    pub fn from_costs(chunks: &[ChunkCost], registry: &tdb_storage::DeviceRegistry) -> Self {
        let mut per_device: HashMap<DeviceId, f64> = HashMap::new();
        let mut compute_total = 0.0;
        let mut compute_max_chunk = 0.0f64;
        for c in chunks {
            for &(dev, t) in &c.io {
                *per_device.entry(dev).or_insert(0.0) += t;
            }
            compute_total += c.compute_s;
            compute_max_chunk = compute_max_chunk.max(c.compute_s);
        }
        let io_serial = per_device
            .iter()
            .filter(|(dev, _)| !registry.profile(**dev).pass_through)
            .map(|(_, &t)| t)
            .sum();
        let io_floor = per_device.values().fold(0.0f64, |m, &v| m.max(v));
        Self {
            io_serial,
            io_floor,
            compute_total,
            compute_max_chunk,
        }
    }

    /// Modelled I/O phase time with `p` processes.
    pub fn io_s(&self, p: usize) -> f64 {
        (self.io_serial / p.max(1) as f64).max(self.io_floor)
    }

    /// Modelled compute phase time with `p` processes.
    pub fn compute_s(&self, p: usize) -> f64 {
        (self.compute_total / p.max(1) as f64).max(self.compute_max_chunk)
    }

    /// Node execution time (serial phases).
    pub fn total_s(&self, p: usize) -> f64 {
        self.io_s(p) + self.compute_s(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn uniform(n: usize, io: f64, compute: f64, ndev: u32) -> Vec<ChunkCost> {
        (0..n)
            .map(|i| ChunkCost {
                io: vec![(dev(i as u32 % ndev), io)],
                compute_s: compute,
            })
            .collect()
    }

    #[test]
    fn single_worker_serialises_everything() {
        let chunks = uniform(4, 1.0, 1.0, 1);
        let (total, io) = pipeline_makespan(&chunks, 1);
        assert!((total - 8.0).abs() < 1e-9, "io+compute per chunk, serial");
        assert!((io - 4.0).abs() < 1e-9);
    }

    #[test]
    fn many_workers_hide_compute_behind_io() {
        let chunks = uniform(8, 1.0, 1.0, 1);
        let (t1, io) = pipeline_makespan(&chunks, 1);
        let (t8, _) = pipeline_makespan(&chunks, 8);
        assert!((t1 - 16.0).abs() < 1e-9);
        // one disk: total ≥ io makespan; compute of last chunk trails
        assert!((io - 8.0).abs() < 1e-9);
        assert!((t8 - 9.0).abs() < 1e-9, "got {t8}");
    }

    #[test]
    fn speedup_diminishes_like_fig7a() {
        // io ≈ compute per chunk (Fig. 8: I/O is half the total) with
        // limited device parallelism, the paper's regime
        let chunks = uniform(32, 0.5, 0.5, 2);
        let (t1, _) = pipeline_makespan(&chunks, 1);
        let (t2, _) = pipeline_makespan(&chunks, 2);
        let (t4, _) = pipeline_makespan(&chunks, 4);
        let (t8, _) = pipeline_makespan(&chunks, 8);
        let s2 = t1 / t2;
        let s4 = t1 / t4;
        let s8 = t1 / t8;
        assert!(s2 > 1.6 && s2 <= 2.05, "2-proc speedup {s2}");
        assert!(s4 > s2, "4-proc speedup {s4} should beat {s2}");
        assert!(s8 - s4 < 1.0, "8-proc gain should be marginal: {s4} → {s8}");
        // with enough workers the node is I/O bound: total ≈ io-only time
        let (_, io_only) = pipeline_makespan(&chunks, 1);
        assert!(t8 <= io_only * 1.4, "t8 {t8} vs io {io_only}");
    }

    #[test]
    fn compute_heavy_work_scales_nearly_linearly() {
        let chunks = uniform(32, 0.01, 1.0, 4);
        let (t1, _) = pipeline_makespan(&chunks, 1);
        let (t4, _) = pipeline_makespan(&chunks, 4);
        assert!(t1 / t4 > 3.5, "speedup {}", t1 / t4);
    }

    #[test]
    fn multiple_devices_serve_in_parallel() {
        // same total I/O split over 4 devices → 4× shorter io bound
        let one_dev = uniform(16, 1.0, 0.0, 1);
        let four_dev = uniform(16, 1.0, 0.0, 4);
        let (_, io1) = pipeline_makespan(&one_dev, 4);
        let (_, io4) = pipeline_makespan(&four_dev, 4);
        assert!((io1 - 16.0).abs() < 1e-9);
        assert!((io4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_queue_is_zero() {
        assert_eq!(pipeline_makespan(&[], 4), (0.0, 0.0));
    }

    /// Registry with 4 arrays (ids 0-3) and one pass-through controller.
    fn paper_registry() -> tdb_storage::DeviceRegistry {
        let mut reg = tdb_storage::DeviceRegistry::new();
        for _ in 0..4 {
            reg.register(tdb_storage::DeviceProfile::hdd_array());
        }
        reg.register(tdb_storage::DeviceProfile::node_controller());
        reg
    }

    /// The paper-regime check for the closed-form model: 4 arrays plus a
    /// pass-through controller capping aggregate I/O at 2x, io ≈ compute
    /// at p = 1.
    #[test]
    fn node_time_model_reproduces_paper_shapes() {
        let reg = paper_registry();
        let ctrl = dev(4);
        let chunks: Vec<ChunkCost> = (0..32)
            .map(|i| ChunkCost {
                // per-chunk read: its array + the shared controller at
                // half the per-array service time x4 arrays
                io: vec![(dev(i % 4), 1.0), (ctrl, 0.5)],
                compute_s: 1.0,
            })
            .collect();
        let m = NodeTimeModel::from_costs(&chunks, &reg);
        // controller is pass-through: excluded from the serial schedule
        assert!((m.io_serial - 32.0).abs() < 1e-9);
        assert!((m.io_floor - 16.0).abs() < 1e-9); // controller binds
        assert!((m.compute_total - 32.0).abs() < 1e-9);
        let t1 = m.total_s(1); // 32 + 32 = 64
        let t2 = m.total_s(2); // 16 + 16 = 32  → 2.0x
        let t4 = m.total_s(4); // 16 +  8 = 24  → 2.67x
        let t8 = m.total_s(8); // 16 +  4 = 20  → 3.2x
        let (s2, s4, s8) = (t1 / t2, t1 / t4, t1 / t8);
        assert!((s2 - 2.0).abs() < 0.05, "s2 = {s2}");
        assert!((s4 - 2.67).abs() < 0.05, "s4 = {s4} (paper: 2.6)");
        assert!(s8 - s4 < 1.0, "gain 4→8 must be marginal: {s4} → {s8}");
        // Fig 8: io-only stops improving once the controller binds
        assert_eq!(m.io_s(4), m.io_s(8));
        assert_eq!(m.io_s(2), m.io_s(8));
        // total at 4-8 procs is in the ballpark of io-only at 1 proc
        assert!(t4 < m.io_s(1) && t4 > 0.5 * m.io_s(1));
    }

    #[test]
    fn node_time_model_compute_granularity_limit() {
        let reg = paper_registry();
        let chunks = vec![
            ChunkCost {
                io: vec![],
                compute_s: 4.0,
            },
            ChunkCost {
                io: vec![],
                compute_s: 1.0,
            },
            ChunkCost {
                io: vec![],
                compute_s: 1.0,
            },
        ];
        let m = NodeTimeModel::from_costs(&chunks, &reg);
        // cannot beat the longest chunk no matter how many processes
        assert_eq!(m.compute_s(64), 4.0);
        assert_eq!(m.compute_s(1), 6.0);
        assert_eq!(m.io_s(1), 0.0);
    }
}
