//! Spatial data placement.
//!
//! "We use the Morton z-order space-filling curve to distribute the data
//! across nodes and databases" (paper §2). The atom lattice is tiled into
//! cubic *chunks* (octree-aligned, so each chunk is one contiguous Morton
//! range); chunks are ordered along the z-curve and split into contiguous
//! runs, one per node. A chunk is both the placement unit and the unit of
//! work a node's worker processes pull from the queue.

use tdb_zorder::{encode3, AtomCoord, Box3, ZRange, ATOM_WIDTH};

/// One cubic tile of the atom lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk-lattice coordinates.
    pub cx: u32,
    pub cy: u32,
    pub cz: u32,
    /// Edge length in atoms (power of two).
    pub atoms: u32,
}

impl Chunk {
    /// Contiguous Morton range of this chunk's atoms.
    pub fn zrange(&self) -> ZRange {
        let shift = 3 * self.atoms.trailing_zeros();
        let base = encode3(self.cx, self.cy, self.cz) << shift;
        ZRange::new(base, base + (u64::from(self.atoms).pow(3) - 1))
    }

    /// Grid-space box covered by this chunk.
    pub fn grid_box(&self) -> Box3 {
        let w = self.atoms * ATOM_WIDTH as u32;
        Box3::new(
            [self.cx * w, self.cy * w, self.cz * w],
            [
                (self.cx + 1) * w - 1,
                (self.cy + 1) * w - 1,
                (self.cz + 1) * w - 1,
            ],
        )
    }
}

/// The cluster-wide placement map.
#[derive(Debug, Clone)]
pub struct Layout {
    dims: (usize, usize, usize),
    chunk_atoms: u32,
    /// Chunks sorted by z-order.
    chunks: Vec<Chunk>,
    /// `chunk_node[i]` = node owning `chunks[i]`.
    chunk_node: Vec<usize>,
    num_nodes: usize,
}

impl Layout {
    /// Tiles the grid and assigns contiguous z-order runs of chunks to
    /// `num_nodes` nodes.
    pub fn new(dims: (usize, usize, usize), chunk_atoms: u32, num_nodes: usize) -> Self {
        let w = (8 * chunk_atoms) as usize;
        assert!(
            dims.0 % w == 0 && dims.1 % w == 0 && dims.2 % w == 0,
            "grid {dims:?} not tileable by chunk width {w}"
        );
        let (ncx, ncy, ncz) = (dims.0 / w, dims.1 / w, dims.2 / w);
        let mut chunks = Vec::with_capacity(ncx * ncy * ncz);
        for cz in 0..ncz as u32 {
            for cy in 0..ncy as u32 {
                for cx in 0..ncx as u32 {
                    chunks.push(Chunk {
                        cx,
                        cy,
                        cz,
                        atoms: chunk_atoms,
                    });
                }
            }
        }
        chunks.sort_by_key(|c| c.zrange().start);
        let n = chunks.len();
        assert!(
            n >= num_nodes,
            "{n} chunks cannot be spread over {num_nodes} nodes"
        );
        let chunk_node = (0..n).map(|i| i * num_nodes / n).collect();
        Self {
            dims,
            chunk_atoms,
            chunks,
            chunk_node,
            num_nodes,
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All chunks in z-order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Chunks owned by `node`, in z-order.
    pub fn chunks_of_node(&self, node: usize) -> Vec<Chunk> {
        self.chunks
            .iter()
            .zip(&self.chunk_node)
            .filter(|(_, &n)| n == node)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Merged contiguous z-ranges of a node's atoms (its table partitions
    /// are built over these).
    pub fn zranges_of_node(&self, node: usize) -> Vec<ZRange> {
        let mut out: Vec<ZRange> = Vec::new();
        for c in self.chunks_of_node(node) {
            let r = c.zrange();
            match out.last_mut() {
                Some(last) if last.end + 1 == r.start => last.end = r.end,
                _ => out.push(r),
            }
        }
        out
    }

    /// Node owning the atom.
    pub fn node_of_atom(&self, atom: AtomCoord) -> usize {
        let ca = self.chunk_atoms;
        let chunk_code = encode3(atom.x / ca, atom.y / ca, atom.z / ca);
        let shift = 3 * ca.trailing_zeros();
        let code = (chunk_code << shift) | (atom.zindex() & ((1u64 << shift) - 1));
        // binary search the chunk whose range contains the code
        let idx = self.chunks.partition_point(|c| c.zrange().end < code);
        debug_assert!(self.chunks[idx].zrange().contains(code));
        self.chunk_node[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chunk_zrange_is_octree_aligned() {
        let c = Chunk {
            cx: 1,
            cy: 0,
            cz: 0,
            atoms: 4,
        };
        let r = c.zrange();
        assert_eq!(r.len(), 64);
        assert_eq!(r.start, encode3(4, 0, 0));
        // every atom of the chunk falls inside the range
        for ax in 4..8 {
            for ay in 0..4 {
                for az in 0..4 {
                    assert!(r.contains(encode3(ax, ay, az)));
                }
            }
        }
    }

    #[test]
    fn chunk_grid_box_matches() {
        let c = Chunk {
            cx: 0,
            cy: 1,
            cz: 2,
            atoms: 2,
        };
        assert_eq!(c.grid_box(), Box3::new([0, 16, 32], [15, 31, 47]));
    }

    #[test]
    fn layout_partitions_all_chunks_contiguously() {
        let l = Layout::new((64, 64, 64), 2, 4);
        assert_eq!(l.chunks().len(), 64);
        let mut total = 0;
        for node in 0..4 {
            let cs = l.chunks_of_node(node);
            assert_eq!(cs.len(), 16);
            total += cs.len();
            // contiguous run along the z-curve → one merged z-range
            assert_eq!(l.zranges_of_node(node).len(), 1);
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn node_ranges_cover_the_lattice_disjointly() {
        let l = Layout::new((64, 64, 64), 2, 3);
        let mut ranges: Vec<ZRange> = (0..3).flat_map(|n| l.zranges_of_node(n)).collect();
        ranges.sort();
        let total: u64 = ranges.iter().map(ZRange::len).sum();
        assert_eq!(total, 8 * 8 * 8); // 512 atoms on the 8³ lattice
        for w in ranges.windows(2) {
            assert!(w[0].end < w[1].start);
        }
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 511);
    }

    proptest! {
        #[test]
        fn node_of_atom_agrees_with_chunk_ownership(
            ax in 0u32..8, ay in 0u32..8, az in 0u32..8, nodes in 1usize..6
        ) {
            let l = Layout::new((64, 64, 64), 2, nodes);
            let atom = AtomCoord::new(ax, ay, az);
            let node = l.node_of_atom(atom);
            prop_assert!(node < nodes);
            // the owning node's chunk list contains the atom's chunk
            let owned = l.chunks_of_node(node);
            prop_assert!(owned.iter().any(|c| c.zrange().contains(atom.zindex())));
            // and its z-ranges contain the atom's code
            let zr = l.zranges_of_node(node);
            prop_assert!(zr.iter().any(|r| r.contains(atom.zindex())));
        }
    }
}
