//! Spatial data placement.
//!
//! "We use the Morton z-order space-filling curve to distribute the data
//! across nodes and databases" (paper §2). The atom lattice is tiled into
//! cubic *chunks* (octree-aligned, so each chunk is one contiguous Morton
//! range); chunks are ordered along the z-curve and split into contiguous
//! runs, one per node. A chunk is both the placement unit and the unit of
//! work a node's worker processes pull from the queue.
//!
//! With k-way replication every chunk has a *replica chain* of `k`
//! distinct nodes, primary first. Two placement modes exist:
//!
//! * [`PlacementMode::Contiguous`] keeps the paper's contiguous z-order
//!   runs as primaries (so k=1 is byte-identical to the unreplicated
//!   layout) and picks the extra replicas by rendezvous hashing.
//! * [`PlacementMode::Rendezvous`] derives the whole chain from
//!   highest-random-weight (HRW) hashing over the live node set, which is
//!   what makes node join/leave move only ~k/n of the chunks
//!   (see `rebalance.rs`).

use tdb_zorder::{encode3, AtomCoord, Box3, ZRange, ATOM_WIDTH};

/// One cubic tile of the atom lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk-lattice coordinates.
    pub cx: u32,
    pub cy: u32,
    pub cz: u32,
    /// Edge length in atoms (power of two).
    pub atoms: u32,
}

impl Chunk {
    /// Contiguous Morton range of this chunk's atoms.
    pub fn zrange(&self) -> ZRange {
        let shift = 3 * self.atoms.trailing_zeros();
        let base = encode3(self.cx, self.cy, self.cz) << shift;
        ZRange::new(base, base + (u64::from(self.atoms).pow(3) - 1))
    }

    /// Grid-space box covered by this chunk.
    pub fn grid_box(&self) -> Box3 {
        let w = self.atoms * ATOM_WIDTH as u32;
        Box3::new(
            [self.cx * w, self.cy * w, self.cz * w],
            [
                (self.cx + 1) * w - 1,
                (self.cy + 1) * w - 1,
                (self.cz + 1) * w - 1,
            ],
        )
    }
}

/// How replica chains are derived from the node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Paper-style contiguous z-order primary runs; extra replicas by
    /// rendezvous hashing. Static: no join/leave support.
    Contiguous,
    /// The whole chain by rendezvous (HRW) hashing — minimal-movement
    /// join/leave.
    Rendezvous,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous weight of `node` for the chunk keyed by `chunk_key`.
/// Deterministic, uniform, and independent across nodes — so removing a
/// node never reorders the surviving nodes' relative ranks.
fn hrw_weight(chunk_key: u64, node: usize) -> u64 {
    splitmix64(chunk_key ^ splitmix64(node as u64 ^ 0xA076_1D64_78BD_642F))
}

/// The cluster-wide placement map.
#[derive(Debug, Clone)]
pub struct Layout {
    dims: (usize, usize, usize),
    chunk_atoms: u32,
    /// Chunks sorted by z-order.
    chunks: Vec<Chunk>,
    /// `chunk_replicas[i]` = replica chain of `chunks[i]`, primary first,
    /// `k` distinct node ids.
    chunk_replicas: Vec<Vec<usize>>,
    /// Node-id space size (ids run `0..num_nodes`; some may have left).
    num_nodes: usize,
    /// Live node ids eligible to hold replicas, ascending.
    node_ids: Vec<usize>,
    k: usize,
    mode: PlacementMode,
}

impl Layout {
    /// Tiles the grid and assigns contiguous z-order runs of chunks to
    /// `num_nodes` nodes (single copy; the seed layout).
    pub fn new(dims: (usize, usize, usize), chunk_atoms: u32, num_nodes: usize) -> Self {
        Self::with_replication(dims, chunk_atoms, num_nodes, 1, PlacementMode::Contiguous)
    }

    /// Tiles the grid and assigns every chunk a chain of `k` distinct
    /// replicas over nodes `0..num_nodes`.
    pub fn with_replication(
        dims: (usize, usize, usize),
        chunk_atoms: u32,
        num_nodes: usize,
        k: usize,
        mode: PlacementMode,
    ) -> Self {
        let node_ids: Vec<usize> = (0..num_nodes).collect();
        Self::over_nodes(dims, chunk_atoms, num_nodes, &node_ids, k, mode)
    }

    /// Tiles the grid and derives chains over an explicit live node set
    /// (ids within `0..num_nodes`; used by rebalancing, where departed
    /// ids leave holes in the id space).
    pub fn over_nodes(
        dims: (usize, usize, usize),
        chunk_atoms: u32,
        num_nodes: usize,
        node_ids: &[usize],
        k: usize,
        mode: PlacementMode,
    ) -> Self {
        let w = (8 * chunk_atoms) as usize;
        assert!(
            dims.0 % w == 0 && dims.1 % w == 0 && dims.2 % w == 0,
            "grid {dims:?} not tileable by chunk width {w}"
        );
        let mut node_ids = node_ids.to_vec();
        node_ids.sort_unstable();
        node_ids.dedup();
        assert!(!node_ids.is_empty(), "need at least one live node");
        assert!(
            node_ids.iter().all(|&id| id < num_nodes),
            "live node ids must fall inside the id space 0..{num_nodes}"
        );
        assert!(
            (1..=node_ids.len()).contains(&k),
            "replication factor {k} needs 1..={} live nodes",
            node_ids.len()
        );
        if mode == PlacementMode::Contiguous {
            assert_eq!(
                node_ids.len(),
                num_nodes,
                "contiguous placement is static: every node id must be live"
            );
        }
        let (ncx, ncy, ncz) = (dims.0 / w, dims.1 / w, dims.2 / w);
        let mut chunks = Vec::with_capacity(ncx * ncy * ncz);
        for cz in 0..ncz as u32 {
            for cy in 0..ncy as u32 {
                for cx in 0..ncx as u32 {
                    chunks.push(Chunk {
                        cx,
                        cy,
                        cz,
                        atoms: chunk_atoms,
                    });
                }
            }
        }
        chunks.sort_by_key(|c| c.zrange().start);
        let n = chunks.len();
        assert!(
            n >= node_ids.len(),
            "{n} chunks cannot be spread over {} nodes",
            node_ids.len()
        );
        let chunk_replicas: Vec<Vec<usize>> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let key = c.zrange().start;
                match mode {
                    PlacementMode::Contiguous => {
                        // paper-style contiguous primary run …
                        let primary = i * node_ids.len() / n;
                        let mut chain = vec![primary];
                        // … plus the k-1 best-ranked other nodes by HRW
                        let mut rest: Vec<usize> = node_ids
                            .iter()
                            .copied()
                            .filter(|&id| id != primary)
                            .collect();
                        rest.sort_unstable_by_key(|&id| std::cmp::Reverse(hrw_weight(key, id)));
                        chain.extend(rest.into_iter().take(k - 1));
                        chain
                    }
                    PlacementMode::Rendezvous => {
                        let mut ranked = node_ids.clone();
                        ranked.sort_unstable_by_key(|&id| std::cmp::Reverse(hrw_weight(key, id)));
                        ranked.truncate(k);
                        ranked
                    }
                }
            })
            .collect();
        Self {
            dims,
            chunk_atoms,
            chunks,
            chunk_replicas,
            num_nodes,
            node_ids,
            k,
            mode,
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Chunk edge length in atoms.
    pub fn chunk_atoms(&self) -> u32 {
        self.chunk_atoms
    }

    /// Node-id space size (ids run `0..num_nodes`; rebalancing may have
    /// retired some — see [`Self::node_ids`]).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Live node ids, ascending.
    pub fn node_ids(&self) -> &[usize] {
        &self.node_ids
    }

    /// The replication factor.
    pub fn replication_k(&self) -> usize {
        self.k
    }

    /// How chains were derived.
    pub fn mode(&self) -> PlacementMode {
        self.mode
    }

    /// All chunks in z-order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Replica chain of `chunks[idx]`, primary first.
    pub fn replicas_of_chunk(&self, idx: usize) -> &[usize] {
        self.chunk_replicas.get(idx).map_or(&[], Vec::as_slice)
    }

    /// Chunks whose *primary* is `node`, in z-order — the node's share of
    /// a canonical scan.
    pub fn chunks_of_node(&self, node: usize) -> Vec<Chunk> {
        self.chunks
            .iter()
            .zip(&self.chunk_replicas)
            .filter(|(_, chain)| chain.first() == Some(&node))
            .map(|(c, _)| *c)
            .collect()
    }

    /// Chunk indices whose primary is `node`, in z-order.
    pub fn chunk_indices_of_node(&self, node: usize) -> Vec<usize> {
        self.chunk_replicas
            .iter()
            .enumerate()
            .filter(|(_, chain)| chain.first() == Some(&node))
            .map(|(i, _)| i)
            .collect()
    }

    /// Chunks stored on `node` (primary or replica), in z-order.
    pub fn stored_chunks_of_node(&self, node: usize) -> Vec<Chunk> {
        self.chunks
            .iter()
            .zip(&self.chunk_replicas)
            .filter(|(_, chain)| chain.contains(&node))
            .map(|(c, _)| *c)
            .collect()
    }

    /// Merged contiguous z-ranges of a node's *primary* atoms.
    pub fn zranges_of_node(&self, node: usize) -> Vec<ZRange> {
        merge_ranges(self.chunks_of_node(node).iter().map(Chunk::zrange))
    }

    /// Merged contiguous z-ranges of every atom stored on `node`
    /// (primary or replica); its table partitions are built over these.
    pub fn stored_zranges_of_node(&self, node: usize) -> Vec<ZRange> {
        merge_ranges(self.stored_chunks_of_node(node).iter().map(Chunk::zrange))
    }

    /// Index into [`Self::chunks`] of the chunk containing the atom.
    pub fn chunk_index_of_atom(&self, atom: AtomCoord) -> usize {
        let ca = self.chunk_atoms;
        let chunk_code = encode3(atom.x / ca, atom.y / ca, atom.z / ca);
        let shift = 3 * ca.trailing_zeros();
        let code = (chunk_code << shift) | (atom.zindex() & ((1u64 << shift) - 1));
        // binary search the chunk whose range contains the code
        let idx = self.chunks.partition_point(|c| c.zrange().end < code);
        debug_assert!(self
            .chunks
            .get(idx)
            .is_some_and(|c| c.zrange().contains(code)));
        idx
    }

    /// Index into [`Self::chunks`] of a chunk value, if it belongs to
    /// this layout.
    pub fn chunk_index_of(&self, chunk: &Chunk) -> Option<usize> {
        let key = chunk.zrange().start;
        let idx = self.chunks.partition_point(|c| c.zrange().start < key);
        (self.chunks.get(idx) == Some(chunk)).then_some(idx)
    }

    /// Node owning (primary for) the atom.
    pub fn node_of_atom(&self, atom: AtomCoord) -> usize {
        let chain = self.replicas_of_chunk(self.chunk_index_of_atom(atom));
        chain.first().copied().unwrap_or(0)
    }

    /// Where to fetch an atom from: `prefer` when that node stores a
    /// replica of the atom's chunk (a local read), else the primary.
    pub fn fetch_node_for(&self, atom: AtomCoord, prefer: usize) -> usize {
        let chain = self.replicas_of_chunk(self.chunk_index_of_atom(atom));
        if chain.contains(&prefer) {
            prefer
        } else {
            chain.first().copied().unwrap_or(0)
        }
    }
}

/// Merges z-ranges that are contiguous along the curve (input in z-order).
fn merge_ranges(ranges: impl IntoIterator<Item = ZRange>) -> Vec<ZRange> {
    let mut out: Vec<ZRange> = Vec::new();
    for r in ranges {
        match out.last_mut() {
            Some(last) if last.end + 1 == r.start => last.end = r.end,
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chunk_zrange_is_octree_aligned() {
        let c = Chunk {
            cx: 1,
            cy: 0,
            cz: 0,
            atoms: 4,
        };
        let r = c.zrange();
        assert_eq!(r.len(), 64);
        assert_eq!(r.start, encode3(4, 0, 0));
        // every atom of the chunk falls inside the range
        for ax in 4..8 {
            for ay in 0..4 {
                for az in 0..4 {
                    assert!(r.contains(encode3(ax, ay, az)));
                }
            }
        }
    }

    #[test]
    fn chunk_grid_box_matches() {
        let c = Chunk {
            cx: 0,
            cy: 1,
            cz: 2,
            atoms: 2,
        };
        assert_eq!(c.grid_box(), Box3::new([0, 16, 32], [15, 31, 47]));
    }

    #[test]
    fn layout_partitions_all_chunks_contiguously() {
        let l = Layout::new((64, 64, 64), 2, 4);
        assert_eq!(l.chunks().len(), 64);
        let mut total = 0;
        for node in 0..4 {
            let cs = l.chunks_of_node(node);
            assert_eq!(cs.len(), 16);
            total += cs.len();
            // contiguous run along the z-curve → one merged z-range
            assert_eq!(l.zranges_of_node(node).len(), 1);
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn node_ranges_cover_the_lattice_disjointly() {
        let l = Layout::new((64, 64, 64), 2, 3);
        let mut ranges: Vec<ZRange> = (0..3).flat_map(|n| l.zranges_of_node(n)).collect();
        ranges.sort();
        let total: u64 = ranges.iter().map(ZRange::len).sum();
        assert_eq!(total, 8 * 8 * 8); // 512 atoms on the 8³ lattice
        for w in ranges.windows(2) {
            assert!(w[0].end < w[1].start);
        }
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 511);
    }

    #[test]
    fn replication_keeps_contiguous_primaries() {
        let single = Layout::new((64, 64, 64), 2, 4);
        let repl = Layout::with_replication((64, 64, 64), 2, 4, 3, PlacementMode::Contiguous);
        for node in 0..4 {
            assert_eq!(single.chunks_of_node(node), repl.chunks_of_node(node));
            assert_eq!(single.zranges_of_node(node), repl.zranges_of_node(node));
        }
    }

    #[test]
    fn chains_have_k_distinct_members() {
        for mode in [PlacementMode::Contiguous, PlacementMode::Rendezvous] {
            let l = Layout::with_replication((64, 64, 64), 2, 4, 3, mode);
            for i in 0..l.chunks().len() {
                let chain = l.replicas_of_chunk(i);
                assert_eq!(chain.len(), 3);
                let mut sorted = chain.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 3, "chain members must be distinct");
                assert!(sorted.iter().all(|&n| n < 4));
            }
        }
    }

    #[test]
    fn stored_chunks_cover_with_multiplicity_k() {
        let l = Layout::with_replication((64, 64, 64), 2, 4, 2, PlacementMode::Rendezvous);
        let stored: usize = (0..4).map(|n| l.stored_chunks_of_node(n).len()).sum();
        assert_eq!(stored, 2 * l.chunks().len());
        // every chunk's primary chunk list and stored chunk list agree
        for node in 0..4 {
            let primary = l.chunks_of_node(node);
            let stored = l.stored_chunks_of_node(node);
            assert!(primary.iter().all(|c| stored.contains(c)));
        }
    }

    #[test]
    fn rendezvous_join_moves_only_a_small_fraction() {
        let dims = (128, 128, 128);
        let before = Layout::with_replication(dims, 2, 5, 2, PlacementMode::Rendezvous);
        let after = Layout::with_replication(dims, 2, 6, 2, PlacementMode::Rendezvous);
        let total = before.chunks().len();
        let mut moved = 0usize;
        for i in 0..total {
            let old = before.replicas_of_chunk(i);
            for &n in after.replicas_of_chunk(i) {
                if !old.contains(&n) {
                    // a chunk only ever moves TO the new node on join
                    assert_eq!(n, 5, "HRW join must not shuffle existing nodes");
                    moved += 1;
                }
            }
        }
        // expected k/(n+1) = 1/3 of chunks gain the new node; allow 2×
        assert!(moved > 0, "the new node must receive some chunks");
        assert!(
            moved <= total * 2 * 2 / 6,
            "join moved {moved} of {total} chunks — not minimal"
        );
    }

    #[test]
    fn rendezvous_leave_moves_only_orphans() {
        let dims = (128, 128, 128);
        let all: Vec<usize> = (0..5).collect();
        let before = Layout::over_nodes(dims, 2, 5, &all, 2, PlacementMode::Rendezvous);
        let survivors: Vec<usize> = all.iter().copied().filter(|&n| n != 2).collect();
        let after = Layout::over_nodes(dims, 2, 5, &survivors, 2, PlacementMode::Rendezvous);
        for i in 0..before.chunks().len() {
            let old = before.replicas_of_chunk(i);
            let new = after.replicas_of_chunk(i);
            assert!(!new.contains(&2));
            if !old.contains(&2) {
                assert_eq!(
                    old, new,
                    "chunks untouched by the departed node must not move"
                );
            } else {
                // exactly one replacement member; survivors keep their spots
                let kept = new.iter().filter(|n| old.contains(n)).count();
                assert_eq!(kept, 1);
            }
        }
    }

    proptest! {
        #[test]
        fn node_of_atom_agrees_with_chunk_ownership(
            ax in 0u32..8, ay in 0u32..8, az in 0u32..8, nodes in 1usize..6
        ) {
            let l = Layout::new((64, 64, 64), 2, nodes);
            let atom = AtomCoord::new(ax, ay, az);
            let node = l.node_of_atom(atom);
            prop_assert!(node < nodes);
            // the owning node's chunk list contains the atom's chunk
            let owned = l.chunks_of_node(node);
            prop_assert!(owned.iter().any(|c| c.zrange().contains(atom.zindex())));
            // and its z-ranges contain the atom's code
            let zr = l.zranges_of_node(node);
            prop_assert!(zr.iter().any(|r| r.contains(atom.zindex())));
        }

        #[test]
        fn fetch_prefers_any_stored_replica(
            ax in 0u32..8, ay in 0u32..8, az in 0u32..8,
            prefer in 0usize..4, k in 1usize..4
        ) {
            let l = Layout::with_replication((64, 64, 64), 2, 4, k, PlacementMode::Rendezvous);
            let atom = AtomCoord::new(ax, ay, az);
            let src = l.fetch_node_for(atom, prefer);
            let chain = l.replicas_of_chunk(l.chunk_index_of_atom(atom));
            prop_assert!(chain.contains(&src));
            if chain.contains(&prefer) {
                prop_assert_eq!(src, prefer);
            } else {
                prop_assert_eq!(src, chain[0]);
            }
        }
    }
}
