//! Wire-format size models.
//!
//! The JHTDB front end is a SOAP Web-service: "a Web-service request will
//! be much larger due to the overhead of wrapping the data in an xml
//! format" (paper §5.3). Result sizes feed the LAN/WAN device models, so
//! the encodings must be realistic; the XML encoder below is the actual
//! encoder used to size (and render) user-bound messages.

use tdb_cache::ThresholdPoint;

/// Binary wire size of a threshold-point result between node and mediator
/// (zindex + value per point plus a small header).
pub fn binary_result_bytes(npoints: u64) -> u64 {
    64 + npoints * 12
}

/// Renders a result set as the SOAP-style XML document a JHTDB client
/// would receive.
pub fn xml_encode(points: &[ThresholdPoint]) -> String {
    let mut out = String::with_capacity(points.len() * 80 + 256);
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str("<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\">\n");
    out.push_str("<soap:Body><GetThresholdResponse>\n");
    for p in points {
        let (x, y, z) = p.coords();
        out.push_str(&format!(
            "<Point><x>{x}</x><y>{y}</y><z>{z}</z><value>{:.6}</value></Point>\n",
            p.value
        ));
    }
    out.push_str("</GetThresholdResponse></soap:Body></soap:Envelope>\n");
    out
}

/// Size of the user-bound XML message for `npoints` result points, using
/// the measured per-point cost of [`xml_encode`].
pub fn xml_result_bytes(npoints: u64) -> u64 {
    // representative point: ~70 bytes of markup per point + envelope
    const ENVELOPE: u64 = 200;
    const PER_POINT: u64 = 72;
    ENVELOPE + npoints * PER_POINT
}

/// Size of a raw-field cutout shipped to a user as XML-wrapped base64-ish
/// payload (the "local evaluation" baseline of §5.3): `ncomp` f32 values
/// per point with ~1.4× transport inflation.
pub fn xml_cutout_bytes(npoints: u64, ncomp: u64) -> u64 {
    const ENVELOPE: u64 = 200;
    ENVELOPE + (npoints * ncomp * 4) * 14 / 10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_size_model_matches_real_encoder() {
        let points: Vec<ThresholdPoint> = (0..500)
            .map(|i| ThresholdPoint::at(i % 64, (i / 64) % 64, i % 17, 42.5 + i as f32))
            .collect();
        let real = xml_encode(&points).len() as u64;
        let model = xml_result_bytes(points.len() as u64);
        let ratio = real as f64 / model as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "model {model} vs real {real} (ratio {ratio})"
        );
    }

    #[test]
    fn xml_is_much_larger_than_binary() {
        assert!(xml_result_bytes(1000) > 4 * binary_result_bytes(1000));
    }

    #[test]
    fn xml_document_is_well_formed_enough() {
        let points = vec![ThresholdPoint::at(1, 2, 3, 9.5)];
        let doc = xml_encode(&points);
        assert!(doc.contains("<x>1</x>"));
        assert!(doc.contains("<value>9.500000</value>"));
        assert_eq!(
            doc.matches("<Point>").count(),
            doc.matches("</Point>").count()
        );
    }

    #[test]
    fn cutout_scales_with_components() {
        let one = xml_cutout_bytes(1_000_000, 1);
        let nine = xml_cutout_bytes(1_000_000, 9);
        assert!(nine > 8 * one && nine < 10 * one);
    }
}
