//! The Web-server / mediator and cluster assembly.
//!
//! "Each request is broken down into multiple parts based on the spatial
//! layout of the data. Each part is asynchronously submitted for
//! evaluation to the database which stores the data needed ... The
//! Web-server assembles the results from the distributed computation and
//! sends them back to the client." (paper §2)

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tdb_cache::{CacheStats, ThresholdPoint};
use tdb_field::{Grid3, Histogram, VectorField};
use tdb_kernels::{DerivedField, DiffScheme};
use tdb_obs::{QueryTrace, TraceSpan};
use tdb_storage::device::{DeviceId, DeviceProfile, DeviceRegistry, IoSession};
use tdb_storage::{
    AtomKey, AtomRecord, BlockCache, FaultPlan, StorageError, StorageResult, TableBuilder,
};
use tdb_zorder::{AtomCoord, Box3, ZRange};

use crate::config::{ClusterConfig, ReadPolicy};
use crate::node::{NodeResult, NodeRuntime, QueryMode};
use crate::placement::{Chunk, Layout};
use crate::scan::{ScanAssignment, ScanKernel, ScanParticipant, SharedOutcome, SharedScanRequest};
use crate::scheduler::ScanScheduler;
use crate::sim::NodeTimeModel;
use crate::timing::TimeBreakdown;
use crate::wire;

/// A threshold query as the mediator receives it.
#[derive(Debug, Clone)]
pub struct ThresholdRequest {
    pub raw_field: String,
    pub derived: DerivedField,
    pub timestep: u32,
    pub query_box: Box3,
    pub threshold: f64,
    pub use_cache: bool,
    pub mode: QueryMode,
    /// Worker processes per node; defaults to the cluster configuration.
    pub procs_override: Option<usize>,
    /// Fail-fast mode: any node failure or deadline violation fails the
    /// whole query instead of degrading it.
    pub strict: bool,
    /// Per-node modelled-time deadline, seconds. A node whose modelled
    /// time (cache lookup + I/O + compute) exceeds it is treated as
    /// failed: dropped with degradation, or fatal under [`Self::strict`].
    pub node_deadline_s: Option<f64>,
}

/// One node that could not contribute to a degraded answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedNode {
    pub node: usize,
    pub reason: String,
}

/// What a degraded (partial) answer is missing: which nodes failed and
/// exactly which sub-boxes of the query box their absence leaves
/// unanswered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedInfo {
    pub failed_nodes: Vec<FailedNode>,
    pub missing_boxes: Vec<Box3>,
}

/// Assembled answer of a threshold query.
#[derive(Debug)]
pub struct ThresholdResponse {
    pub points: Vec<ThresholdPoint>,
    pub breakdown: TimeBreakdown,
    /// How many nodes answered from their cache.
    pub cache_hits: usize,
    pub nodes: usize,
    /// Real wall-clock of the in-process evaluation.
    pub wall_s: f64,
    /// Per-surviving-node closed-form time models (zero for cache hits),
    /// letting callers evaluate `t(p)` at any process count deterministically.
    pub node_models: Vec<NodeTimeModel>,
    /// Span tree of the query's phases and per-node work.
    pub trace: Option<QueryTrace>,
    /// `Some` when one or more nodes failed and the answer is partial.
    pub degraded: Option<DegradedInfo>,
}

/// One query of a multi-query batch evaluated against shared scans.
#[derive(Debug, Clone)]
pub enum BatchQuery {
    Threshold(ThresholdRequest),
    Pdf {
        req: ThresholdRequest,
        origin: f64,
        width: f64,
        nbins: usize,
    },
    TopK {
        req: ThresholdRequest,
        k: usize,
    },
}

impl BatchQuery {
    /// The underlying threshold-shaped request.
    pub fn request(&self) -> &ThresholdRequest {
        match self {
            BatchQuery::Threshold(r) => r,
            BatchQuery::Pdf { req, .. } | BatchQuery::TopK { req, .. } => req,
        }
    }

    fn participant(&self) -> ScanParticipant {
        match self {
            BatchQuery::Threshold(r) => ScanParticipant {
                query_box: r.query_box,
                kernel: ScanKernel::Threshold {
                    threshold: r.threshold,
                },
                use_cache: r.use_cache,
            },
            BatchQuery::Pdf {
                req,
                origin,
                width,
                nbins,
            } => ScanParticipant {
                query_box: req.query_box,
                kernel: ScanKernel::Pdf {
                    origin: *origin,
                    width: *width,
                    nbins: *nbins,
                },
                use_cache: req.use_cache,
            },
            BatchQuery::TopK { req, .. } => ScanParticipant {
                query_box: req.query_box,
                kernel: ScanKernel::TopK,
                use_cache: false,
            },
        }
    }
}

/// The per-kind answer of a [`BatchQuery`].
#[derive(Debug)]
pub enum BatchAnswer {
    Threshold(ThresholdResponse),
    Pdf(PdfResponse),
    TopK(TopKResponse),
}

/// Everything that must agree for two queries to share one atom scan.
/// The threshold value, query box and kernel are per-participant; the
/// degradation policy (strict / deadline) is part of the key so a group
/// is filtered uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ScanGroupKey {
    raw_field: String,
    derived: DerivedField,
    timestep: u32,
    full_mode: bool,
    procs_override: Option<usize>,
    strict: bool,
    deadline_bits: Option<u64>,
}

impl ScanGroupKey {
    pub(crate) fn of(req: &ThresholdRequest) -> Self {
        Self {
            raw_field: req.raw_field.clone(),
            derived: req.derived,
            timestep: req.timestep,
            full_mode: req.mode == QueryMode::Full,
            procs_override: req.procs_override,
            strict: req.strict,
            deadline_bits: req.node_deadline_s.map(f64::to_bits),
        }
    }
}

/// Fans a per-node error out to every query of a shared-scan group.
/// [`StorageError`] holds an `io::Error` and cannot be `Clone`, so the
/// variants are reconstructed field by field.
fn clone_storage_error(e: &StorageError) -> StorageError {
    match e {
        StorageError::Io { file, source } => StorageError::Io {
            file: file.clone(),
            source: std::io::Error::new(source.kind(), source.to_string()),
        },
        StorageError::Corrupt { file, detail } => StorageError::Corrupt {
            file: file.clone(),
            detail: detail.clone(),
        },
        StorageError::KeyOrder { detail } => StorageError::KeyOrder {
            detail: detail.clone(),
        },
        StorageError::SchemaMismatch {
            expected_ncomp,
            got_ncomp,
        } => StorageError::SchemaMismatch {
            expected_ncomp: *expected_ncomp,
            got_ncomp: *got_ncomp,
        },
        StorageError::MissingData { detail } => StorageError::MissingData {
            detail: detail.clone(),
        },
        StorageError::Injected {
            site,
            detail,
            transient,
        } => StorageError::Injected {
            site: site.clone(),
            detail: detail.clone(),
            transient: *transient,
        },
        StorageError::NodeUnavailable { node, detail } => StorageError::NodeUnavailable {
            node: *node,
            detail: detail.clone(),
        },
        StorageError::Internal { detail } => StorageError::Internal {
            detail: detail.clone(),
        },
    }
}

/// Assembled answer of a PDF query.
#[derive(Debug)]
pub struct PdfResponse {
    pub histogram: Histogram,
    pub breakdown: TimeBreakdown,
    pub wall_s: f64,
    pub trace: Option<QueryTrace>,
    /// `Some` when one or more nodes failed and the answer is partial.
    pub degraded: Option<DegradedInfo>,
}

/// Assembled answer of a top-k query.
#[derive(Debug)]
pub struct TopKResponse {
    pub points: Vec<ThresholdPoint>,
    pub breakdown: TimeBreakdown,
    pub wall_s: f64,
    pub trace: Option<QueryTrace>,
    /// `Some` when one or more nodes failed and the answer is partial.
    pub degraded: Option<DegradedInfo>,
}

/// The devices racked for one node: its disk arrays, semantic-cache SSD
/// and I/O controller. Kept after build so rebalancing can rebuild a
/// node's tables against the same simulated hardware.
#[derive(Debug, Clone)]
pub(crate) struct NodeDevices {
    pub arrays: Vec<DeviceId>,
    pub ssd: DeviceId,
    pub controller: DeviceId,
}

/// Mutable cluster-membership state, serialized under one lock so joins
/// and leaves cannot interleave.
pub(crate) struct RebalanceState {
    /// Devices of every node id ever racked (index = node id).
    pub node_devices: Vec<NodeDevices>,
    /// Pre-registered device sets for future [`Cluster::join_node`] calls
    /// ([`crate::config::ReplicationConfig::spare_nodes`]).
    pub spares: Vec<NodeDevices>,
    /// Next unused partition-file id block (file ids advance by 1024 per
    /// table so fault rules can target files of rebuilt nodes too).
    pub next_file_id: u64,
}

/// One immutable topology generation: the placement snapshot plus the
/// node runtimes serving it. Queries grab an `Arc<Topology>` once and run
/// entirely against it, so a concurrent join/leave installing the next
/// generation never tears an in-flight scan.
pub(crate) struct Topology {
    pub layout: Arc<Layout>,
    /// Runtimes indexed by node id; `None` marks a departed node.
    pub nodes: Vec<Option<Arc<NodeRuntime>>>,
    /// Monotone generation counter, bumped per join/leave.
    pub epoch: u64,
}

impl Topology {
    /// Live `(node id, runtime)` pairs in id order.
    pub fn live(&self) -> impl Iterator<Item = (usize, &Arc<NodeRuntime>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }
}

/// Builds a cluster: devices, placement, and bulk-loaded tables.
pub struct ClusterBuilder {
    config: ClusterConfig,
    dataset: String,
    grid: Arc<Grid3>,
    layout: Arc<Layout>,
    registry: DeviceRegistry,
    lan: DeviceId,
    wan: DeviceId,
    node_devices: Vec<NodeDevices>,
    spares: Vec<NodeDevices>,
    builders: Vec<HashMap<String, TableBuilder>>,
    pools: Vec<Arc<BlockCache>>,
    fields: Vec<(String, u8)>,
    timesteps: Vec<u32>,
    dir: PathBuf,
}

impl ClusterBuilder {
    /// Prepares storage for `fields` (`(name, ncomp)`) under `dir`.
    pub fn new(
        dir: impl AsRef<Path>,
        dataset: &str,
        grid: Grid3,
        fields: &[(&str, u8)],
        config: ClusterConfig,
    ) -> StorageResult<Self> {
        config.validate(grid.dims());
        let layout = Arc::new(Layout::with_replication(
            grid.dims(),
            config.chunk_atoms,
            config.num_nodes,
            config.replication.k,
            config.replication.placement,
        ));
        let mut registry = DeviceRegistry::new();
        let lan = registry.register(DeviceProfile::lan());
        let wan = registry.register(DeviceProfile::user_wan());
        let rack = |registry: &mut DeviceRegistry| NodeDevices {
            arrays: (0..config.arrays_per_node)
                .map(|_| registry.register(DeviceProfile::hdd_array()))
                .collect(),
            ssd: registry.register(DeviceProfile::ssd()),
            controller: registry.register(DeviceProfile::node_controller()),
        };
        let dir = dir.as_ref().to_path_buf();
        let mut builders: Vec<HashMap<String, TableBuilder>> = Vec::with_capacity(config.num_nodes);
        let mut pools = Vec::with_capacity(config.num_nodes);
        let mut node_devices = Vec::with_capacity(config.num_nodes);
        for node in 0..config.num_nodes {
            let devices = rack(&mut registry);
            let zones = split_zones(&layout.stored_zranges_of_node(node), config.arrays_per_node);
            let node_dir = dir.join(format!("node{node}"));
            let mut per_field = HashMap::new();
            for &(name, ncomp) in fields {
                per_field.insert(
                    name.to_string(),
                    TableBuilder::new(
                        &node_dir,
                        name,
                        ncomp,
                        zones.clone(),
                        &devices.arrays,
                        config.compression,
                    )?,
                );
            }
            node_devices.push(devices);
            builders.push(per_field);
            pools.push(Arc::new(BlockCache::with_policy(
                config.bufferpool_bytes,
                config.eviction,
                config.faults.clone(),
            )));
        }
        // spare hardware for future join_node calls is racked now: the
        // device registry is frozen once the cluster is running
        let spares = (0..config.replication.spare_nodes)
            .map(|_| rack(&mut registry))
            .collect();
        Ok(Self {
            config,
            dataset: dataset.to_string(),
            grid: Arc::new(grid),
            layout,
            registry,
            lan,
            wan,
            node_devices,
            spares,
            builders,
            pools,
            fields: fields
                .iter()
                .map(|&(name, ncomp)| (name.to_string(), ncomp))
                .collect(),
            timesteps: Vec::new(),
            dir,
        })
    }

    /// Ingests one field of one time-step. `extract(atom)` returns the
    /// atom's payload (`ncomp × 512` values, component-major). With
    /// replication every node stores all `k` chains it belongs to, so an
    /// atom is ingested once per replica.
    pub fn ingest_timestep(
        &mut self,
        timestep: u32,
        field: &str,
        ncomp: u8,
        extract: impl Fn(AtomCoord) -> Vec<f32> + Sync,
    ) -> StorageResult<()> {
        if !self.timesteps.contains(&timestep) {
            self.timesteps.push(timestep);
        }
        for (node, per_field) in self.builders.iter_mut().enumerate() {
            let zones = self.layout.stored_zranges_of_node(node);
            let mut records = Vec::new();
            for zr in zones {
                for code in zr.start..=zr.end {
                    let atom = AtomCoord::from_zindex(code);
                    let rec = AtomRecord::new(AtomKey::new(timestep, code), ncomp, extract(atom))?;
                    records.push(rec);
                }
            }
            per_field
                .get_mut(field)
                .ok_or_else(|| StorageError::internal(format!("unknown field {field}")))?
                .append_timestep(timestep, records)?;
        }
        Ok(())
    }

    /// Seals the tables and brings the node runtimes up.
    pub fn finish(self) -> StorageResult<Cluster> {
        let registry = Arc::new(self.registry);
        let scheme = Arc::new(DiffScheme::new(&self.grid, self.config.fd_order));
        let mut nodes = Vec::with_capacity(self.config.num_nodes);
        let mut file_id = 0u64;
        for (node, ((per_field, pool), devices)) in self
            .builders
            .into_iter()
            .zip(&self.pools)
            .zip(&self.node_devices)
            .enumerate()
        {
            let mut tables = HashMap::new();
            for (name, builder) in per_field {
                let table = builder.finish(Arc::clone(pool), file_id)?;
                file_id += 1024;
                tables.insert(name, table);
            }
            nodes.push(Some(Arc::new(NodeRuntime::new(
                node,
                tables,
                Arc::clone(pool),
                devices.ssd,
                devices.controller,
                self.config.compute_scale,
                self.config.synthetic_compute_s_per_point,
                self.config.cache_budget_bytes,
                Arc::clone(&self.grid),
                Arc::clone(&scheme),
                Arc::clone(&registry),
                self.lan,
                self.config.faults.clone(),
            ))));
        }
        let scheduler = self.config.coalesce.map(ScanScheduler::new);
        Ok(Cluster {
            config: self.config,
            dataset: self.dataset,
            grid: self.grid,
            registry,
            scheme,
            lan: self.lan,
            wan: self.wan,
            topology: RwLock::new(Arc::new(Topology {
                layout: self.layout,
                nodes,
                epoch: 0,
            })),
            fields: self.fields,
            timesteps: self.timesteps,
            rebalance: Mutex::new(RebalanceState {
                node_devices: self.node_devices,
                spares: self.spares,
                next_file_id: file_id,
            }),
            scheduler,
            dir: self.dir,
        })
    }
}

/// Splits a node's merged z-ranges into `k` contiguous pieces of roughly
/// equal atom count — one partition file per disk array.
pub(crate) fn split_zones(zones: &[ZRange], k: usize) -> Vec<ZRange> {
    let total: u64 = zones.iter().map(ZRange::len).sum();
    let k = (k as u64).min(total).max(1);
    let per = total.div_ceil(k);
    let mut out = Vec::new();
    for z in zones {
        let mut start = z.start;
        while start <= z.end {
            let end = (start + per - 1).min(z.end);
            out.push(ZRange::new(start, end));
            if end == z.end {
                break;
            }
            start = end + 1;
        }
    }
    out
}

/// One node's share of a scatter wave: which chunks it was asked to scan
/// and what came back. `chunk_idxs` (indices into `Layout::chunks`) are
/// kept so a failed node orphans exactly its own assignment — including
/// failover chunks it inherited in a previous round — and nothing else.
struct WaveEntry {
    node: usize,
    chunk_idxs: Vec<usize>,
    result: StorageResult<Vec<SharedOutcome>>,
}

/// The sub-boxes of `query_box` whose primary owner failed — exactly the
/// regions a degraded answer is missing.
fn missing_boxes(layout: &Layout, failed: &[FailedNode], query_box: &Box3) -> Vec<Box3> {
    let mut out = Vec::new();
    for f in failed {
        for c in layout.chunks_of_node(f.node) {
            if let Some(b) = c.grid_box().intersect(query_box) {
                out.push(b);
            }
        }
    }
    out
}

/// The running cluster: mediator entry points.
pub struct Cluster {
    pub(crate) config: ClusterConfig,
    pub(crate) dataset: String,
    pub(crate) grid: Arc<Grid3>,
    pub(crate) registry: Arc<DeviceRegistry>,
    pub(crate) scheme: Arc<DiffScheme>,
    pub(crate) lan: DeviceId,
    pub(crate) wan: DeviceId,
    /// The current topology generation. Queries snapshot the `Arc` once
    /// and never observe a half-installed join/leave.
    pub(crate) topology: RwLock<Arc<Topology>>,
    /// `(name, ncomp)` of every stored field — needed to rebuild tables
    /// when nodes join or leave.
    pub(crate) fields: Vec<(String, u8)>,
    /// Every ingested time-step, in ingest order.
    pub(crate) timesteps: Vec<u32>,
    /// Membership-change state; the lock serializes joins/leaves.
    pub(crate) rebalance: Mutex<RebalanceState>,
    /// `Some` when [`ClusterConfig::coalesce`] is set: queries route
    /// through the scan scheduler and may share atom scans.
    scheduler: Option<ScanScheduler>,
    pub(crate) dir: PathBuf,
}

impl Cluster {
    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Dataset name.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Grid geometry.
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// The current topology snapshot.
    pub(crate) fn topology_snapshot(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.read())
    }

    /// The current placement map (a snapshot: joins/leaves replace it).
    pub fn layout(&self) -> Arc<Layout> {
        Arc::clone(&self.topology.read().layout)
    }

    /// Current topology generation (bumped per join/leave).
    pub fn epoch(&self) -> u64 {
        self.topology.read().epoch
    }

    /// Device registry (for custom time modelling in benches).
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The live node runtimes (departed nodes are skipped).
    pub fn nodes(&self) -> Vec<Arc<NodeRuntime>> {
        self.topology
            .read()
            .nodes
            .iter()
            .flatten()
            .map(Arc::clone)
            .collect()
    }

    /// Ids of the live nodes, ascending.
    pub fn live_node_ids(&self) -> Vec<usize> {
        self.topology.read().live().map(|(id, _)| id).collect()
    }

    /// The fault plan the cluster was configured with, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.config.faults.as_ref()
    }

    /// Per-node worker processes for a request.
    fn procs_for(&self, req: &ThresholdRequest) -> usize {
        req.procs_override.unwrap_or(self.config.procs_per_node)
    }

    /// Applies the degradation policy to per-node outcomes (tagged with
    /// node ids). A dead node — or one whose modelled time blew the
    /// deadline — is dropped and recorded in [`DegradedInfo`] together
    /// with exactly the sub-boxes of the query its absence leaves
    /// unanswered; under `strict` the same conditions fail the whole
    /// query. Any other node error always propagates: partial data is
    /// only acceptable for *unavailability*, never for corruption.
    ///
    /// This is the `PrimaryOnly` / `k = 1` read path; replicated clusters
    /// with [`ReadPolicy::Failover`] re-scan a failed node's chunks on
    /// replicas instead (see [`Self::run_group`]).
    fn degrade_filter<T>(
        &self,
        layout: &Layout,
        outcomes: Vec<(usize, StorageResult<T>)>,
        node_time: impl Fn(&T) -> f64,
        query_box: &Box3,
        strict: bool,
        deadline_s: Option<f64>,
    ) -> StorageResult<(Vec<T>, Vec<usize>, Option<DegradedInfo>)> {
        let mut ok = Vec::new();
        let mut ids = Vec::new();
        let mut failed: Vec<FailedNode> = Vec::new();
        for (i, r) in outcomes.into_iter() {
            match r {
                Ok(t) => {
                    let modelled = node_time(&t);
                    if let Some(d) = deadline_s {
                        if modelled > d {
                            tdb_obs::add("node.deadline_exceeded", 1);
                            if strict {
                                return Err(StorageError::NodeUnavailable {
                                    node: i,
                                    detail: format!(
                                        "modelled node time {modelled:.3}s exceeds deadline {d:.3}s"
                                    ),
                                });
                            }
                            failed.push(FailedNode {
                                node: i,
                                reason: format!(
                                    "deadline exceeded: modelled {modelled:.3}s > {d:.3}s"
                                ),
                            });
                            continue;
                        }
                    }
                    ok.push(t);
                    ids.push(i);
                }
                Err(e) if e.is_unavailable() && !strict => {
                    failed.push(FailedNode {
                        node: i,
                        reason: e.to_string(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        let degraded = if failed.is_empty() {
            None
        } else {
            let missing_boxes = missing_boxes(layout, &failed, query_box);
            tdb_obs::add("query.degraded", 1);
            Some(DegradedInfo {
                failed_nodes: failed,
                missing_boxes,
            })
        };
        Ok((ok, ids, degraded))
    }

    /// The cluster-wide I/O phase: nodes run in parallel, so the phase is
    /// the slowest node's serial schedule divided by its processes — but
    /// never less than any single device's total service time (devices
    /// serve *all* nodes' requests: a peer fetching halo atoms still
    /// occupies the owner's arrays and controller).
    fn cluster_io_ref(&self, results: &[&NodeResult], procs: usize) -> f64 {
        let cold: Vec<&&NodeResult> = results.iter().filter(|r| !r.cache_hit).collect();
        if cold.is_empty() {
            return 0.0;
        }
        let mut merged = IoSession::new();
        let mut max_serial = 0.0f64;
        for r in &cold {
            merged.merge(&r.session);
            max_serial = max_serial.max(r.io_serial_s);
        }
        let global_floor = merged.makespan(&self.registry);
        (max_serial / procs.max(1) as f64).max(global_floor)
    }

    /// Builds the span tree of a finished query. Phase spans carry the
    /// final breakdown's durations verbatim (so the trace is always
    /// consistent with the reported [`TimeBreakdown`]); per-node child
    /// spans under `phase.io` carry the measured detail — cache outcome,
    /// atoms scanned, buffer-pool hits/misses, bytes charged per device.
    #[allow(clippy::too_many_arguments)]
    fn build_trace(
        &self,
        kind: &str,
        results: &[&NodeResult],
        node_ids: &[usize],
        node_points: &[u64],
        breakdown: &TimeBreakdown,
        points_returned: u64,
        wall_s: f64,
        degraded: Option<&DegradedInfo>,
    ) -> QueryTrace {
        let mut root = TraceSpan::new(format!("query.{kind}"), 0.0, breakdown.total_s())
            .with_attr("points", points_returned)
            .with_attr("nodes", results.len() as u64)
            .with_attr("wall_s", wall_s);
        if let Some(d) = degraded {
            root.set_attr("degraded", "true");
            let mut span = TraceSpan::new("phase.degraded", 0.0, 0.0)
                .with_attr("failed_nodes", d.failed_nodes.len() as u64)
                .with_attr("missing_boxes", d.missing_boxes.len() as u64);
            for f in &d.failed_nodes {
                span.push_child(
                    TraceSpan::new(format!("failed.node.{}", f.node), 0.0, 0.0)
                        .with_attr("reason", f.reason.as_str()),
                );
            }
            root.push_child(span);
        }
        let mut t = 0.0;
        root.push_child(TraceSpan::new(
            "phase.cache_lookup",
            t,
            breakdown.cache_lookup_s,
        ));
        t += breakdown.cache_lookup_s;
        let mut io = TraceSpan::new("phase.io", t, breakdown.io_s);
        for (i, r) in results.iter().enumerate() {
            let id = node_ids.get(i).copied().unwrap_or(i);
            let mut node = TraceSpan::new(format!("node.{id}"), t, r.io_s)
                .with_attr("cache", if r.cache_hit { "hit" } else { "miss" })
                .with_attr("atoms_scanned", r.atoms_scanned)
                .with_attr("points", node_points.get(i).copied().unwrap_or(0))
                .with_attr("pool_hits", r.session.pool_hits)
                .with_attr("pool_misses", r.session.pool_misses)
                .with_attr("cache_lookup_s", r.cache_lookup_s)
                .with_attr("compute_s", r.compute_s)
                .with_attr("node_wall_s", r.wall_s);
            // several devices can share a profile name (a node has many
            // identical disk arrays), so aggregate bytes per name
            let mut by_device: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            for (dev, a) in r.session.devices() {
                *by_device
                    .entry(format!("bytes.{}", self.registry.profile(dev).name))
                    .or_default() += a.bytes;
            }
            for (key, bytes) in by_device {
                node.set_attr(key, bytes);
            }
            io.push_child(node);
        }
        root.push_child(io);
        t += breakdown.io_s;
        root.push_child(TraceSpan::new("phase.compute", t, breakdown.compute_s));
        t += breakdown.compute_s;
        root.push_child(TraceSpan::new(
            "phase.mediator_db",
            t,
            breakdown.mediator_db_s,
        ));
        t += breakdown.mediator_db_s;
        root.push_child(TraceSpan::new(
            "phase.mediator_user",
            t,
            breakdown.mediator_user_s,
        ));
        QueryTrace::new(root)
    }

    /// Routes one query through the scan scheduler when coalescing is
    /// configured, or runs it as a batch of one.
    fn submit(&self, query: BatchQuery) -> StorageResult<BatchAnswer> {
        match &self.scheduler {
            Some(s) => s.submit(self, query),
            None => self
                .run_batch(vec![query])
                .pop()
                .unwrap_or_else(|| Err(StorageError::internal("batch of one produced no answer"))),
        }
    }

    /// Evaluates a threshold query: scatter to nodes, gather, assemble.
    /// Node outages (and deadline violations) degrade the answer instead
    /// of failing it unless [`ThresholdRequest::strict`] is set.
    pub fn get_threshold(&self, req: &ThresholdRequest) -> StorageResult<ThresholdResponse> {
        match self.submit(BatchQuery::Threshold(req.clone()))? {
            BatchAnswer::Threshold(r) => Ok(r),
            _ => Err(StorageError::internal(
                "threshold query yielded a non-threshold answer",
            )),
        }
    }

    /// Evaluates a PDF query over the same scan machinery (paper Fig. 2).
    pub fn get_pdf(
        &self,
        req: &ThresholdRequest,
        origin: f64,
        width: f64,
        nbins: usize,
    ) -> StorageResult<PdfResponse> {
        let q = BatchQuery::Pdf {
            req: req.clone(),
            origin,
            width,
            nbins,
        };
        match self.submit(q)? {
            BatchAnswer::Pdf(r) => Ok(r),
            _ => Err(StorageError::internal("pdf query yielded a non-pdf answer")),
        }
    }

    /// Evaluates a top-k query (no caching: results are tiny but the scan
    /// is the same as a threshold query).
    pub fn get_topk(&self, req: &ThresholdRequest, k: usize) -> StorageResult<TopKResponse> {
        match self.submit(BatchQuery::TopK {
            req: req.clone(),
            k,
        })? {
            BatchAnswer::TopK(r) => Ok(r),
            _ => Err(StorageError::internal(
                "top-k query yielded a non-top-k answer",
            )),
        }
    }

    /// Evaluates many threshold queries as one batch: queries over the
    /// same scan key share atom scans (each atom decoded once per group
    /// instead of once per query), with byte-identical results.
    pub fn get_threshold_batch(
        &self,
        reqs: &[ThresholdRequest],
    ) -> Vec<StorageResult<ThresholdResponse>> {
        self.run_batch(reqs.iter().cloned().map(BatchQuery::Threshold).collect())
            .into_iter()
            .map(|r| {
                r.and_then(|a| match a {
                    BatchAnswer::Threshold(t) => Ok(t),
                    _ => Err(StorageError::internal(
                        "threshold query yielded a non-threshold answer",
                    )),
                })
            })
            .collect()
    }

    /// Evaluates a set of queries, sharing one atom scan per
    /// [`ScanGroupKey`] group. Answers are positionally aligned with the
    /// input; a per-node failure inside a group is fanned out to every
    /// query of that group (and degraded per query by the usual policy).
    pub fn run_batch(&self, queries: Vec<BatchQuery>) -> Vec<StorageResult<BatchAnswer>> {
        let wall = std::time::Instant::now();
        let mut answers: Vec<Option<StorageResult<BatchAnswer>>> =
            queries.iter().map(|_| None).collect();
        let mut groups: Vec<(ScanGroupKey, Vec<usize>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let key = ScanGroupKey::of(q.request());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        for (_, idxs) in &groups {
            self.run_group(&queries, idxs, &mut answers, wall);
        }
        answers
            .into_iter()
            .map(|a| {
                a.unwrap_or_else(|| {
                    Err(StorageError::internal("query was never assigned an answer"))
                })
            })
            .collect()
    }

    /// Runs one shared-scan group: scatter a [`SharedScanRequest`] over
    /// one topology snapshot, then assemble each participant's answer.
    ///
    /// With `replication.k > 1` under [`ReadPolicy::Failover`], chunks of
    /// an unavailable (or deadline-blown) node are re-scattered to the
    /// next live replica in their chains, round by round, until every
    /// chunk is answered or its chain is exhausted. A successful failover
    /// leaves the answer *complete* — no [`DegradedInfo`] — and
    /// byte-identical to an unfaulted run; only chunks whose whole chain
    /// died degrade (or fail, under `strict`) the queries they intersect.
    fn run_group(
        &self,
        queries: &[BatchQuery],
        idxs: &[usize],
        answers: &mut [Option<StorageResult<BatchAnswer>>],
        wall: std::time::Instant,
    ) {
        let Some(first) = idxs
            .first()
            .and_then(|&i| queries.get(i))
            .map(BatchQuery::request)
        else {
            return;
        };
        let procs = self.procs_for(first);
        let topo = self.topology_snapshot();
        let layout = Arc::clone(&topo.layout);
        let live = topo.live_count();
        let failover = layout.replication_k() > 1
            && self.config.replication.read_policy == ReadPolicy::Failover;
        let deadline = first.node_deadline_s;
        let participants: Vec<ScanParticipant> = idxs
            .iter()
            .filter_map(|&i| queries.get(i))
            .map(BatchQuery::participant)
            .collect();
        let modelled_time =
            |o: &SharedOutcome| o.result.cache_lookup_s + o.result.io_s + o.result.compute_s;
        // one scatter wave: targeted nodes evaluate their assigned chunks
        // in parallel against the snapshot
        let scatter = |targets: &[(usize, Vec<usize>)], canonical: bool| -> Vec<WaveEntry> {
            let mut chunks: Vec<Vec<Chunk>> = vec![Vec::new(); topo.nodes.len()];
            for (node, cidxs) in targets {
                let assigned = cidxs
                    .iter()
                    .filter_map(|&c| layout.chunks().get(c).copied())
                    .collect();
                if let Some(slot) = chunks.get_mut(*node) {
                    *slot = assigned;
                }
            }
            let assignment = Arc::new(ScanAssignment {
                layout: Arc::clone(&layout),
                chunks,
                canonical,
            });
            let req = SharedScanRequest {
                dataset: self.dataset.clone(),
                raw_field: first.raw_field.clone(),
                derived: first.derived,
                timestep: first.timestep,
                mode: first.mode,
                procs,
                participants: participants.clone(),
                assignment,
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|(node, _)| {
                        let req = &req;
                        let peers = &topo.nodes;
                        let node = *node;
                        let runtime = peers.get(node).and_then(Option::as_ref).map(Arc::clone);
                        scope.spawn(move || match runtime {
                            Some(runtime) => runtime.evaluate_shared(peers, req),
                            None => Err(StorageError::NodeUnavailable {
                                node,
                                detail: "scatter target is not a live member".into(),
                            }),
                        })
                    })
                    .collect();
                targets
                    .iter()
                    .zip(handles)
                    .map(|((node, cidxs), h)| WaveEntry {
                        node: *node,
                        chunk_idxs: cidxs.clone(),
                        result: h.join().unwrap_or_else(|_| {
                            Err(StorageError::internal("node evaluation thread panicked"))
                        }),
                    })
                    .collect()
            })
        };
        // wave 0: the canonical assignment over every live node. Entries
        // land in `done` in wave order (node-id order within a wave), so
        // an unfaulted run is ordered exactly like the pre-failover code.
        let initial: Vec<(usize, Vec<usize>)> = topo
            .live()
            .map(|(id, _)| (id, layout.chunk_indices_of_node(id)))
            .collect();
        let mut wave = scatter(&initial, true);
        let mut done: Vec<(usize, Vec<Option<SharedOutcome>>)> = Vec::new();
        let mut errors: Vec<(usize, StorageError)> = Vec::new();
        let mut excluded: HashSet<usize> = HashSet::new();
        let mut failed_nodes: Vec<FailedNode> = Vec::new();
        let mut lost_chunks: Vec<usize> = Vec::new();
        let mut fatal: Option<StorageError> = None;
        loop {
            let mut orphans: Vec<usize> = Vec::new();
            for e in wave.drain(..) {
                match e.result {
                    Ok(outs) => {
                        // under failover a deadline violation is handled
                        // like an outage: the node's chunks move on
                        let blown = failover
                            && deadline.is_some_and(|d| outs.iter().any(|o| modelled_time(o) > d));
                        if blown {
                            tdb_obs::add("node.deadline_exceeded", 1);
                            let t = outs.iter().map(&modelled_time).fold(0.0f64, f64::max);
                            let d = deadline.unwrap_or_default();
                            excluded.insert(e.node);
                            failed_nodes.push(FailedNode {
                                node: e.node,
                                reason: format!("deadline exceeded: modelled {t:.3}s > {d:.3}s"),
                            });
                            orphans.extend(e.chunk_idxs);
                        } else {
                            done.push((e.node, outs.into_iter().map(Some).collect()));
                        }
                    }
                    Err(err) if failover && err.is_unavailable() => {
                        excluded.insert(e.node);
                        failed_nodes.push(FailedNode {
                            node: e.node,
                            reason: err.to_string(),
                        });
                        orphans.extend(e.chunk_idxs);
                    }
                    // corruption is never papered over by replicas
                    Err(err) if failover => {
                        fatal.get_or_insert(err);
                    }
                    Err(err) => errors.push((e.node, err)),
                }
            }
            if fatal.is_some() || orphans.is_empty() {
                break;
            }
            orphans.sort_unstable();
            orphans.dedup();
            let mut retargets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for c in orphans {
                let replacement = layout.replicas_of_chunk(c).iter().copied().find(|r| {
                    !excluded.contains(r) && topo.nodes.get(*r).is_some_and(Option::is_some)
                });
                match replacement {
                    Some(r) => retargets.entry(r).or_default().push(c),
                    None => lost_chunks.push(c),
                }
            }
            if retargets.is_empty() {
                break;
            }
            let moved: u64 = retargets.values().map(|v| v.len() as u64).sum();
            tdb_obs::add("replication.failover.rounds", 1);
            tdb_obs::add("replication.failover.chunks", moved);
            let targets: Vec<(usize, Vec<usize>)> = retargets.into_iter().collect();
            wave = scatter(&targets, false);
        }
        if failover && !failed_nodes.is_empty() {
            tdb_obs::add("replication.failover.nodes", failed_nodes.len() as u64);
        }
        if !lost_chunks.is_empty() {
            tdb_obs::add("replication.lost_chunks", lost_chunks.len() as u64);
        }
        for (j, &qi) in idxs.iter().enumerate() {
            let Some((query, slot)) = queries.get(qi).zip(answers.get_mut(qi)) else {
                continue;
            };
            let take_done = |done: &mut Vec<(usize, Vec<Option<SharedOutcome>>)>| {
                let mut results = Vec::with_capacity(done.len());
                let mut ids = Vec::with_capacity(done.len());
                for (node, outs) in done.iter_mut() {
                    let o = outs.get_mut(j).and_then(Option::take).ok_or_else(|| {
                        StorageError::internal("participant outcome already taken")
                    })?;
                    results.push(o);
                    ids.push(*node);
                }
                Ok((results, ids))
            };
            let answer = if let Some(err) = &fatal {
                Err(clone_storage_error(err))
            } else if failover {
                let req = query.request();
                let missing: Vec<Box3> = lost_chunks
                    .iter()
                    .filter_map(|&c| layout.chunks().get(c))
                    .filter_map(|chunk| chunk.grid_box().intersect(&req.query_box))
                    .collect();
                if !missing.is_empty() && req.strict {
                    Err(StorageError::NodeUnavailable {
                        node: failed_nodes.first().map_or(0, |f| f.node),
                        detail: "replica chains exhausted for part of the query box".to_string(),
                    })
                } else {
                    let degraded = if missing.is_empty() {
                        None
                    } else {
                        tdb_obs::add("query.degraded", 1);
                        Some(DegradedInfo {
                            failed_nodes: failed_nodes.clone(),
                            missing_boxes: missing,
                        })
                    };
                    take_done(&mut done).and_then(|(results, ids)| {
                        self.assemble(query, results, ids, degraded, procs, live, wall)
                    })
                }
            } else {
                // single-copy / PrimaryOnly: the historical per-node
                // degradation policy, in node-id order
                take_done(&mut done).and_then(|(results, ids)| {
                    let mut outcomes: Vec<(usize, StorageResult<SharedOutcome>)> =
                        ids.into_iter().zip(results.into_iter().map(Ok)).collect();
                    for (node, err) in &errors {
                        outcomes.push((*node, Err(clone_storage_error(err))));
                    }
                    outcomes.sort_by_key(|(node, _)| *node);
                    let req = query.request();
                    let (results, ids, degraded) = self.degrade_filter(
                        &layout,
                        outcomes,
                        modelled_time,
                        &req.query_box,
                        req.strict,
                        deadline,
                    )?;
                    self.assemble(query, results, ids, degraded, procs, live, wall)
                })
            };
            *slot = Some(answer);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        query: &BatchQuery,
        results: Vec<SharedOutcome>,
        node_ids: Vec<usize>,
        degraded: Option<DegradedInfo>,
        procs: usize,
        nnodes: usize,
        wall: std::time::Instant,
    ) -> StorageResult<BatchAnswer> {
        match query {
            BatchQuery::Threshold(_) => self
                .assemble_threshold(results, node_ids, degraded, procs, nnodes, wall)
                .map(BatchAnswer::Threshold),
            BatchQuery::Pdf {
                origin,
                width,
                nbins,
                ..
            } => self
                .assemble_pdf(
                    *origin, *width, *nbins, results, node_ids, degraded, procs, nnodes, wall,
                )
                .map(BatchAnswer::Pdf),
            BatchQuery::TopK { k, .. } => self
                .assemble_topk(*k, results, node_ids, degraded, procs, nnodes, wall)
                .map(BatchAnswer::TopK),
        }
    }

    fn assemble_threshold(
        &self,
        mut results: Vec<SharedOutcome>,
        node_ids: Vec<usize>,
        degraded: Option<DegradedInfo>,
        procs: usize,
        nnodes: usize,
        wall: std::time::Instant,
    ) -> StorageResult<ThresholdResponse> {
        let mut points = Vec::new();
        let mut breakdown = TimeBreakdown::default();
        let mut cache_hits = 0;
        for o in &results {
            breakdown = breakdown.max_merge(&o.result.breakdown());
            cache_hits += usize::from(o.result.cache_hit);
        }
        {
            let node_results: Vec<&NodeResult> = results.iter().map(|o| &o.result).collect();
            breakdown.io_s = self.cluster_io_ref(&node_results, procs);
        }
        let node_points: Vec<u64> = results
            .iter()
            .map(|o| o.result.points.len() as u64)
            .collect();
        let node_models: Vec<NodeTimeModel> = results.iter().map(|o| o.result.model).collect();
        for o in &mut results {
            points.append(&mut o.result.points);
        }
        points.sort_unstable_by_key(|p| p.zindex);
        let n = points.len() as u64;
        breakdown.mediator_db_s = self
            .registry
            .profile(self.lan)
            .time(2 * nnodes as u64, wire::binary_result_bytes(n));
        breakdown.mediator_user_s = self
            .registry
            .profile(self.wan)
            .time(2, wire::xml_result_bytes(n));
        let wall_s = wall.elapsed().as_secs_f64();
        let refs: Vec<&NodeResult> = results.iter().map(|o| &o.result).collect();
        let trace = self.build_trace(
            "threshold",
            &refs,
            &node_ids,
            &node_points,
            &breakdown,
            n,
            wall_s,
            degraded.as_ref(),
        );
        tdb_obs::add("query.threshold.count", 1);
        tdb_obs::add("query.points_returned", n);
        tdb_obs::observe("query.threshold.wall_s", wall_s);
        Ok(ThresholdResponse {
            points,
            breakdown,
            cache_hits,
            nodes: nnodes,
            wall_s,
            node_models,
            trace: Some(trace),
            degraded,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_pdf(
        &self,
        origin: f64,
        width: f64,
        nbins: usize,
        mut results: Vec<SharedOutcome>,
        node_ids: Vec<usize>,
        degraded: Option<DegradedInfo>,
        procs: usize,
        nnodes: usize,
        wall: std::time::Instant,
    ) -> StorageResult<PdfResponse> {
        let mut hist = Histogram::new(origin, width, nbins);
        let mut breakdown = TimeBreakdown::default();
        for o in &mut results {
            if let Some(h) = o.histogram.take() {
                hist.merge(&h);
            }
            breakdown = breakdown.max_merge(&o.result.breakdown());
        }
        let node_results: Vec<&NodeResult> = results.iter().map(|o| &o.result).collect();
        breakdown.io_s = self.cluster_io_ref(&node_results, procs);
        breakdown.mediator_db_s = self
            .registry
            .profile(self.lan)
            .time(2 * nnodes as u64, (nbins as u64 + 1) * 16);
        breakdown.mediator_user_s = self
            .registry
            .profile(self.wan)
            .time(2, (nbins as u64 + 1) * 64);
        let wall_s = wall.elapsed().as_secs_f64();
        let node_points = vec![0u64; node_results.len()];
        let trace = self.build_trace(
            "pdf",
            &node_results,
            &node_ids,
            &node_points,
            &breakdown,
            0,
            wall_s,
            degraded.as_ref(),
        );
        tdb_obs::add("query.pdf.count", 1);
        tdb_obs::observe("query.pdf.wall_s", wall_s);
        Ok(PdfResponse {
            histogram: hist,
            breakdown,
            wall_s,
            trace: Some(trace),
            degraded,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_topk(
        &self,
        k: usize,
        mut results: Vec<SharedOutcome>,
        node_ids: Vec<usize>,
        degraded: Option<DegradedInfo>,
        procs: usize,
        nnodes: usize,
        wall: std::time::Instant,
    ) -> StorageResult<TopKResponse> {
        // mirror the historical per-node truncation: each node contributes
        // at most its own top k, then the mediator keeps the global top k
        let mut points = Vec::new();
        let mut node_points = Vec::with_capacity(results.len());
        for o in &mut results {
            let mut p = std::mem::take(&mut o.result.points);
            p.sort_unstable_by(|a, b| b.value.total_cmp(&a.value));
            p.truncate(k);
            node_points.push(p.len() as u64);
            points.append(&mut p);
        }
        let mut breakdown = TimeBreakdown::default();
        let node_results: Vec<&NodeResult> = results.iter().map(|o| &o.result).collect();
        for r in &node_results {
            breakdown = breakdown.max_merge(&r.breakdown());
        }
        breakdown.io_s = self.cluster_io_ref(&node_results, procs);
        points.sort_unstable_by(|a, b| b.value.total_cmp(&a.value));
        points.truncate(k);
        let n = points.len() as u64;
        breakdown.mediator_db_s = self
            .registry
            .profile(self.lan)
            .time(2 * nnodes as u64, wire::binary_result_bytes(n));
        breakdown.mediator_user_s = self
            .registry
            .profile(self.wan)
            .time(2, wire::xml_result_bytes(n));
        let wall_s = wall.elapsed().as_secs_f64();
        let trace = self.build_trace(
            "topk",
            &node_results,
            &node_ids,
            &node_points,
            &breakdown,
            n,
            wall_s,
            degraded.as_ref(),
        );
        tdb_obs::add("query.topk.count", 1);
        tdb_obs::add("query.points_returned", n);
        tdb_obs::observe("query.topk.wall_s", wall_s);
        Ok(TopKResponse {
            points,
            breakdown,
            wall_s,
            trace: Some(trace),
            degraded,
        })
    }

    /// Reads a raw-field cutout (no kernel), as a user downloading data
    /// would. Returns the assembled field over `cutout` and the breakdown
    /// including the XML-inflated user transfer (§5.3 baseline).
    pub fn get_cutout(
        &self,
        raw_field: &str,
        timestep: u32,
        cutout: &Box3,
    ) -> StorageResult<(VectorField<3>, TimeBreakdown)> {
        let (nx, ny, nz) = self.grid.dims();
        let (hx, hy, hz) = cutout.hi3();
        assert!(
            (hx as usize) < nx && (hy as usize) < ny && (hz as usize) < nz,
            "cutout outside grid"
        );
        let topo = self.topology_snapshot();
        let mut session = IoSession::new();
        let mut field = VectorField::zeros(nx, ny, nz);
        let mut ncomp = 1u64;
        for atom in cutout.atoms() {
            let rec = storage_source(&topo, atom)?
                .fetch_atom(
                    raw_field,
                    AtomKey::new(timestep, atom.zindex()),
                    &mut session,
                )?
                .ok_or_else(|| tdb_storage::StorageError::MissingData {
                    detail: format!("atom {atom:?} of {raw_field} timestep {timestep}"),
                })?;
            ncomp = u64::from(rec.ncomp);
            field.insert_atom(atom, &pad_components(&rec.data, usize::from(rec.ncomp)));
        }
        let mut breakdown = TimeBreakdown {
            io_s: session.makespan(&self.registry),
            ..Default::default()
        };
        let npoints = cutout.num_points();
        breakdown.mediator_db_s = self
            .registry
            .profile(self.lan)
            .time(2 * topo.live_count() as u64, npoints * ncomp * 4);
        breakdown.mediator_user_s = self
            .registry
            .profile(self.wan)
            .time(2, wire::xml_cutout_bytes(npoints, ncomp));
        let sub = field.extract_box(cutout);
        Ok((sub, breakdown))
    }

    /// Interpolates a raw field at arbitrary positions (grid units) with
    /// Lagrange polynomials — the JHTDB `GetVelocity`-style point query
    /// (paper §2 lists interpolation among the built-in routines).
    ///
    /// Positions wrap on periodic axes and clamp at walls.
    pub fn get_points(
        &self,
        raw_field: &str,
        timestep: u32,
        positions: &[[f64; 3]],
        order: tdb_kernels::interp::LagOrder,
    ) -> StorageResult<(Vec<[f32; 3]>, TimeBreakdown)> {
        use crate::assemble::{assemble_padded, needed_atoms};
        let dims = self.grid.dims();
        let (ex, ey, ez) = (dims.0 as f64, dims.1 as f64, dims.2 as f64);
        let &[per_x, per_y, per_z] = &self.grid.periodic;
        // wrap on periodic axes, clamp at walls
        let clip = |v: f64, extent: f64, periodic: bool| {
            if periodic {
                v.rem_euclid(extent)
            } else {
                v.clamp(0.0, extent - 1.0)
            }
        };
        let topo = self.topology_snapshot();
        let mut session = IoSession::new();
        let mut out = Vec::with_capacity(positions.len());
        let halo = order.halo();
        for &[rx, ry, rz] in positions {
            let (px, py, pz) = (
                clip(rx, ex, per_x),
                clip(ry, ey, per_y),
                clip(rz, ez, per_z),
            );
            let (cx, cy, cz) = (
                (px.floor() as u32).min(dims.0 as u32 - 1),
                (py.floor() as u32).min(dims.1 as u32 - 1),
                (pz.floor() as u32).min(dims.2 as u32 - 1),
            );
            let cell = [cx, cy, cz];
            let domain = Box3::new(cell, cell);
            let needed = needed_atoms(&domain, halo, dims, self.grid.periodic);
            let mut atoms = std::collections::HashMap::new();
            for atom in needed {
                let recs = storage_source(&topo, atom)?.fetch_atoms(
                    raw_field,
                    timestep,
                    &[atom.zindex()],
                    &mut session,
                )?;
                let rec = recs.into_iter().next().ok_or_else(|| {
                    tdb_storage::StorageError::MissingData {
                        detail: format!("atom {atom:?} of {raw_field} timestep {timestep}"),
                    }
                })?;
                atoms.insert(rec.key.zindex, rec);
            }
            let padded = assemble_padded(&domain, halo, dims, self.grid.periodic, &atoms)?;
            let local = [px - f64::from(cx), py - f64::from(cy), pz - f64::from(cz)];
            out.push(tdb_kernels::interp::interpolate::<3>(&padded, order, local));
        }
        let mut breakdown = TimeBreakdown {
            io_s: session.makespan(&self.registry),
            ..Default::default()
        };
        breakdown.mediator_db_s = self
            .registry
            .profile(self.lan)
            .time(2 * topo.live_count() as u64, positions.len() as u64 * 12);
        breakdown.mediator_user_s = self
            .registry
            .profile(self.wan)
            .time(2, wire::xml_cutout_bytes(positions.len() as u64, 3));
        Ok((out, breakdown))
    }

    /// Clears every node's semantic cache (cold-cache experiments).
    pub fn clear_caches(&self) {
        for n in self.topology.read().nodes.iter().flatten() {
            n.cache.clear();
            n.pdf_cache.clear();
        }
    }

    /// Drops cache entries for one (field, derived, timestep) — the
    /// paper's per-run "cache entries ... were dropped" setup.
    pub fn invalidate_cache_entry(&self, raw_field: &str, derived: DerivedField, timestep: u32) {
        let key = tdb_cache::CacheInfoKey {
            dataset: self.dataset.clone(),
            field: format!("{raw_field}/{}", derived.name()),
            timestep,
        };
        for n in self.topology.read().nodes.iter().flatten() {
            n.cache.invalidate(&key);
        }
    }

    /// Flips bits in the stored rows of one cached threshold entry on
    /// every node that holds it, leaving its checksum stale (chaos
    /// testing: the next lookup must quarantine and self-heal the entry).
    /// Returns how many node-local entries were corrupted.
    pub fn corrupt_cache_entry(
        &self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
    ) -> usize {
        let key = tdb_cache::CacheInfoKey {
            dataset: self.dataset.clone(),
            field: format!("{raw_field}/{}", derived.name()),
            timestep,
        };
        self.topology
            .read()
            .nodes
            .iter()
            .flatten()
            .filter(|n| n.cache.corrupt_entry(&key))
            .count()
    }

    /// Clears every node's buffer pool (cold-I/O experiments).
    pub fn clear_buffer_pools(&self) {
        for n in self.topology.read().nodes.iter().flatten() {
            n.buffer_pool().clear();
        }
    }

    /// Aggregate cache statistics across nodes (semantic + PDF caches).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for n in self.topology.read().nodes.iter().flatten() {
            for s in [n.cache.stats(), n.pdf_cache.stats()] {
                total.hits += s.hits;
                total.misses += s.misses;
                total.inserts += s.inserts;
                total.evictions += s.evictions;
                total.conflicts += s.conflicts;
                total.quarantined += s.quarantined;
            }
        }
        total
    }
}

/// The first live node along an atom's replica chain — the storage
/// source for direct point access (cutouts, interpolation). Down-marked
/// nodes keep serving storage (only their query evaluator refuses), so
/// the chain head is normally the primary, exactly as before replication.
pub(crate) fn storage_source(topo: &Topology, atom: AtomCoord) -> StorageResult<&Arc<NodeRuntime>> {
    let chunk = topo.layout.chunk_index_of_atom(atom);
    topo.layout
        .replicas_of_chunk(chunk)
        .iter()
        .find_map(|&r| topo.nodes.get(r).and_then(Option::as_ref))
        .ok_or_else(|| StorageError::internal(format!("no live replica stores atom {atom:?}")))
}

/// Pads a record payload (component-major) out to three components.
fn pad_components(data: &[f32], ncomp: usize) -> Vec<f32> {
    use tdb_zorder::ATOM_POINTS;
    let mut out = vec![0.0f32; 3 * ATOM_POINTS];
    for (dst, src) in out
        .chunks_exact_mut(ATOM_POINTS)
        .zip(data.chunks_exact(ATOM_POINTS))
        .take(ncomp.min(3))
    {
        dst.copy_from_slice(src);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_zones_is_contiguous_and_complete() {
        let zones = vec![ZRange::new(0, 99)];
        let parts = split_zones(&zones, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, 99);
        let total: u64 = parts.iter().map(ZRange::len).sum();
        assert_eq!(total, 100);
        for w in parts.windows(2) {
            assert_eq!(w[0].end + 1, w[1].start);
        }
    }

    #[test]
    fn split_zones_handles_more_parts_than_atoms() {
        let zones = vec![ZRange::new(0, 1)];
        let parts = split_zones(&zones, 8);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn pad_components_zero_fills() {
        use tdb_zorder::ATOM_POINTS;
        let data = vec![2.0f32; ATOM_POINTS];
        let p = pad_components(&data, 1);
        assert_eq!(p.len(), 3 * ATOM_POINTS);
        assert_eq!(p[0], 2.0);
        assert_eq!(p[ATOM_POINTS], 0.0);
    }
}
