//! Cluster configuration.

use std::sync::Arc;

use tdb_kernels::FdOrder;
use tdb_storage::{CompressionConfig, CompressionMode, EvictionPolicyKind, FaultPlan};

use crate::placement::PlacementMode;

/// How the mediator reads in the presence of replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Only primaries are scanned; a dead primary degrades its boxes
    /// (the pre-replication behaviour, and the only choice at k=1).
    PrimaryOnly,
    /// A failed or deadline-blown primary's chunks are re-scanned on the
    /// next live replica in the chain, so the answer stays complete.
    Failover,
}

/// k-way partition replication (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Copies of every chunk, on `k` distinct nodes. 1 = no replication.
    pub k: usize,
    /// Read-side failover policy.
    pub read_policy: ReadPolicy,
    /// How replica chains are derived. [`PlacementMode::Rendezvous`] is
    /// required for node join/leave rebalancing.
    pub placement: PlacementMode,
    /// Device sets provisioned ahead for future `join_node` calls
    /// (a simulated cluster racks its spare hardware at build time).
    pub spare_nodes: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            k: 1,
            read_policy: ReadPolicy::Failover,
            placement: PlacementMode::Contiguous,
            spare_nodes: 0,
        }
    }
}

impl ReplicationConfig {
    /// `k` copies with read failover over the default placement.
    pub fn k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// `k` copies over rendezvous placement (join/leave capable).
    pub fn rendezvous(k: usize) -> Self {
        Self {
            k,
            placement: PlacementMode::Rendezvous,
            ..Self::default()
        }
    }
}

/// Shape and sizing of the simulated analysis cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of database nodes (the paper's MHD dataset spans 4).
    pub num_nodes: usize,
    /// Worker processes per node evaluating chunks in parallel.
    pub procs_per_node: usize,
    /// Disk arrays per node (paper: four RAID-5 arrays).
    pub arrays_per_node: usize,
    /// Buffer-pool capacity per node, bytes.
    pub bufferpool_bytes: usize,
    /// Buffer-pool eviction policy (LRU default; CLOCK and SIEVE for
    /// scan-resistant caching — see DESIGN.md).
    pub eviction: EvictionPolicyKind,
    /// Semantic-cache SSD budget per node, bytes (paper: ~200 GB SSD).
    pub cache_budget_bytes: u64,
    /// Chunk edge length in atoms (chunk = `(8·chunk_atoms)³` grid points).
    /// Must be a power of two dividing the atom lattice on every axis.
    pub chunk_atoms: u32,
    /// Finite-difference order for derived-field kernels.
    pub fd_order: FdOrder,
    /// Calibration factor applied to measured kernel CPU time. The device
    /// models emulate the paper's 2008-era cluster, so pairing them with a
    /// modern host CPU would skew the I/O : compute ratio; the repro
    /// harness sets ~8 to stand in for the 2.66 GHz Harpertown nodes
    /// (see EXPERIMENTS.md). Default 1.0 = report measured CPU time.
    pub compute_scale: f64,
    /// When set, kernel compute time is modelled as this many seconds per
    /// evaluated grid point instead of measured thread CPU time, making
    /// the reported time model fully deterministic (used by the scaling
    /// tests so they cannot flake on loaded machines).
    pub synthetic_compute_s_per_point: Option<f64>,
    /// Multi-query scan coalescing. `None` (default) evaluates every
    /// query independently; `Some` routes queries through the mediator's
    /// scan scheduler, which batches concurrent queries over the same
    /// scan key into one shared atom scan.
    pub coalesce: Option<CoalesceConfig>,
    /// Deterministic fault-injection plan threaded through every node's
    /// buffer pool, semantic cache and query evaluator. `None` (default)
    /// disables injection entirely.
    pub faults: Option<Arc<FaultPlan>>,
    /// Block codec for the raw-field partition files. `Off` (default)
    /// keeps the seed on-disk format byte for byte; `Lossless` and
    /// `Lossy` write self-describing compressed blocks (DESIGN.md §10).
    pub compression: CompressionConfig,
    /// k-way partition replication with read failover (DESIGN.md §11).
    /// The default (`k = 1`, contiguous placement) reproduces the
    /// unreplicated layout byte for byte.
    pub replication: ReplicationConfig,
}

/// Scan-scheduler batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// How long the first query for a scan key holds the batch open
    /// waiting for companions, in milliseconds.
    pub window_ms: u64,
    /// Close the batch early once this many queries joined.
    pub max_batch: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        Self {
            window_ms: 2,
            max_batch: 16,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_nodes: 4,
            procs_per_node: 4,
            arrays_per_node: 4,
            bufferpool_bytes: 256 << 20,
            eviction: EvictionPolicyKind::default(),
            cache_budget_bytes: 200 << 30,
            chunk_atoms: 4,
            fd_order: FdOrder::O4,
            compute_scale: 1.0,
            synthetic_compute_s_per_point: None,
            coalesce: None,
            faults: None,
            compression: CompressionConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration against a grid.
    ///
    /// # Panics
    /// Panics when a constraint is violated; configuration errors are
    /// programming errors in this embedded setting.
    pub fn validate(&self, dims: (usize, usize, usize)) {
        assert!(self.num_nodes >= 1, "need at least one node");
        assert!(self.procs_per_node >= 1, "need at least one process");
        assert!(self.arrays_per_node >= 1, "need at least one disk array");
        assert!(
            self.chunk_atoms.is_power_of_two(),
            "chunk_atoms must be a power of two for contiguous z-ranges"
        );
        let w = 8 * self.chunk_atoms as usize;
        for (ax, n) in [dims.0, dims.1, dims.2].into_iter().enumerate() {
            assert!(
                n % w == 0,
                "grid axis {ax} extent {n} is not a multiple of the chunk width {w}"
            );
        }
        let codec = self.compression;
        assert!(
            (1..=8).contains(&codec.stride),
            "compression stride must be in 1..=8"
        );
        if codec.mode == CompressionMode::Lossy {
            assert!(
                codec.max_error.is_finite() && codec.max_error >= 0.0,
                "lossy compression needs a finite non-negative max_error"
            );
        }
        let r = self.replication;
        assert!(
            (1..=self.num_nodes).contains(&r.k),
            "replication factor {} must be in 1..=num_nodes ({})",
            r.k,
            self.num_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_nodes, 4);
        assert_eq!(c.procs_per_node, 4);
        assert_eq!(c.arrays_per_node, 4);
        c.validate((64, 64, 64));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn validate_rejects_indivisible_grid() {
        ClusterConfig::default().validate((48, 64, 64));
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn validate_rejects_k_beyond_nodes() {
        let c = ClusterConfig {
            num_nodes: 2,
            replication: ReplicationConfig::k(3),
            ..Default::default()
        };
        c.validate((64, 64, 64));
    }

    #[test]
    fn default_replication_is_single_copy() {
        let r = ReplicationConfig::default();
        assert_eq!(r.k, 1);
        assert_eq!(r.placement, PlacementMode::Contiguous);
        assert_eq!(
            ReplicationConfig::rendezvous(2).placement,
            PlacementMode::Rendezvous
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_non_power_chunk() {
        let c = ClusterConfig {
            chunk_atoms: 3,
            ..Default::default()
        };
        c.validate((192, 192, 192));
    }
}
