//! Per-node query evaluation.
//!
//! A node holds a partitioned table per raw field (over every chunk it
//! stores a replica of), a buffer pool, and a semantic cache on its SSD.
//! Threshold subqueries follow Algorithm 1: probe the cache, otherwise
//! evaluate from the raw data chunk-by-chunk with `procs` worker
//! processes and update the cache.
//!
//! A node holds no placement state of its own: which chunks it scans
//! arrives with every [`SharedScanRequest`] as a [`ScanAssignment`]
//! computed by the mediator from one topology snapshot (`placement.rs`
//! is the single source of placement truth). That is what lets the
//! mediator re-target a dead node's chunks at a surviving replica.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use tdb_cache::{
    CacheConfig, CacheInfoKey, CacheLookup, PdfCache, PdfKey, PdfLookup, SemanticCache,
    ThresholdPoint,
};
use tdb_field::{Grid3, ScalarField};
use tdb_kernels::{DerivedField, DiffScheme};
use tdb_storage::device::{DeviceId, DeviceRegistry, IoSession};
use tdb_storage::{AtomKey, AtomRecord, BlockCache, FaultPlan, StorageError, StorageResult, Table};
use tdb_zorder::Box3;

use crate::assemble::{assemble_padded, needed_atoms};
use crate::cputime::thread_cpu_time_s;
#[allow(unused_imports)] // ScanAssignment appears in doc comments
use crate::scan::{ScanAssignment, ScanKernel, SharedOutcome, SharedScanRequest};
use crate::sim::{ChunkCost, NodeTimeModel};
use crate::timing::TimeBreakdown;

/// Whether a query does real work or only the disk reads (Fig. 8's
/// "I/O only" series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    Full,
    IoOnly,
}

/// The per-node share of a threshold query.
#[derive(Debug, Clone)]
pub struct ThresholdSubquery {
    pub dataset: String,
    pub raw_field: String,
    pub derived: DerivedField,
    pub timestep: u32,
    pub query_box: Box3,
    pub threshold: f64,
    pub use_cache: bool,
    pub mode: QueryMode,
    pub procs: usize,
}

impl ThresholdSubquery {
    /// Cache key for this (dataset, field, time-step).
    pub fn cache_key(&self) -> CacheInfoKey {
        CacheInfoKey {
            dataset: self.dataset.clone(),
            field: format!("{}/{}", self.raw_field, self.derived.name()),
            timestep: self.timestep,
        }
    }
}

/// Outcome of one node's threshold subquery.
#[derive(Debug)]
pub struct NodeResult {
    pub points: Vec<ThresholdPoint>,
    pub cache_hit: bool,
    /// Modelled + measured cache-probe time.
    pub cache_lookup_s: f64,
    /// Modelled I/O schedule time at the configured process count.
    pub io_s: f64,
    /// Strictly serial I/O schedule of this node's subquery (the mediator
    /// combines these with the global per-device floor).
    pub io_serial_s: f64,
    /// Modelled compute residency (total pipeline − I/O schedule), i.e.
    /// the measured kernel time as overlapped by the worker pipeline.
    pub compute_s: f64,
    /// Raw measured wall-clock of the node evaluation.
    pub wall_s: f64,
    /// Atoms fetched (local + halo) while evaluating from raw data.
    pub atoms_scanned: u64,
    /// Closed-form time model of this node's scan (zero on cache hits);
    /// lets callers evaluate `t(p)` at any process count from one run.
    pub model: NodeTimeModel,
    /// Device accesses of the whole subquery.
    pub session: IoSession,
}

impl NodeResult {
    /// This node's contribution to the cluster breakdown (communication
    /// phases are filled in by the mediator).
    pub fn breakdown(&self) -> TimeBreakdown {
        TimeBreakdown {
            cache_lookup_s: self.cache_lookup_s,
            io_s: self.io_s,
            compute_s: self.compute_s,
            ..Default::default()
        }
    }
}

/// One simulated database node.
pub struct NodeRuntime {
    pub id: usize,
    tables: HashMap<String, Table>,
    pub cache: SemanticCache,
    pub pdf_cache: PdfCache,
    pool: Arc<BlockCache>,
    grid: Arc<Grid3>,
    scheme: Arc<DiffScheme>,
    registry: Arc<DeviceRegistry>,
    lan: DeviceId,
    controller: DeviceId,
    compute_scale: f64,
    /// When set, replaces measured kernel CPU time with a deterministic
    /// per-grid-point cost (seconds), making the time model load-immune.
    synthetic_compute_s_per_point: Option<f64>,
    faults: Option<Arc<FaultPlan>>,
}

impl NodeRuntime {
    /// Assembles a node from its built tables and devices (used by
    /// [`crate::mediator::ClusterBuilder`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        tables: HashMap<String, Table>,
        pool: Arc<BlockCache>,
        ssd: DeviceId,
        controller: DeviceId,
        compute_scale: f64,
        synthetic_compute_s_per_point: Option<f64>,
        cache_budget_bytes: u64,
        grid: Arc<Grid3>,
        scheme: Arc<DiffScheme>,
        registry: Arc<DeviceRegistry>,
        lan: DeviceId,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self {
            id,
            tables,
            cache: SemanticCache::new(CacheConfig {
                budget_bytes: cache_budget_bytes,
                ssd,
                faults: faults.clone(),
            }),
            // histograms are tiny; a small slice of the SSD suffices
            pdf_cache: PdfCache::new(ssd, (cache_budget_bytes / 64).max(1 << 20)),
            pool,
            grid,
            scheme,
            registry,
            lan,
            controller,
            compute_scale,
            synthetic_compute_s_per_point,
            faults,
        }
    }

    /// Fails with [`StorageError::NodeUnavailable`] when the fault plan
    /// has this node marked dead. Only the node's *query evaluator* is
    /// gated: peers fetching halo atoms still reach its storage (the
    /// failover model of DESIGN.md — data stays reachable, compute dies),
    /// so one dead node degrades exactly its own boxes.
    fn check_available(&self) -> StorageResult<()> {
        if let Some(plan) = &self.faults {
            if plan.node_is_down(self.id) {
                tdb_obs::add("node.unavailable", 1);
                return Err(StorageError::NodeUnavailable {
                    node: self.id,
                    detail: "injected node failure".into(),
                });
            }
        }
        Ok(())
    }

    /// The node's buffer pool (exposed for cold-cache experiment setup).
    pub fn buffer_pool(&self) -> &BlockCache {
        &self.pool
    }

    /// Table for a raw field.
    pub fn table(&self, field: &str) -> StorageResult<&Table> {
        self.tables
            .get(field)
            .ok_or_else(|| StorageError::internal(format!("node {} has no field {field}", self.id)))
    }

    /// Point lookup used by peers fetching halo atoms.
    pub fn fetch_atom(
        &self,
        field: &str,
        key: AtomKey,
        session: &mut IoSession,
    ) -> StorageResult<Option<AtomRecord>> {
        self.table(field)?.get(key, session)
    }

    /// Batched halo fetch: one request for many atoms (sorted, unique
    /// zindexes), served by clustered-index range scans.
    pub fn fetch_atoms(
        &self,
        field: &str,
        timestep: u32,
        zindexes: &[u64],
        session: &mut IoSession,
    ) -> StorageResult<Vec<AtomRecord>> {
        let mut local = IoSession::new();
        let out = self.table(field)?.get_many(timestep, zindexes, &mut local);
        // every request and byte the arrays serve also crosses the node's
        // shared controller, which caps how far I/O parallelises
        let (ops, bytes) = (local.total_ops(), local.total_bytes());
        if bytes > 0 || ops > 0 {
            local.charge(self.controller, ops, bytes);
        }
        session.merge(&local);
        out
    }

    /// Evaluates a group of queries against one shared atom scan.
    ///
    /// Every participant's cache is probed first; the remaining misses
    /// share one pass over this node's chunks. Per chunk the scanned
    /// domain is the hull of all pending clips, so each atom is fetched
    /// and each derived field evaluated exactly once, then every pending
    /// kernel is applied over its own clip. Results are byte-identical to
    /// independent execution (kernels are pointwise over halo stencils),
    /// and every cache-eligible participant's entry is filled afterwards.
    ///
    /// Caches are only consulted (or filled) when the assignment is
    /// canonical: entries are keyed by the full query box but hold
    /// exactly this node's primary points, so a failover re-scan of
    /// another node's chunks must bypass them in both directions.
    pub fn evaluate_shared(
        &self,
        peers: &[Option<Arc<NodeRuntime>>],
        req: &SharedScanRequest,
    ) -> StorageResult<Vec<SharedOutcome>> {
        self.check_available()?;
        let _active = ActiveGuard::new();
        let wall = Instant::now();
        let key = req.cache_key();
        let cacheable = req.assignment.canonical;

        struct Slot {
            outcome: Option<SharedOutcome>,
            cache_lookup_s: f64,
            probe_session: IoSession,
            healing: bool,
        }
        fn take_outcome(s: Slot) -> StorageResult<SharedOutcome> {
            s.outcome
                .ok_or_else(|| StorageError::internal("participant slot never produced an outcome"))
        }
        let mut slots: Vec<Slot> = req
            .participants
            .iter()
            .map(|_| Slot {
                outcome: None,
                cache_lookup_s: 0.0,
                probe_session: IoSession::new(),
                healing: false,
            })
            .collect();

        // --- per-participant cache probes --------------------------------
        for (slot, part) in slots.iter_mut().zip(&req.participants) {
            if !part.use_cache || !cacheable {
                continue;
            }
            let probe = thread_cpu_time_s();
            let mut probe_session = IoSession::new();
            match &part.kernel {
                ScanKernel::Threshold { threshold } => {
                    let outcome =
                        self.cache
                            .lookup(&key, &part.query_box, *threshold, &mut probe_session);
                    slot.cache_lookup_s = (thread_cpu_time_s() - probe).max(0.0)
                        + probe_session.makespan(&self.registry);
                    match outcome {
                        CacheLookup::Hit(points) => {
                            self.report_session(&probe_session);
                            slot.outcome = Some(SharedOutcome {
                                result: NodeResult {
                                    points,
                                    cache_hit: true,
                                    cache_lookup_s: slot.cache_lookup_s,
                                    io_s: 0.0,
                                    io_serial_s: 0.0,
                                    compute_s: 0.0,
                                    wall_s: wall.elapsed().as_secs_f64(),
                                    atoms_scanned: 0,
                                    model: NodeTimeModel::default(),
                                    session: probe_session,
                                },
                                histogram: None,
                            });
                        }
                        // a quarantined entry falls through to the raw
                        // evaluation, whose insert below rebuilds it
                        CacheLookup::Quarantined => {
                            slot.healing = true;
                            slot.probe_session = probe_session;
                        }
                        CacheLookup::Miss => slot.probe_session = probe_session,
                    }
                }
                ScanKernel::Pdf {
                    origin,
                    width,
                    nbins,
                } => {
                    let pdf_key = PdfKey::new(key.clone(), *origin, *width, *nbins as u32);
                    let outcome =
                        self.pdf_cache
                            .lookup(&pdf_key, &part.query_box, &mut probe_session);
                    slot.cache_lookup_s = (thread_cpu_time_s() - probe).max(0.0)
                        + probe_session.makespan(&self.registry);
                    if let PdfLookup::Hit(counts) = outcome {
                        let mut hist = tdb_field::Histogram::new(*origin, *width, *nbins);
                        hist.set_counts(&counts);
                        self.report_session(&probe_session);
                        slot.outcome = Some(SharedOutcome {
                            result: NodeResult {
                                points: Vec::new(),
                                cache_hit: true,
                                cache_lookup_s: slot.cache_lookup_s,
                                io_s: 0.0,
                                io_serial_s: 0.0,
                                compute_s: 0.0,
                                wall_s: wall.elapsed().as_secs_f64(),
                                atoms_scanned: 0,
                                model: NodeTimeModel::default(),
                                session: probe_session,
                            },
                            histogram: Some(hist),
                        });
                    } else {
                        slot.probe_session = probe_session;
                    }
                }
                ScanKernel::TopK => {}
            }
        }

        let pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.outcome.is_none())
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            return slots.into_iter().map(take_outcome).collect();
        }

        // --- shared scan over all pending participants -------------------
        // per chunk, scan the hull of every pending clip so each atom is
        // decoded once no matter how many queries need it
        struct ScanTask {
            domain: Box3,
            clips: Vec<(usize, Box3)>,
        }
        let mut tasks: Vec<ScanTask> = Vec::new();
        for c in req.assignment.chunks_of(self.id) {
            let grid_box = c.grid_box();
            let mut clips = Vec::new();
            for &i in &pending {
                let Some(part) = req.participants.get(i) else {
                    continue;
                };
                if let Some(clip) = grid_box.intersect(&part.query_box) {
                    clips.push((i, clip));
                }
            }
            let Some(&(_, first)) = clips.first() else {
                continue;
            };
            let domain = clips.iter().skip(1).fold(first, |d, (_, b)| d.hull(b));
            tasks.push(ScanTask { domain, clips });
        }

        enum SlotOut {
            Points(Vec<ThresholdPoint>),
            Hist(tdb_field::Histogram),
        }
        type TaskOutcome = (Vec<(usize, SlotOut)>, ChunkCost, IoSession, u64, u64);
        let results: Vec<StorageResult<TaskOutcome>> =
            self.run_workers(req.procs, &tasks, |task: &ScanTask| {
                let mut chunk_session = IoSession::new();
                let atoms =
                    self.fetch_atoms_shared(req, &task.domain, peers, &mut chunk_session)?;
                let chunk_atoms = atoms.len() as u64;
                let saved = chunk_atoms * (task.clips.len() as u64 - 1);
                let mut outs: Vec<(usize, SlotOut)> = Vec::new();
                let mut compute_s = 0.0;
                if req.mode == QueryMode::Full {
                    let c0 = thread_cpu_time_s();
                    let halo = req.derived.halo(&self.scheme);
                    let padded = assemble_padded(
                        &task.domain,
                        halo,
                        self.grid.dims(),
                        self.grid.periodic,
                        &atoms,
                    )?;
                    let (dlx, dly, dlz) = task.domain.lo3();
                    let norm = req.derived.eval(
                        &padded,
                        &self.scheme,
                        [dlx as usize, dly as usize, dlz as usize],
                    );
                    for (i, clip) in &task.clips {
                        let Some(part) = req.participants.get(*i) else {
                            continue;
                        };
                        let out = match &part.kernel {
                            ScanKernel::Threshold { threshold } => SlotOut::Points(
                                threshold_scan_clip(&norm, &task.domain, clip, *threshold),
                            ),
                            ScanKernel::TopK => SlotOut::Points(threshold_scan_clip(
                                &norm,
                                &task.domain,
                                clip,
                                f64::NEG_INFINITY,
                            )),
                            ScanKernel::Pdf {
                                origin,
                                width,
                                nbins,
                            } => {
                                let mut hist = tdb_field::Histogram::new(*origin, *width, *nbins);
                                pdf_scan_clip(&norm, &task.domain, clip, &mut hist);
                                SlotOut::Hist(hist)
                            }
                        };
                        outs.push((*i, out));
                    }
                    let measured = (thread_cpu_time_s() - c0).max(0.0) * self.compute_scale;
                    compute_s = match self.synthetic_compute_s_per_point {
                        Some(rate) => task.domain.num_points() as f64 * rate,
                        None => measured,
                    };
                }
                let cost = ChunkCost {
                    io: chunk_session
                        .devices()
                        .map(|(dev, a)| (dev, self.registry.profile(dev).time(a.ops, a.bytes)))
                        .collect(),
                    compute_s,
                };
                Ok((outs, cost, chunk_session, chunk_atoms, saved))
            });

        let mut acc_points: Vec<Vec<ThresholdPoint>> =
            (0..slots.len()).map(|_| Vec::new()).collect();
        let mut acc_hist: Vec<Option<tdb_field::Histogram>> =
            (0..slots.len()).map(|_| None).collect();
        let mut shared_session = IoSession::new();
        let mut costs = Vec::with_capacity(results.len());
        let mut atoms_scanned = 0u64;
        let mut atoms_saved = 0u64;
        for r in results {
            let (outs, cost, chunk_session, chunk_atoms, saved) = r?;
            for (i, out) in outs {
                match out {
                    SlotOut::Points(p) => {
                        if let Some(acc) = acc_points.get_mut(i) {
                            acc.extend(p);
                        }
                    }
                    SlotOut::Hist(h) => match acc_hist.get_mut(i) {
                        Some(Some(acc)) => acc.merge(&h),
                        Some(slot) => *slot = Some(h),
                        None => {}
                    },
                }
            }
            costs.push(cost);
            atoms_scanned += chunk_atoms;
            atoms_saved += saved;
            shared_session.merge(&chunk_session);
        }
        // --- serial-phase timing (DESIGN.md §4) --------------------------
        let model = NodeTimeModel::from_costs(&costs, &self.registry);
        if pending.len() >= 2 {
            tdb_obs::add("scan.shared", 1);
            tdb_obs::add("scan.coalesced_queries", (pending.len() - 1) as u64);
            tdb_obs::add("scan.atoms_saved", atoms_saved);
        }
        tdb_obs::add("node.atoms_scanned", atoms_scanned);

        // --- per-participant assembly and cache fills --------------------
        let mut report = IoSession::new();
        report.merge(&shared_session);
        for &i in &pending {
            let (Some(part), Some(slot)) = (req.participants.get(i), slots.get_mut(i)) else {
                continue;
            };
            let mut session = IoSession::new();
            session.merge(&slot.probe_session);
            session.merge(&shared_session);
            report.merge(&slot.probe_session);
            // injected latency and retry backoff stall the issuing worker,
            // so they ride on the I/O phase serially
            let mut io_s = model.io_s(req.procs) + session.injected_delay_s;
            let io_serial_s = model.io_serial + session.injected_delay_s;
            let mut points = acc_points
                .get_mut(i)
                .map(std::mem::take)
                .unwrap_or_default();
            let mut histogram = None;
            match &part.kernel {
                ScanKernel::Threshold { threshold } => {
                    points.sort_unstable_by_key(|p| p.zindex);
                    if part.use_cache && cacheable && req.mode == QueryMode::Full {
                        let mut insert_session = IoSession::new();
                        self.cache.insert(
                            &key,
                            part.query_box,
                            *threshold,
                            &points,
                            &mut insert_session,
                        );
                        io_s += insert_session.makespan(&self.registry);
                        session.merge(&insert_session);
                        report.merge(&insert_session);
                        if slot.healing {
                            tdb_obs::add("cache.semantic.rebuilt", 1);
                        }
                    }
                }
                ScanKernel::TopK => points.sort_unstable_by_key(|p| p.zindex),
                ScanKernel::Pdf {
                    origin,
                    width,
                    nbins,
                } => {
                    let hist = acc_hist
                        .get_mut(i)
                        .and_then(Option::take)
                        .unwrap_or_else(|| tdb_field::Histogram::new(*origin, *width, *nbins));
                    if part.use_cache && cacheable {
                        let pdf_key = PdfKey::new(key.clone(), *origin, *width, *nbins as u32);
                        let mut insert_session = IoSession::new();
                        self.pdf_cache.insert(
                            &pdf_key,
                            part.query_box,
                            hist.counts().to_vec(),
                            &mut insert_session,
                        );
                        io_s += insert_session.injected_delay_s;
                        session.merge(&insert_session);
                        report.merge(&insert_session);
                    }
                    histogram = Some(hist);
                }
            }
            slot.outcome = Some(SharedOutcome {
                result: NodeResult {
                    points,
                    cache_hit: false,
                    cache_lookup_s: slot.cache_lookup_s,
                    io_s,
                    io_serial_s,
                    compute_s: model.compute_s(req.procs),
                    wall_s: wall.elapsed().as_secs_f64(),
                    atoms_scanned,
                    model,
                    session,
                },
                histogram,
            });
        }
        self.report_session(&report);
        slots.into_iter().map(take_outcome).collect()
    }

    /// Mirrors a subquery's device charges into the global metrics
    /// registry as `io.ops.<device>` / `io.bytes.<device>` counters.
    fn report_session(&self, session: &IoSession) {
        let reg = tdb_obs::global();
        for (dev, access) in session.devices() {
            let name = &self.registry.profile(dev).name;
            reg.add(&format!("io.ops.{name}"), access.ops);
            reg.add(&format!("io.bytes.{name}"), access.bytes);
        }
    }

    /// Runs `procs` workers over the task list, collecting per-task output.
    fn run_workers<I: Sync, T: Send>(
        &self,
        procs: usize,
        tasks: &[I],
        work: impl Fn(&I) -> T + Sync,
    ) -> Vec<T> {
        // the time model scales with the *requested* process count; the
        // real thread count is capped at the hardware so CPU-time
        // measurements stay clean
        let hw = std::thread::available_parallelism().map_or(8, |n| n.get());
        let procs = procs.max(1).min(hw);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks.len()));
        std::thread::scope(|scope| {
            for _ in 0..procs.min(tasks.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let r = work(task);
                    out.lock().push((i, r));
                });
            }
        });
        let mut results = out.into_inner();
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Fetches every atom a chunk domain needs: atoms this node stores a
    /// replica of from its own table as batched range scans, the rest
    /// from the atom's primary as one batched request per peer over the
    /// (modelled) LAN. Routing comes from the request's assignment — the
    /// node holds no placement state of its own.
    fn fetch_atoms_shared(
        &self,
        req: &SharedScanRequest,
        domain: &Box3,
        peers: &[Option<Arc<NodeRuntime>>],
        session: &mut IoSession,
    ) -> StorageResult<HashMap<u64, AtomRecord>> {
        // I/O-only probes (Fig. 8) read exactly what the full evaluation
        // reads — boundary bands included — they just skip the kernel
        let halo = req.derived.halo(&self.scheme);
        let needed = needed_atoms(domain, halo, self.grid.dims(), self.grid.periodic);
        let layout = &req.assignment.layout;
        let mut by_owner: HashMap<usize, Vec<u64>> = HashMap::new();
        for atom in &needed {
            by_owner
                .entry(layout.fetch_node_for(*atom, self.id))
                .or_default()
                .push(atom.zindex());
        }
        let mut out = HashMap::with_capacity(needed.len());
        for (owner, mut codes) in by_owner {
            codes.sort_unstable();
            let records = if owner == self.id {
                self.fetch_atoms(&req.raw_field, req.timestep, &codes, session)
            } else {
                let Some(peer) = peers.get(owner).and_then(Option::as_ref) else {
                    return Err(StorageError::internal(format!(
                        "atom owner {owner} absent from the cluster of {} node slots",
                        peers.len()
                    )));
                };
                let r = peer.fetch_atoms(&req.raw_field, req.timestep, &codes, session);
                if let Ok(records) = &r {
                    // one LAN round-trip per peer contacted for this chunk
                    let bytes: u64 = records
                        .iter()
                        .map(|rec| AtomRecord::encoded_len(rec.ncomp) as u64)
                        .sum();
                    session.charge(self.lan, 1, bytes);
                }
                r
            };
            let records = records?;
            if records.len() != codes.len() {
                return Err(tdb_storage::StorageError::MissingData {
                    detail: format!(
                        "node {owner} returned {} of {} atoms for field {} timestep {}",
                        records.len(),
                        codes.len(),
                        req.raw_field,
                        req.timestep
                    ),
                });
            }
            for rec in records {
                out.insert(rec.key.zindex, rec);
            }
        }
        Ok(out)
    }
}

/// RAII increment of the `node.active_subqueries` gauge.
struct ActiveGuard(tdb_obs::Gauge);

impl ActiveGuard {
    fn new() -> Self {
        let g = tdb_obs::global().gauge("node.active_subqueries");
        g.inc();
        Self(g)
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Scans an evaluated norm field, returning every point at or above the
/// threshold with its global Morton code.
///
/// The comparison is in f64, matching the warm-path filter in
/// `SemanticCache::lookup` — comparing in f32 (`threshold as f32`) rounds
/// the threshold and can admit points a later cache hit would reject,
/// making warm results differ from cold ones at thresholds that are not
/// exactly representable in f32.
#[cfg(test)]
fn threshold_scan(norm: &ScalarField, domain: &Box3, threshold: f64) -> Vec<ThresholdPoint> {
    threshold_scan_clip(norm, domain, domain, threshold)
}

/// Scans the `clip` sub-box of a norm field evaluated over `domain`.
///
/// Delegates to the chunked kernel in [`tdb_kernels::scan`] (row-sliced,
/// hoisted Morton row encoding). In a shared scan the evaluated domain is
/// the hull of several participants' clips; each participant only keeps
/// points inside its own clip. The per-point values are identical to a
/// clip-only evaluation because the kernels are pointwise over halo
/// stencils.
fn threshold_scan_clip(
    norm: &ScalarField,
    domain: &Box3,
    clip: &Box3,
    threshold: f64,
) -> Vec<ThresholdPoint> {
    let mut hits: Vec<tdb_kernels::ScanHit> = Vec::new();
    tdb_kernels::scan::threshold_scan_clip(norm, domain, clip, threshold, &mut hits);
    hits.into_iter()
        .map(|(zindex, value)| ThresholdPoint { zindex, value })
        .collect()
}

/// Accumulates the `clip` sub-box of an evaluated norm into a histogram.
fn pdf_scan_clip(norm: &ScalarField, domain: &Box3, clip: &Box3, hist: &mut tdb_field::Histogram) {
    tdb_kernels::scan::pdf_scan_clip(norm, domain, clip, hist);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_scan_finds_exact_points() {
        let mut f = ScalarField::zeros(4, 4, 4);
        f.set(1, 2, 3, 5.0);
        f.set(0, 0, 0, 4.9);
        let domain = Box3::new([8, 8, 8], [11, 11, 11]);
        let pts = threshold_scan(&f, &domain, 5.0);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].coords(), (9, 10, 11));
        assert_eq!(pts[0].value, 5.0);
        // threshold is inclusive
        let pts = threshold_scan(&f, &domain, 4.9);
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn threshold_scan_compares_in_f64() {
        // 25.000000001 is not representable in f32: it rounds to exactly
        // 25.0, so an f32 comparison would wrongly admit a 25.0 point.
        // The warm-path cache filter compares in f64 and would then drop
        // it, making warm results differ from cold ones.
        let mut f = ScalarField::zeros(2, 2, 2);
        f.set(0, 0, 0, 25.0);
        f.set(1, 1, 1, 26.0);
        let domain = Box3::new([0, 0, 0], [1, 1, 1]);
        let thr = 25.000000001_f64;
        assert_eq!(thr as f32, 25.0_f32, "threshold must round to 25 in f32");
        let pts = threshold_scan(&f, &domain, thr);
        assert_eq!(pts.len(), 1, "the 25.0 point must be excluded");
        assert_eq!(pts[0].value, 26.0);
    }

    #[test]
    fn cache_key_includes_derived_field() {
        let q = ThresholdSubquery {
            dataset: "mhd".into(),
            raw_field: "velocity".into(),
            derived: DerivedField::CurlNorm,
            timestep: 3,
            query_box: Box3::cube(8),
            threshold: 1.0,
            use_cache: true,
            mode: QueryMode::Full,
            procs: 1,
        };
        let k = q.cache_key();
        assert_eq!(k.field, "velocity/curl_norm");
        assert_eq!(k.timestep, 3);
    }
}
