//! tdb-lint: workspace-aware static analysis for ThresholDB.
//!
//! A self-contained lint driver (hand-rolled lexer, no syn) that walks
//! every `.rs` file under `crates/`, `compat/` and `tests/` and runs the
//! five domain rules in [`rules`]. Findings are diffed against a
//! committed `lint-baseline.txt`: grandfathered findings don't block CI,
//! new ones do. See DESIGN.md §8 for the rule catalogue, the
//! `// tdb-lint: allow(<rule>)` pragma and the baseline workflow.

pub mod lexer;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{DeclaredMetrics, Finding, RULES};
use scan::SourceFile;

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Directories at the workspace root that are scanned.
pub const SCAN_ROOTS: &[&str] = &["crates", "compat", "tests"];

/// The outcome of one lint run.
pub struct Report {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries no longer matched by any finding (stale; a
    /// warning, not a failure — the fix landed, prune with
    /// `--update-baseline`).
    pub stale: Vec<String>,
}

impl Report {
    /// Whether the run passes (no findings outside the baseline).
    pub fn ok(&self) -> bool {
        self.new.is_empty()
    }
}

/// Loads, scans and lints every source file under the scan roots.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let text = fs::read_to_string(p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::new(rel, text));
    }
    Ok(lint_files(&files))
}

/// Runs every rule over an in-memory file set (the self-test entry
/// point; `lint_workspace` goes through here too).
pub fn lint_files(files: &[SourceFile]) -> Vec<Finding> {
    let declared = files
        .iter()
        .find(|f| {
            f.path.ends_with("crates/obs/src/declared.rs") || f.path == "crates/obs/src/declared.rs"
        })
        .and_then(DeclaredMetrics::parse);
    let mut out = Vec::new();
    for f in files {
        out.extend(rules::float_width(f));
        out.extend(rules::panic_path(f));
        out.extend(rules::error_context(f));
    }
    out.extend(rules::lock_order(files));
    out.extend(rules::lock_graph(files));
    if let Some(declared) = &declared {
        out.extend(rules::metrics_registry(files, declared));
    }
    out.sort();
    out
}

/// Renders a report as JSON: `{"new": [...], "baselined": [...],
/// "stale": [...]}` with one object per finding. Output is byte-stable
/// for a given report — findings arrive sorted (rule, path, line) and
/// field order is fixed.
pub fn render_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn finding_json(f: &Finding) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"line_text\":\"{}\"}}",
            esc(&f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message),
            esc(&f.line_text)
        )
    }
    let list = |fs: &[Finding]| {
        fs.iter()
            .map(finding_json)
            .collect::<Vec<_>>()
            .join(",\n    ")
    };
    let stale = report
        .stale
        .iter()
        .map(|k| format!("\"{}\"", esc(k)))
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"new\": [\n    {}\n  ],\n  \"baselined\": [\n    {}\n  ],\n  \"stale\": [\n    {}\n  ]\n}}\n",
        list(&report.new),
        list(&report.baselined),
        stale
    )
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Diffs findings against the baseline. Matching is a multiset over
/// `rule|path|trimmed-line-content` keys, so findings survive line-number
/// drift but a *new* occurrence of an already-baselined pattern on a new
/// line of the same file still slips through only if its line text is
/// byte-identical (accepted trade-off; `--update-baseline` re-counts).
pub fn apply_baseline(findings: Vec<Finding>, baseline: &[String]) -> Report {
    let mut budget: BTreeMap<&str, usize> = BTreeMap::new();
    for key in baseline {
        *budget.entry(key.as_str()).or_insert(0) += 1;
    }
    let mut new = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        let key = f.baseline_key();
        match budget.get_mut(key.as_str()) {
            Some(n) if *n > 0 => {
                *n -= 1;
                baselined.push(f);
            }
            _ => new.push(f),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .flat_map(|(k, n)| (0..n).map(move |_| k.to_string()))
        .collect();
    Report {
        new,
        baselined,
        stale,
    }
}

/// Reads the baseline file (missing file = empty baseline).
pub fn load_baseline(root: &Path) -> io::Result<Vec<String>> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    Ok(fs::read_to_string(path)?
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Rewrites the baseline to exactly cover `findings`.
pub fn write_baseline(root: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut lines: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
    lines.sort();
    let mut body = String::from(
        "# tdb-lint baseline: grandfathered findings that do not fail CI.\n\
         # One `rule|path|trimmed-line-content` key per finding; regenerate\n\
         # with `cargo run -p tdb-lint -- --update-baseline`. Don't add to\n\
         # this file by hand — fix the finding or use an inline\n\
         # `// tdb-lint: allow(<rule>)` pragma with a justification.\n",
    );
    for l in &lines {
        body.push_str(l);
        body.push('\n');
    }
    fs::write(root.join(BASELINE_FILE), body)
}

/// Walks upward from `start` to the directory holding the workspace
/// `Cargo.toml` (identified by a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, path: &str, line_text: &str) -> Finding {
        Finding {
            path: path.into(),
            line: 1,
            rule: rule.into(),
            message: "m".into(),
            line_text: line_text.into(),
        }
    }

    #[test]
    fn baseline_is_a_multiset() {
        let findings = vec![
            f("panic-path", "a.rs", "x.unwrap();"),
            f("panic-path", "a.rs", "x.unwrap();"),
            f("panic-path", "a.rs", "y.unwrap();"),
        ];
        let baseline = vec!["panic-path|a.rs|x.unwrap();".to_string()];
        let r = apply_baseline(findings, &baseline);
        assert_eq!(r.baselined.len(), 1);
        assert_eq!(r.new.len(), 2);
        assert!(r.stale.is_empty());
        assert!(!r.ok());
    }

    #[test]
    fn stale_entries_warn_but_pass() {
        let baseline = vec!["panic-path|gone.rs|x.unwrap();".to_string()];
        let r = apply_baseline(Vec::new(), &baseline);
        assert!(r.ok());
        assert_eq!(r.stale.len(), 1);
    }

    #[test]
    fn lint_files_runs_all_rules() {
        let files = vec![
            SourceFile::new(
                "crates/obs/src/declared.rs",
                "pub const DECLARED_METRICS: &[&str] = &[\"cache.hits\"];",
            ),
            SourceFile::new(
                "crates/cache/src/a.rs",
                "fn f(threshold: f64) { let t = threshold as f32; \
                 tdb_obs::add(\"cache.hitz\", 1); x.unwrap(); }",
            ),
        ];
        let got = lint_files(&files);
        let rules: Vec<&str> = got.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"float-width"), "{got:?}");
        assert!(rules.contains(&"panic-path"), "{got:?}");
        assert!(rules.contains(&"metrics-registry"), "{got:?}");
    }
}
