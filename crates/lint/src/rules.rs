//! The domain-specific lint rules.
//!
//! Every rule is a pure function from the scanned workspace to a list of
//! [`Finding`]s. Rules reason over token shapes, not a full AST — they
//! are deliberately conservative approximations of the invariants
//! DESIGN.md §8 spells out, with the `// tdb-lint: allow(<rule>)` pragma
//! and the committed baseline absorbing the residual noise.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Names of every shipped rule.
pub const RULES: &[&str] = &[
    "float-width",
    "lock-order",
    "lock-graph",
    "panic-path",
    "metrics-registry",
    "error-context",
];

/// One diagnostic. Field order is load-bearing: the derived `Ord` sorts
/// reports by rule, then path, then line — the stable output order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Trimmed text of the offending source line — the drift-stable key
    /// the baseline matches on.
    pub line_text: String,
}

impl Finding {
    /// `rule|path|line-text`, the baseline key.
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, self.line_text)
    }

    /// Human-readable `path:line: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

fn finding(file: &SourceFile, sig_idx: usize, rule: &str, message: String) -> Finding {
    Finding {
        path: file.path.clone(),
        line: file.line(sig_idx),
        rule: rule.to_string(),
        message,
        line_text: file.line_text(file.tok(sig_idx).start).to_string(),
    }
}

/// Whether significant token `i` should be skipped by production-path
/// rules: test code, or suppressed by a pragma.
fn skipped(file: &SourceFile, i: usize, rule: &str) -> bool {
    file.in_test_code(file.tok(i).start) || file.allowed(rule, file.line(i))
}

// ---------------------------------------------------------------------------
// float-width
// ---------------------------------------------------------------------------

/// Flags `f32` in threshold/predicate paths: any `f32` type use, cast or
/// `f32`-suffixed literal inside a function that names a `threshold` or
/// `predicate` (parameter, local or call). The PR 1 bug class: the cold
/// scan compared in f32 while the warm cache filter compared in f64, so
/// results flipped at thresholds not representable in f32.
pub fn float_width(file: &SourceFile) -> Vec<Finding> {
    const RULE: &str = "float-width";
    let mut out = Vec::new();
    for f in &file.fns {
        let threshold_path = f.name.contains("threshold")
            || f.name.contains("predicate")
            || (f.body_start..f.body_end)
                .any(|i| file.is_ident(i, "threshold") || file.is_ident(i, "predicate"));
        if !threshold_path {
            continue;
        }
        // skip when an inner function is the real context: report each
        // token once, attributed to its innermost function
        for i in f.body_start..f.body_end.min(file.len()) {
            let innermost = file
                .enclosing_fns(i)
                .last()
                .map(|inner| std::ptr::eq(inner, f))
                .unwrap_or(false);
            if !innermost || skipped(file, i, RULE) {
                continue;
            }
            let tok = file.tok(i);
            let text = file.text(i);
            let hit = match tok.kind {
                TokenKind::Ident => text == "f32",
                TokenKind::Float | TokenKind::Int => text.ends_with("f32"),
                _ => false,
            };
            if hit {
                out.push(finding(
                    file,
                    i,
                    RULE,
                    format!(
                        "`{text}` in threshold path `{}`: thresholds and predicate \
                         comparisons must stay f64 (f32 rounds the threshold and \
                         diverges cold-scan vs warm-cache answers)",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// A lock identity: crate plus the receiver path tail of the guard
/// acquisition (`cache/stats`, `storage/inner`).
type LockId = String;

/// One acquisition edge: while holding `held`, `acquired` was taken —
/// directly, or (`via` set) through a one-level intra-crate call.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub held: LockId,
    pub acquired: LockId,
    pub path: String,
    pub line: u32,
    pub line_text: String,
    pub via: Option<String>,
}

/// A direct call made while at least one guard was held.
struct HeldCall {
    callee: String,
    krate: String,
    held: Vec<LockId>,
    path: String,
    line: u32,
    line_text: String,
}

/// What the per-function guard-scope scan extracts for the two lock
/// rules.
#[derive(Default)]
struct FnLocks {
    /// Acquisition edges within this function.
    edges: Vec<LockEdge>,
    /// Direct calls made with a guard held (for one-level following).
    calls: Vec<HeldCall>,
    /// Every lock this function acquires itself.
    acquired: Vec<LockId>,
    /// Guard-held-across-blocking-call findings (rule `lock-order`).
    blocking: Vec<Finding>,
}

/// Flags guards held across blocking I/O or channel waits — a parked
/// thread holding a lock stalls every other acquirer on the data path.
pub fn lock_order(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        if file.is_test_file {
            continue;
        }
        for f in &file.fns {
            out.extend(scan_fn_locks(file, f.body_start, f.body_end).blocking);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Builds the cross-function lock-acquisition graph and fails on cycles.
///
/// Per-function acquisition sequences come from the guard-scope scan
/// (guard binding to end of scope); on top of those direct edges, a call
/// to an intra-crate function whose name is *unique in its crate* pulls
/// in that callee's own acquisitions one level deep — `f` holding `a`
/// and calling `g` which locks `b` contributes the edge `a → b`.
/// Ambiguous names (defined more than once in the crate) are not
/// followed: a wrong guess would manufacture edges that don't exist.
pub fn lock_graph(files: &[SourceFile]) -> Vec<Finding> {
    const RULE: &str = "lock-graph";
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut calls: Vec<HeldCall> = Vec::new();
    // (crate, fn name) → locks the fn acquires; None once ambiguous
    let mut acquired_by: BTreeMap<(String, String), Option<Vec<LockId>>> = BTreeMap::new();
    for file in files {
        if file.is_test_file {
            continue;
        }
        for f in &file.fns {
            let scan = scan_fn_locks(file, f.body_start, f.body_end);
            edges.extend(scan.edges);
            calls.extend(scan.calls.into_iter().filter(|c| c.callee != f.name));
            acquired_by
                .entry((file.crate_name().to_string(), f.name.clone()))
                .and_modify(|e| *e = None)
                .or_insert(Some(scan.acquired));
        }
    }
    // one-level call following
    for c in &calls {
        let Some(Some(callee_locks)) = acquired_by.get(&(c.krate.clone(), c.callee.clone())) else {
            continue;
        };
        for lock in callee_locks {
            for held in &c.held {
                if held != lock {
                    edges.push(LockEdge {
                        held: held.clone(),
                        acquired: lock.clone(),
                        path: c.path.clone(),
                        line: c.line,
                        line_text: c.line_text.clone(),
                        via: Some(c.callee.clone()),
                    });
                }
            }
        }
    }
    // cycle detection over the global acquisition graph
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        graph.entry(&e.held).or_default().insert(&e.acquired);
    }
    let mut out = Vec::new();
    for e in &edges {
        if reaches(&graph, &e.acquired, &e.held) {
            let via = e
                .via
                .as_ref()
                .map(|f| format!(" (via call to `{f}`)"))
                .unwrap_or_default();
            out.push(Finding {
                rule: RULE.to_string(),
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "acquiring `{}`{via} while holding `{}` closes a lock-order \
                     cycle (`{}` is elsewhere acquired while `{}` is held)",
                    e.acquired, e.held, e.held, e.acquired
                ),
                line_text: e.line_text.clone(),
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

fn reaches(graph: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n.to_string()) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Calls that park the calling thread: channel waits, joins and
/// synchronous I/O. `Condvar::wait`/`wait_for` release the waited lock,
/// so they only count when *more than one* guard is held.
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "read_until",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "accept",
    "connect",
];
const CONDVAR_WAITS: &[&str] = &["wait", "wait_for", "wait_timeout", "wait_while"];

struct Guard {
    lock: LockId,
    /// Brace depth at acquisition; the guard dies when the block closes.
    depth: usize,
    /// `let`-bound guards live to end of block, temporaries to the `;`.
    let_bound: bool,
    /// Variable name of a let-bound guard (for `drop(name)`).
    var: Option<String>,
}

/// Rust keywords that look like calls in `kw (..)` position.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "break",
];

fn scan_fn_locks(file: &SourceFile, start: usize, end: usize) -> FnLocks {
    let mut scan = FnLocks::default();
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let end = end.min(file.len());
    let mut i = start;
    while i < end {
        if file.is_punct(i, '{') {
            depth += 1;
        } else if file.is_punct(i, '}') {
            depth = depth.saturating_sub(1);
            held.retain(|g| g.depth <= depth);
        } else if file.is_punct(i, ';') {
            held.retain(|g| g.let_bound || g.depth < depth);
        } else if file.tok(i).kind == TokenKind::Ident {
            let name = file.text(i);
            // explicit drop(guard)
            if name == "drop" && file.is_punct(i + 1, '(') {
                if let Some(var) = (i + 2 < end).then(|| file.text(i + 2).to_string()) {
                    held.retain(|g| g.var.as_deref() != Some(var.as_str()));
                }
            }
            let is_call = file.is_punct(i + 1, '(');
            let zero_arg = is_call && file.is_punct(i + 2, ')');
            let acquires = zero_arg
                && file.is_punct(i.wrapping_sub(1), '.')
                && matches!(name, "lock" | "read" | "write");
            if acquires && !skipped(file, i, "lock-graph") {
                let lock = lock_identity(file, i);
                scan.acquired.push(lock.clone());
                for g in &held {
                    if g.lock != lock {
                        scan.edges.push(LockEdge {
                            held: g.lock.clone(),
                            acquired: lock.clone(),
                            path: file.path.clone(),
                            line: file.line(i),
                            line_text: file.line_text(file.tok(i).start).to_string(),
                            via: None,
                        });
                    }
                }
                let (let_bound, var) = binding_of(file, i, start);
                held.push(Guard {
                    lock,
                    depth,
                    let_bound,
                    var,
                });
            } else if is_call {
                let held_guards: Vec<&Guard> = held.iter().filter(|g| g.let_bound).collect();
                let blocking = BLOCKING_CALLS.contains(&name) && !held_guards.is_empty();
                let condvar_blocked = CONDVAR_WAITS.contains(&name) && held_guards.len() >= 2;
                if (blocking || condvar_blocked) && !skipped(file, i, "lock-order") {
                    let lock_list: Vec<&str> =
                        held_guards.iter().map(|g| g.lock.as_str()).collect();
                    scan.blocking.push(finding(
                        file,
                        i,
                        "lock-order",
                        format!(
                            "`{name}()` can block while guard{} `{}` {} held — a \
                             parked thread holding a lock stalls every other \
                             acquirer on the data path",
                            if lock_list.len() > 1 { "s" } else { "" },
                            lock_list.join("`, `"),
                            if lock_list.len() > 1 { "are" } else { "is" },
                        ),
                    ));
                }
                if !held.is_empty()
                    && !CALL_KEYWORDS.contains(&name)
                    && !skipped(file, i, "lock-graph")
                {
                    scan.calls.push(HeldCall {
                        callee: name.to_string(),
                        krate: file.crate_name().to_string(),
                        held: held.iter().map(|g| g.lock.clone()).collect(),
                        path: file.path.clone(),
                        line: file.line(i),
                        line_text: file.line_text(file.tok(i).start).to_string(),
                    });
                }
            }
        }
        i += 1;
    }
    scan
}

/// Builds the lock identity from the receiver path before `.lock()` at
/// sig-index `i` (`self.stats.lock()` → `<crate>/stats`).
fn lock_identity(file: &SourceFile, i: usize) -> LockId {
    // walk back over `ident (. | ::) ident ...`
    let mut parts: Vec<String> = Vec::new();
    let mut j = i.wrapping_sub(1); // the `.` before `lock`
    loop {
        if j == 0 || j >= file.len() {
            break;
        }
        let prev = j - 1;
        if file.tok(prev).kind == TokenKind::Ident {
            parts.push(file.text(prev).to_string());
            if prev >= 2
                && (file.is_punct(prev - 1, '.')
                    || (file.is_punct(prev - 1, ':') && file.is_punct(prev - 2, ':')))
            {
                j = if file.is_punct(prev - 1, '.') {
                    prev - 1
                } else {
                    prev - 2
                };
                continue;
            }
        }
        break;
    }
    parts.retain(|p| p != "self");
    parts.reverse();
    let tail = parts
        .iter()
        .rev()
        .take(2)
        .rev()
        .cloned()
        .collect::<Vec<_>>()
        .join(".");
    format!(
        "{}/{}",
        file.crate_name(),
        if tail.is_empty() { "<expr>" } else { &tail }
    )
}

/// Whether the acquisition at `i` is `let`-bound, and the bound name.
fn binding_of(file: &SourceFile, i: usize, fn_start: usize) -> (bool, Option<String>) {
    // walk back to the start of the statement
    let mut j = i;
    while j > fn_start {
        j -= 1;
        if file.is_punct(j, ';') || file.is_punct(j, '{') || file.is_punct(j, '}') {
            j += 1;
            break;
        }
    }
    if file.is_ident(j, "let") {
        let mut k = j + 1;
        // skip `mut`
        if file.is_ident(k, "mut") {
            k += 1;
        }
        let var = (file.tok(k).kind == TokenKind::Ident).then(|| file.text(k).to_string());
        (true, var)
    } else if file.is_ident(j, "if") || file.is_ident(j, "while") || file.is_ident(j, "match") {
        // `if let Some(x) = m.lock()...` / `match m.lock()` — scrutinee
        // guards live for the whole construct; treat as let-bound
        (true, None)
    } else {
        (false, None)
    }
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

/// Crates whose non-test code is the server/cluster/cache query path.
pub const PANIC_PATH_CRATES: &[&str] = &["wire", "cluster", "cache", "core", "storage"];

/// Forbids `unwrap`/`expect`/`panic!`-family macros and slice indexing in
/// the query path: a panic in a handler thread kills the request (and
/// under `parking_lot` semantics leaves shared state unprotected by
/// poisoning), where a typed error would travel the proto error channel.
pub fn panic_path(file: &SourceFile) -> Vec<Finding> {
    const RULE: &str = "panic-path";
    let mut out = Vec::new();
    if !PANIC_PATH_CRATES.contains(&file.crate_name()) || file.is_test_file {
        return out;
    }
    for i in 0..file.len() {
        if skipped(file, i, RULE) {
            continue;
        }
        let tok = file.tok(i);
        match tok.kind {
            TokenKind::Ident => {
                let text = file.text(i);
                let prev_dot = i > 0 && file.is_punct(i - 1, '.');
                if (text == "unwrap" || text == "expect") && prev_dot && file.is_punct(i + 1, '(') {
                    out.push(finding(
                        file,
                        i,
                        RULE,
                        format!(
                            "`.{text}()` on the query path: convert to a typed error \
                             that travels the proto error channel"
                        ),
                    ));
                } else if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
                    && file.is_punct(i + 1, '!')
                {
                    out.push(finding(
                        file,
                        i,
                        RULE,
                        format!("`{text}!` on the query path: return a typed error instead"),
                    ));
                }
            }
            TokenKind::Punct if file.text(i) == "[" => {
                // index expressions: `expr[...]` where expr ends in an
                // identifier, `)` or `]`. Attribute `#[...]`, array
                // literals `[0u8; n]` and full-range `[..]` are exempt.
                if i == 0 {
                    continue;
                }
                let prev = file.tok(i - 1);
                let indexes = match prev.kind {
                    TokenKind::Ident => {
                        // `let [a, b] = ..` destructures, it never indexes
                        !matches!(
                            file.text(i - 1),
                            "in" | "return" | "break" | "mut" | "ref" | "let"
                        )
                    }
                    TokenKind::Punct => matches!(file.text(i - 1), ")" | "]"),
                    _ => false,
                };
                let full_range = file.is_punct(i + 1, '.')
                    && file.is_punct(i + 2, '.')
                    && file.is_punct(i + 3, ']');
                if indexes && !full_range {
                    out.push(finding(
                        file,
                        i,
                        RULE,
                        "slice/array indexing can panic on the query path: use \
                         `.get()` or a checked range"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// metrics-registry
// ---------------------------------------------------------------------------

/// A metric name use site.
#[derive(Debug)]
struct MetricUse {
    name: String,
    /// True when the site builds the name with `format!` — matched
    /// against declared wildcard prefixes.
    dynamic: bool,
    file_idx: usize,
    sig_idx: usize,
}

/// Cross-checks every metric name string against the declared-metrics
/// list: a name used but not declared is a typo waiting to split a
/// counter, a name declared but never reported is a dashboard that will
/// stay at zero forever.
pub fn metrics_registry(files: &[SourceFile], declared: &DeclaredMetrics) -> Vec<Finding> {
    const RULE: &str = "metrics-registry";
    let mut uses: Vec<MetricUse> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !file.path.starts_with("crates/") {
            continue;
        }
        for i in 0..file.len() {
            if skipped(file, i, RULE) {
                continue;
            }
            let is_reporting_call = file.tok(i).kind == TokenKind::Ident
                && matches!(
                    file.text(i),
                    "counter" | "gauge" | "histogram" | "add" | "observe"
                )
                && file.is_punct(i + 1, '(')
                && (file.is_punct(i.wrapping_sub(1), '.')
                    || (i >= 2 && file.is_punct(i - 1, ':') && file.is_punct(i - 2, ':')));
            if !is_reporting_call {
                continue;
            }
            // first argument: optional `&`, then a string literal or a
            // `format!("prefix{...}")` builder
            let mut a = i + 2;
            if file.is_punct(a, '&') {
                a += 1;
            }
            if a < file.len() && file.tok(a).kind == TokenKind::Str {
                if let Some(name) = str_value(file.text(a)) {
                    uses.push(MetricUse {
                        name,
                        dynamic: false,
                        file_idx: fi,
                        sig_idx: a,
                    });
                }
            } else if file.is_ident(a, "format")
                && file.is_punct(a + 1, '!')
                && file.is_punct(a + 2, '(')
                && a + 3 < file.len()
                && file.tok(a + 3).kind == TokenKind::Str
            {
                if let Some(tpl) = str_value(file.text(a + 3)) {
                    let prefix = tpl.split('{').next().unwrap_or("").to_string();
                    uses.push(MetricUse {
                        name: prefix,
                        dynamic: true,
                        file_idx: fi,
                        sig_idx: a + 3,
                    });
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut used_entries: BTreeSet<String> = BTreeSet::new();
    for u in &uses {
        let file = &files[u.file_idx];
        let hit = if u.dynamic {
            declared
                .wildcard_prefixes()
                .find(|p| u.name.starts_with(p.as_str()) || p.starts_with(&u.name))
                .map(|p| format!("{p}*"))
        } else {
            declared.matches(&u.name)
        };
        match hit {
            Some(entry) => {
                used_entries.insert(entry);
            }
            None => out.push(finding(
                file,
                u.sig_idx,
                RULE,
                format!(
                    "metric name `{}{}` is not in tdb-obs::declared_metrics() — \
                     a typo here silently splits a counter",
                    u.name,
                    if u.dynamic { "…" } else { "" }
                ),
            )),
        }
    }
    for (entry, line) in &declared.entries {
        if !used_entries.contains(entry) {
            out.push(Finding {
                path: declared.path.clone(),
                line: *line,
                rule: RULE.to_string(),
                message: format!(
                    "declared metric `{entry}` is never reported by any \
                     non-test code — remove it or wire it up"
                ),
                line_text: format!("\"{entry}\""),
            });
        }
    }
    out
}

/// The central declared-metrics list, parsed out of the tdb-obs source
/// (the lint never links against the code it checks).
pub struct DeclaredMetrics {
    /// `(entry, line)` — an entry ending in `*` declares a prefix family.
    pub entries: Vec<(String, u32)>,
    pub path: String,
}

impl DeclaredMetrics {
    /// Extracts the `DECLARED_METRICS` array from the obs source file.
    pub fn parse(file: &SourceFile) -> Option<DeclaredMetrics> {
        let mut entries = Vec::new();
        let start = (0..file.len()).find(|&i| file.is_ident(i, "DECLARED_METRICS"))?;
        // skip the type annotation (`&[&str]`) — the value array opens
        // after the `=`
        let eq = (start..file.len()).find(|&i| file.is_punct(i, '='))?;
        let open = (eq..file.len()).find(|&i| file.is_punct(i, '['))?;
        for i in open + 1..file.len() {
            if file.is_punct(i, ']') {
                break;
            }
            if file.tok(i).kind == TokenKind::Str {
                if let Some(v) = str_value(file.text(i)) {
                    entries.push((v, file.line(i)));
                }
            }
        }
        Some(DeclaredMetrics {
            entries,
            path: file.path.clone(),
        })
    }

    /// A declared-metrics list given directly (self-tests).
    pub fn from_list(names: &[&str]) -> DeclaredMetrics {
        DeclaredMetrics {
            entries: names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), i as u32 + 1))
                .collect(),
            path: "<declared>".to_string(),
        }
    }

    fn wildcard_prefixes(&self) -> impl Iterator<Item = String> + '_ {
        self.entries
            .iter()
            .filter(|(e, _)| e.ends_with('*'))
            .map(|(e, _)| e[..e.len() - 1].to_string())
    }

    /// The declared entry covering a literal `name`, if any.
    fn matches(&self, name: &str) -> Option<String> {
        for (e, _) in &self.entries {
            if let Some(prefix) = e.strip_suffix('*') {
                if name.starts_with(prefix) {
                    return Some(e.clone());
                }
            } else if e == name {
                return Some(e.clone());
            }
        }
        None
    }
}

/// The value of a plain string literal token (`"abc"` → `abc`).
fn str_value(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

// ---------------------------------------------------------------------------
// error-context
// ---------------------------------------------------------------------------

/// Filesystem calls that always produce `io::Error`.
const IO_CALLS: &[&str] = &[
    "read_exact_at",
    "write_all",
    "write_at",
    "sync_all",
    "sync_data",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "seek",
    "set_len",
    "flush",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "read_dir",
    "rename",
    "copy",
    "metadata",
];
/// Generic names that are io calls only with a `File`/`fs` receiver.
const IO_CALLS_QUALIFIED: &[&str] = &["open", "create", "read", "write"];
/// Markers that context was attached within the statement.
const CONTEXT_MARKERS: &[&str] = &["map_err", "in_file", "at_file", "io_at", "with_context"];

/// `io::Error` propagation in tdb-storage must attach the path/atom
/// context: a bare `?` after a filesystem call erases which partition
/// file failed, and the retry/quarantine policies key off that context.
pub fn error_context(file: &SourceFile) -> Vec<Finding> {
    const RULE: &str = "error-context";
    let mut out = Vec::new();
    if file.crate_name() != "storage" || file.is_test_file {
        return out;
    }
    for i in 0..file.len() {
        if skipped(file, i, RULE) {
            continue;
        }
        if file.tok(i).kind != TokenKind::Ident || !file.is_punct(i + 1, '(') {
            continue;
        }
        let name = file.text(i);
        let qualified = i >= 2
            && file.is_punct(i - 1, ':')
            && (file.is_ident(i - 3, "File") || file.is_ident(i - 3, "fs"));
        let is_io = IO_CALLS.contains(&name) || (IO_CALLS_QUALIFIED.contains(&name) && qualified);
        if !is_io {
            continue;
        }
        // match the call's parentheses, then look for `?`
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < file.len() {
            if file.is_punct(j, '(') {
                depth += 1;
            } else if file.is_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if !file.is_punct(j + 1, '?') {
            continue;
        }
        // context attached anywhere in the enclosing statement?
        let stmt_start = statement_start(file, i);
        let stmt_end = (j..file.len())
            .find(|&k| file.is_punct(k, ';'))
            .unwrap_or(file.len() - 1);
        let has_context =
            (stmt_start..=stmt_end).any(|k| CONTEXT_MARKERS.iter().any(|m| file.is_ident(k, m)));
        if !has_context {
            out.push(finding(
                file,
                i,
                RULE,
                format!(
                    "`{name}(..)?` propagates io::Error without file context: \
                     attach the partition path (`.at_file(&self.path)?` or \
                     `.map_err(..)`) so retries and error messages name the \
                     failing file"
                ),
            ));
        }
    }
    out
}

fn statement_start(file: &SourceFile, i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if file.is_punct(j, ';') || file.is_punct(j, '{') || file.is_punct(j, '}') {
            return j + 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    #[test]
    fn float_width_fires_on_threshold_cast() {
        let f = file(
            "crates/cluster/src/x.rs",
            "fn scan(v: f64, threshold: f64) -> bool { v as f32 >= threshold as f32 }",
        );
        let got = float_width(&f);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got[0].message.contains("f32"));
    }

    #[test]
    fn float_width_quiet_without_threshold_context() {
        let f = file(
            "crates/kernels/src/x.rs",
            "fn smooth(v: f32) -> f32 { v * 0.5f32 }",
        );
        assert!(float_width(&f).is_empty());
    }

    #[test]
    fn panic_path_flags_unwrap_and_indexing() {
        let f = file(
            "crates/wire/src/x.rs",
            "fn handle(v: Vec<u8>, i: usize) -> u8 { let x = v.get(0).unwrap(); v[i] + x }",
        );
        let got = panic_path(&f);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn panic_path_ignores_tests_attrs_and_other_crates() {
        let f = file(
            "crates/wire/src/x.rs",
            "#[derive(Debug)]\nstruct S;\n#[test]\nfn t() { None::<u8>.unwrap(); }\n",
        );
        assert!(panic_path(&f).is_empty());
        let f = file("crates/turbgen/src/x.rs", "fn t(v: Vec<u8>) -> u8 { v[0] }");
        assert!(panic_path(&f).is_empty());
    }

    #[test]
    fn lock_graph_detects_cycle() {
        let a = file(
            "crates/cache/src/a.rs",
            "fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }",
        );
        let b = file(
            "crates/cache/src/b.rs",
            "fn g(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); }",
        );
        let got = lock_graph(&[a, b]);
        assert!(got.iter().any(|f| f.message.contains("cycle")), "{got:?}");
    }

    #[test]
    fn lock_graph_consistent_order_is_clean() {
        let a = file(
            "crates/cache/src/a.rs",
            "fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\n\
             fn g(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }",
        );
        assert!(lock_graph(&[a]).is_empty());
    }

    #[test]
    fn lock_graph_follows_intra_crate_calls_one_level() {
        // f holds alpha while calling helper (which locks beta); g takes
        // beta then alpha — a cycle only visible through the call edge
        let a = file(
            "crates/cache/src/a.rs",
            "fn f(&self) { let g = self.alpha.lock(); self.helper(1); }\n\
             fn helper(&self, n: u32) { let h = self.beta.lock(); }\n\
             fn g(&self) { let x = self.beta.lock(); let y = self.alpha.lock(); }",
        );
        let got = lock_graph(&[a]);
        assert!(
            got.iter()
                .any(|f| f.message.contains("via call to `helper`")),
            "{got:?}"
        );
    }

    #[test]
    fn lock_graph_does_not_follow_ambiguous_names() {
        // two fns named helper in the crate: the call is not followed,
        // so no cycle is manufactured
        let a = file(
            "crates/cache/src/a.rs",
            "fn f(&self) { let g = self.alpha.lock(); self.helper(1); }\n\
             fn helper(&self, n: u32) { let h = self.beta.lock(); }\n\
             fn g(&self) { let x = self.beta.lock(); let y = self.alpha.lock(); }",
        );
        let b = file("crates/cache/src/b.rs", "fn helper(&self, n: u32) { }");
        assert!(lock_graph(&[a, b]).is_empty());
    }

    #[test]
    fn lock_order_flags_guard_held_across_recv() {
        let a = file(
            "crates/core/src/a.rs",
            "fn f(&self) { let g = self.state.lock(); let v = rx.recv(); }",
        );
        let got = lock_order(&[a]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("recv"));
    }

    #[test]
    fn lock_order_temporary_guard_dies_at_statement_end() {
        let a = file(
            "crates/core/src/a.rs",
            "fn f(&self) { self.state.lock().push(1); let v = rx.recv(); }",
        );
        assert!(lock_order(&[a]).is_empty());
    }

    #[test]
    fn metrics_registry_both_directions() {
        let declared = DeclaredMetrics::from_list(&["cache.hits", "io.ops.*", "never.used"]);
        let f = file(
            "crates/cache/src/a.rs",
            "fn f() { tdb_obs::add(\"cache.hits\", 1); tdb_obs::add(\"cache.hitz\", 1); \
             reg.add(&format!(\"io.ops.{name}\"), n); }",
        );
        let got = metrics_registry(&[f], &declared);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().any(|f| f.message.contains("cache.hitz")));
        assert!(got.iter().any(|f| f.message.contains("never.used")));
    }

    #[test]
    fn error_context_requires_file_context() {
        let f = file(
            "crates/storage/src/a.rs",
            "fn f(&self) -> StorageResult<()> { self.file.write_all(&b)?; Ok(()) }",
        );
        let got = error_context(&f);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = file(
            "crates/storage/src/a.rs",
            "fn f(&self) -> StorageResult<()> { self.file.write_all(&b).at_file(&self.path)?; Ok(()) }",
        );
        assert!(error_context(&f).is_empty());
    }

    #[test]
    fn pragma_suppresses_findings() {
        let f = file(
            "crates/wire/src/x.rs",
            "fn handle(v: Vec<u8>) -> u8 {\n    // tdb-lint: allow(panic-path)\n    v[0]\n}",
        );
        assert!(panic_path(&f).is_empty());
    }
}
