//! A lightweight item/expression scanner over the token stream.
//!
//! Builds the per-file model the rules work on: the significant (non
//! trivia) token sequence, test-code spans (`#[cfg(test)]` modules and
//! `#[test]` functions are exempt from production-path rules), inline
//! `// tdb-lint: allow(<rule>)` pragmas, and the span + name of every
//! `fn` item (rules like `float-width` reason per function).

use std::collections::{HashMap, HashSet};

use crate::lexer::{lex, Token, TokenKind};

/// One function item: its name and the significant-token index range of
/// its body (braces included).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Index into [`SourceFile::sig`] of the opening `{`.
    pub body_start: usize,
    /// Index just past the closing `}`.
    pub body_end: usize,
}

/// A lexed and scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub text: String,
    /// Every token, trivia included (tiles the text).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Function items found in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Byte spans of test-only code (`#[cfg(test)]` / `#[test]` items).
    test_spans: Vec<(usize, usize)>,
    /// Lines on which `// tdb-lint: allow(rule, ...)` pragmas act.
    allows: HashMap<u32, HashSet<String>>,
    /// Whether the whole file is test code (lives under `tests/`).
    pub is_test_file: bool,
}

impl SourceFile {
    /// Lexes and scans one file.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let path = path.into();
        let text = text.into();
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let is_test_file =
            path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/");
        let mut file = SourceFile {
            path,
            text,
            tokens,
            sig,
            fns: Vec::new(),
            test_spans: Vec::new(),
            allows: HashMap::new(),
            is_test_file,
        };
        file.collect_allows();
        file.collect_test_spans();
        file.collect_fns();
        file
    }

    /// The crate this file belongs to (`crates/cache/...` → `cache`,
    /// `compat/parking_lot/...` → `parking_lot`), or the first path
    /// segment when the layout is unfamiliar.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") | Some("compat") => parts.next().unwrap_or(""),
            Some(first) => first,
            None => "",
        }
    }

    /// Significant token at sig-index `i`.
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Text of the significant token at sig-index `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tok(i).text(&self.text)
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// Whether the significant token at `i` is a punct with this text.
    pub fn is_punct(&self, i: usize, p: char) -> bool {
        i < self.len() && self.tok(i).kind == TokenKind::Punct && self.text(i).starts_with(p)
    }

    /// Whether the significant token at `i` is an identifier equal to `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokenKind::Ident && self.text(i) == s
    }

    /// Whether byte offset `pos` lies inside test-only code.
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.is_test_file || self.test_spans.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Whether a finding of `rule` on `line` is suppressed by a pragma: a
    /// trailing pragma acts on its own line, a standalone pragma comment
    /// acts on the line below it.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.contains(rule) || rules.contains("*"))
    }

    /// The 1-based line of significant token `i`.
    pub fn line(&self, i: usize) -> u32 {
        self.tok(i).line
    }

    /// The trimmed source line containing byte offset `pos` (used as the
    /// drift-stable baseline key).
    pub fn line_text(&self, pos: usize) -> &str {
        let start = self.text[..pos].rfind('\n').map_or(0, |i| i + 1);
        let end = self.text[pos..]
            .find('\n')
            .map_or(self.text.len(), |i| pos + i);
        self.text[start..end].trim()
    }

    fn collect_allows(&mut self) {
        for t in &self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let body = t.text(&self.text);
            let Some(at) = body.find("tdb-lint:") else {
                continue;
            };
            let rest = &body[at + "tdb-lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                continue;
            };
            let Some(close) = rest[open..].find(')') else {
                continue;
            };
            let rules: HashSet<String> = rest[open + "allow(".len()..open + close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            // a standalone pragma comment (nothing but whitespace before
            // it on the line) acts on the first code line below it
            // (skipping the rest of the comment block); a trailing pragma
            // acts on its own line
            let standalone = self.text[..t.start]
                .rfind('\n')
                .map_or(&self.text[..t.start], |i| &self.text[i + 1..t.start])
                .trim()
                .is_empty();
            let target = if standalone {
                self.next_code_line(t.line)
            } else {
                t.line
            };
            self.allows.entry(target).or_default().extend(rules);
        }
    }

    /// The first line after `line` that is not blank or comment-only
    /// (where a standalone pragma's suppression lands).
    fn next_code_line(&self, line: u32) -> u32 {
        let mut n = line + 1;
        for l in self.text.lines().skip(line as usize) {
            let t = l.trim();
            if !t.is_empty() && !t.starts_with("//") && !t.starts_with('*') {
                break;
            }
            n += 1;
        }
        n
    }

    /// Finds `#[test]` / `#[cfg(test)]` attributed items and records the
    /// byte span of each (attribute through closing brace or semicolon).
    fn collect_test_spans(&mut self) {
        let mut i = 0;
        while i < self.len() {
            if self.is_punct(i, '#') && self.is_punct(i + 1, '[') {
                // scan the attribute body for the ident `test`
                let attr_start = self.tok(i).start;
                let mut j = i + 2;
                let mut depth = 1;
                let mut is_test_attr = false;
                let mut negated = false;
                while j < self.len() && depth > 0 {
                    if self.is_punct(j, '[') {
                        depth += 1;
                    } else if self.is_punct(j, ']') {
                        depth -= 1;
                    } else if self.is_ident(j, "test") {
                        is_test_attr = true;
                    } else if self.is_ident(j, "not") {
                        // `#[cfg(not(test))]` guards production code
                        negated = true;
                    }
                    j += 1;
                }
                let is_test_attr = is_test_attr && !negated;
                if is_test_attr {
                    // the attributed item runs to its matching `}` (or a
                    // `;` that arrives before any `{`)
                    let mut k = j;
                    let mut end = None;
                    while k < self.len() {
                        if self.is_punct(k, ';') {
                            end = Some(self.tok(k).end);
                            break;
                        }
                        if self.is_punct(k, '{') {
                            end = Some(self.tok(self.match_brace(k)).end);
                            break;
                        }
                        k += 1;
                    }
                    let end = end.unwrap_or(self.text.len());
                    self.test_spans.push((attr_start, end));
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }

    /// Sig-index of the `}` matching the `{` at sig-index `open`.
    pub fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.len() {
            if self.is_punct(i, '{') {
                depth += 1;
            } else if self.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.len().saturating_sub(1)
    }

    fn collect_fns(&mut self) {
        let mut fns = Vec::new();
        let mut i = 0;
        while i + 1 < self.len() {
            if self.is_ident(i, "fn") && self.tok(i + 1).kind == TokenKind::Ident {
                let name = self.text(i + 1).to_string();
                // find the body `{`; a `;` first means a trait/extern decl
                let mut j = i + 2;
                let mut body = None;
                while j < self.len() {
                    if self.is_punct(j, ';') {
                        break;
                    }
                    if self.is_punct(j, '{') {
                        body = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = self.match_brace(open);
                    fns.push(FnItem {
                        name,
                        body_start: open,
                        body_end: close + 1,
                    });
                }
            }
            i += 1;
        }
        self.fns = fns;
    }

    /// The function items whose body contains sig-index `i` (innermost
    /// last).
    pub fn enclosing_fns(&self, i: usize) -> impl Iterator<Item = &FnItem> {
        self.fns
            .iter()
            .filter(move |f| i >= f.body_start && i < f.body_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mod_and_test_fn() {
        let src = r#"
fn live() { x.unwrap(); }
#[test]
fn a_test() { y.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { z.unwrap(); }
}
"#;
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        let live = src.find("x.unwrap").unwrap();
        let in_test = src.find("y.unwrap").unwrap();
        let in_mod = src.find("z.unwrap").unwrap();
        assert!(!f.in_test_code(live));
        assert!(f.in_test_code(in_test));
        assert!(f.in_test_code(in_mod));
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "// tdb-lint: allow(panic-path)\nlet a = b.unwrap();\nlet c = d.unwrap(); // tdb-lint: allow(panic-path, float-width)\nlet e = f.unwrap();\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.allowed("panic-path", 2));
        assert!(f.allowed("panic-path", 3));
        assert!(f.allowed("float-width", 3));
        assert!(!f.allowed("panic-path", 4));
        assert!(!f.allowed("lock-order", 2));
    }

    #[test]
    fn fn_items_and_enclosing() {
        let src = "fn outer(threshold: f64) { fn inner() {} let x = 1; }\nfn other() {}";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert_eq!(f.fns.len(), 3);
        let x_at = f
            .sig
            .iter()
            .position(|&t| f.tokens[t].text(src) == "x")
            .unwrap();
        let names: Vec<&str> = f.enclosing_fns(x_at).map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["outer"]);
    }

    #[test]
    fn crate_name_from_path() {
        assert_eq!(
            SourceFile::new("crates/cache/src/semantic.rs", "").crate_name(),
            "cache"
        );
        assert_eq!(
            SourceFile::new("compat/parking_lot/src/lib.rs", "").crate_name(),
            "parking_lot"
        );
        assert_eq!(SourceFile::new("tests/foo.rs", "").crate_name(), "tests");
    }
}
