//! CLI driver: `cargo run -p tdb-lint [-- --update-baseline]`.
//!
//! Exit codes: 0 = clean (modulo baseline), 1 = new findings, 2 = usage
//! or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use tdb_lint::{
    apply_baseline, find_workspace_root, lint_workspace, load_baseline, render_json,
    write_baseline, BASELINE_FILE,
};

fn main() -> ExitCode {
    let mut update = false;
    let mut verbose = false;
    let mut json = false;
    let mut forbid_baseline = false;
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--verbose" | "-v" => verbose = true,
            "--json" => json = true,
            "--forbid-baseline" => forbid_baseline = true,
            "--help" | "-h" => {
                println!(
                    "tdb-lint: domain lints for the ThresholDB workspace\n\n\
                     USAGE: cargo run -p tdb-lint [-- FLAGS]\n\n\
                     FLAGS:\n  --update-baseline  rewrite {BASELINE_FILE} to cover current findings\n  \
                     --json             emit the report as JSON on stdout\n  \
                     --forbid-baseline  fail if {BASELINE_FILE} grandfathers any finding\n  \
                     --verbose, -v      also list baselined findings\n  --help, -h         this help"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tdb-lint: unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "tdb-lint: no workspace Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tdb-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if update {
        if let Err(e) = write_baseline(&root, &findings) {
            eprintln!("tdb-lint: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "tdb-lint: wrote {} finding(s) to {BASELINE_FILE}",
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("tdb-lint: cannot read {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = apply_baseline(findings, &baseline);

    if json {
        print!("{}", render_json(&report));
        return if report.ok() && (!forbid_baseline || baseline.is_empty()) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if verbose {
        for f in &report.baselined {
            println!("baselined: {}", f.render());
        }
    }
    for key in &report.stale {
        eprintln!(
            "tdb-lint: warning: stale baseline entry (fixed? prune with --update-baseline): {key}"
        );
    }
    for f in &report.new {
        eprintln!("{}", f.render());
    }
    println!(
        "tdb-lint: {} new, {} baselined, {} stale",
        report.new.len(),
        report.baselined.len(),
        report.stale.len()
    );
    if forbid_baseline && !baseline.is_empty() {
        eprintln!(
            "tdb-lint: --forbid-baseline: {BASELINE_FILE} grandfathers {} finding(s) — \
             the baseline is burned down; fix findings or use a justified pragma \
             instead of re-growing it",
            baseline.len()
        );
        return ExitCode::FAILURE;
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tdb-lint: {} new finding(s) — fix them, add a justified \
             `// tdb-lint: allow(<rule>)` pragma, or (for pre-existing debt) \
             run with --update-baseline",
            report.new.len()
        );
        ExitCode::FAILURE
    }
}
