//! A hand-rolled Rust lexer.
//!
//! Tokenises Rust source into a flat stream that tiles the input exactly
//! (every byte belongs to exactly one token), which gives two properties
//! the lint relies on: round-tripping (`concat(tokens) == input`, tested
//! by proptest over the workspace's own sources) and total robustness —
//! the lexer never panics, whatever bytes it is fed. Anything it cannot
//! classify becomes an [`TokenKind::Unknown`] token of one character.
//!
//! The token model is deliberately coarse (no keyword table, numeric
//! suffixes stay inside the literal token): the rules in
//! [`crate::rules`] work on identifier/punct shapes, not on a full AST.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `threshold`, `f32`, `r#match`).
    Ident,
    /// Lifetime such as `'a` (label or loop lifetime included).
    Lifetime,
    /// Integer literal, suffix included (`17`, `0x5A5A`, `1_000u64`).
    Int,
    /// Float literal, suffix included (`1.0`, `2.5e-3`, `1.0f32`).
    Float,
    /// String literal: plain, raw, byte or C string, quotes included.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// `// ...` comment (newline excluded).
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// A single punctuation character (`.`, `?`, `{`, `!`, ...).
    Punct,
    /// Spaces, tabs and newlines.
    Whitespace,
    /// A byte sequence the lexer cannot classify (kept for round-trip).
    Unknown,
}

/// One token: kind plus byte span and 1-based starting line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token carries no syntax (whitespace or comment).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Tokenises `src` completely; the returned tokens tile `0..src.len()`.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        chars: src.char_indices().peekable(),
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&(start, c)) = self.chars.peek() {
            let line = self.line;
            let kind = self.next_kind(start, c);
            let end = self.pos();
            self.tokens.push(Token {
                kind,
                start,
                end,
                line,
            });
        }
        self.tokens
    }

    /// Byte position just past everything consumed so far.
    fn pos(&mut self) -> usize {
        match self.chars.peek() {
            Some(&(i, _)) => i,
            None => self.src.len(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek_char(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// Character after the next one, without consuming anything.
    fn peek2(&self, from: usize) -> Option<char> {
        let mut it = self.src[from..].chars();
        it.next()?;
        it.next()
    }

    fn peek3(&self, from: usize) -> Option<char> {
        let mut it = self.src[from..].chars();
        it.next()?;
        it.next()?;
        it.next()
    }

    fn next_kind(&mut self, start: usize, c: char) -> TokenKind {
        match c {
            c if c.is_whitespace() => {
                while self.peek_char().is_some_and(char::is_whitespace) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            '/' => match self.peek2(start) {
                Some('/') => {
                    while self.peek_char().is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    TokenKind::LineComment
                }
                Some('*') => {
                    self.bump(); // '/'
                    self.bump(); // '*'
                    let mut depth = 1u32;
                    while depth > 0 {
                        match self.bump() {
                            Some('*') if self.peek_char() == Some('/') => {
                                self.bump();
                                depth -= 1;
                            }
                            Some('/') if self.peek_char() == Some('*') => {
                                self.bump();
                                depth += 1;
                            }
                            Some(_) => {}
                            None => break, // unterminated: swallow to EOF
                        }
                    }
                    TokenKind::BlockComment
                }
                _ => {
                    self.bump();
                    TokenKind::Punct
                }
            },
            '"' => {
                self.bump();
                self.string_body();
                TokenKind::Str
            }
            '\'' => self.char_or_lifetime(start),
            c if c.is_ascii_digit() => self.number(),
            c if is_ident_start(c) => self.ident_or_prefixed_literal(start),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// Consumes a plain string body after its opening quote.
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // whatever is escaped, even a quote
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, start: usize) -> TokenKind {
        self.bump(); // opening quote
        match self.peek_char() {
            Some('\\') => {
                // escaped char literal: consume escape then to closing quote
                self.bump();
                self.bump();
                while self.peek_char().is_some_and(|c| c != '\'') {
                    self.bump();
                }
                self.bump();
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // 'a' is a char only when a quote follows immediately;
                // otherwise it is a lifetime ('a, 'static, loop labels)
                if self.peek3(start) == Some('\'') {
                    self.bump();
                    self.bump();
                    TokenKind::Char
                } else {
                    self.bump();
                    while self.peek_char().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    TokenKind::Lifetime
                }
            }
            Some('\'') | None => {
                // `''` (empty, invalid Rust) or a lone quote at EOF:
                // take what is there and keep going
                self.bump();
                TokenKind::Char
            }
            Some(_) => {
                // punctuation char literal like '(' or '∂'
                self.bump();
                if self.peek_char() == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        let mut float = false;
        let radix_prefix = {
            let here = self.pos();
            self.src[here..].starts_with("0x")
                || self.src[here..].starts_with("0o")
                || self.src[here..].starts_with("0b")
        };
        self.bump(); // first digit
        if radix_prefix {
            self.bump(); // x/o/b
            while self
                .peek_char()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            return TokenKind::Int;
        }
        while self
            .peek_char()
            .is_some_and(|c| c.is_ascii_digit() || c == '_')
        {
            self.bump();
        }
        // fractional part: a dot NOT followed by another dot (range) or an
        // identifier start (method call like `1.max(2)`)
        if self.peek_char() == Some('.') {
            let here = self.pos();
            match self.peek2(here) {
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.bump(); // '.'
                    while self
                        .peek_char()
                        .is_some_and(|c| c.is_ascii_digit() || c == '_')
                    {
                        self.bump();
                    }
                }
            }
        }
        // exponent
        if matches!(self.peek_char(), Some('e' | 'E')) {
            let here = self.pos();
            let sign = matches!(self.peek2(here), Some('+' | '-'));
            let digit_after = if sign {
                self.peek3(here).is_some_and(|c| c.is_ascii_digit())
            } else {
                self.peek2(here).is_some_and(|c| c.is_ascii_digit())
            };
            if digit_after {
                float = true;
                self.bump(); // e
                if sign {
                    self.bump();
                }
                while self
                    .peek_char()
                    .is_some_and(|c| c.is_ascii_digit() || c == '_')
                {
                    self.bump();
                }
            }
        }
        // suffix (f32, u64, usize, ...) stays inside the literal token
        if self.peek_char().is_some_and(is_ident_start) {
            let suffix_start = self.pos();
            while self.peek_char().is_some_and(is_ident_continue) {
                self.bump();
            }
            let suffix = &self.src[suffix_start..self.src.len().min(self.pos())];
            if suffix.starts_with('f') {
                float = true;
            }
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    /// An identifier, or a raw/byte string it prefixes (`r"..."`,
    /// `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, `c"..."`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self, start: usize) -> TokenKind {
        let rest = &self.src[start..];
        // raw identifier r#name
        if rest.starts_with("r#") && self.peek3(start).is_some_and(is_ident_start) {
            self.bump();
            self.bump();
            while self.peek_char().is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokenKind::Ident;
        }
        // byte char b'x'
        if rest.starts_with("b'") {
            self.bump(); // b
            self.char_or_lifetime(start + 1);
            return TokenKind::Char;
        }
        // string prefixes: r, b, br, rb (non-standard but harmless), c, cr
        for prefix in ["br", "cr", "r", "b", "c"] {
            if let Some(after) = rest.strip_prefix(prefix) {
                let hashes = after.len() - after.trim_start_matches('#').len();
                if after[hashes..].starts_with('"') {
                    for _ in 0..prefix.len() + hashes + 1 {
                        self.bump();
                    }
                    if prefix.contains('r') {
                        self.raw_string_body(hashes);
                    } else {
                        self.string_body();
                    }
                    return TokenKind::Str;
                }
            }
        }
        // plain identifier / keyword
        self.bump();
        while self.peek_char().is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    /// Consumes a raw-string body after its opening quote: runs until a
    /// quote followed by `hashes` hash characters.
    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.bump() {
                Some('"') => {
                    let here = self.pos();
                    let tail = &self.src[here..];
                    if tail.chars().take(hashes).filter(|&c| c == '#').count() == hashes {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut cursor = 0;
        for t in &toks {
            assert_eq!(t.start, cursor, "tokens must tile the input: {src:?}");
            rebuilt.push_str(t.text(src));
            cursor = t.end;
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn idents_keywords_numbers() {
        let got = kinds("fn f(x: f32) -> u64 { 1.0f32 + 0x5A_5A + 2.5e-3 }");
        assert!(got.contains(&(TokenKind::Ident, "f32")));
        assert!(got.contains(&(TokenKind::Float, "1.0f32")));
        assert!(got.contains(&(TokenKind::Int, "0x5A_5A")));
        assert!(got.contains(&(TokenKind::Float, "2.5e-3")));
        roundtrip("fn f(x: f32) -> u64 { 1.0f32 + 0x5A_5A + 2.5e-3 }");
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        let got = kinds("0..10; 1.max(2); 2.");
        assert!(got.contains(&(TokenKind::Int, "0")));
        assert!(got.contains(&(TokenKind::Int, "10")));
        assert!(got.contains(&(TokenKind::Int, "1")));
        assert!(got.contains(&(TokenKind::Ident, "max")));
        assert!(got.contains(&(TokenKind::Float, "2.")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; 'outer: loop {} }");
        assert!(got.contains(&(TokenKind::Lifetime, "'a")));
        assert!(got.contains(&(TokenKind::Char, "'x'")));
        assert!(got.contains(&(TokenKind::Char, "'\\n'")));
        assert!(got.contains(&(TokenKind::Lifetime, "'outer")));
    }

    #[test]
    fn strings_raw_strings_comments() {
        let src = r##"let s = "a\"b"; let r = r#"raw "inner" ok"#; /* outer /* nested */ done */ // tail"##;
        let got = kinds(src);
        assert!(got.contains(&(TokenKind::Str, r#""a\"b""#)));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("inner")));
        roundtrip(src);
        let trivia: Vec<_> = lex(src).into_iter().filter(Token::is_trivia).collect();
        assert!(trivia.iter().any(|t| t.kind == TokenKind::BlockComment));
        assert!(trivia.iter().any(|t| t.kind == TokenKind::LineComment));
    }

    #[test]
    fn line_numbers_advance() {
        let src = "a\nb\n  c";
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "'",
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated",
            "'''''",
            "b'",
            "0x",
            "1e",
            "\u{0}\u{7f}é漢",
            "#![no_std]\nfn é() {}",
        ] {
            roundtrip(src);
        }
    }
}
