//! `tdb-obs`: query-path observability for ThresholDB.
//!
//! Two pieces, both dependency-free:
//!
//! * [`metrics`] — a process-wide registry of named atomic counters,
//!   gauges and log₂-bucketed histograms that storage, cache, cluster
//!   and service layers report into as they work.
//! * [`trace`] — a per-query span tree ([`QueryTrace`]) the mediator
//!   assembles for each threshold / PDF / top-k query, with one span per
//!   phase plus per-node detail spans carrying structured attributes.

pub mod declared;
pub mod metrics;
pub mod trace;

pub use declared::{declared_metrics, is_declared, DECLARED_METRICS};
pub use metrics::{
    add, global, observe, Counter, Gauge, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
pub use trace::{AttrValue, QueryTrace, TraceSpan};
