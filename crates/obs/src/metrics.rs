//! Process-wide metrics: named atomic counters, gauges and histograms.
//!
//! Subsystems report into the global registry as they work (buffer-pool
//! hits, semantic-cache outcomes, bytes per modelled device, queries by
//! outcome); [`MetricsRegistry::snapshot`] freezes everything into plain
//! maps for the `metrics` wire endpoint and the repro harness.
//!
//! Hot paths should cache a [`Counter`]/[`Gauge`] handle (one registry
//! lookup at construction, lock-free increments after); occasional
//! reporters can use the [`add`]/[`observe`] free functions.
//!
//! Concurrency instrumentation (DESIGN.md §7) lives under three
//! prefixes: `scan.*` (shared scans: `scan.shared`,
//! `scan.coalesced_queries`, `scan.atoms_saved`), `scheduler.*`
//! (cross-query coalescing: `scheduler.batches`, `scheduler.coalesced`)
//! and `admission.*` (wire-server load control: `admission.admitted`,
//! `admission.shed`, gauge `admission.queue_depth`, histogram
//! `admission.wait_s`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down (queue depths,
/// in-flight work).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: log₂ microseconds, so bucket `i` counts
/// observations in `[2^(i-1), 2^i)` µs — 1 µs to ~9 minutes.
pub const HISTOGRAM_BUCKETS: usize = 30;

/// A log₂-bucketed histogram of durations in seconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Sum in nanoseconds (fits ~584 years).
    sum_ns: AtomicU64,
    /// Maximum in nanoseconds.
    max_ns: AtomicU64,
}

/// A histogram handle.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    /// Records one observation (seconds; negatives clamp to zero).
    pub fn observe(&self, seconds: f64) {
        let h = &self.0;
        let s = seconds.max(0.0);
        let us = s * 1e6;
        // log2 bucket of the duration in microseconds; sub-µs lands in 0
        let idx = if us < 1.0 {
            0
        } else {
            ((us.log2().floor() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
        };
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let ns = (s * 1e9) as u64;
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        h.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum_s: h.sum_ns.load(Ordering::Relaxed) as f64 / 1e9,
            max_s: h.max_ns.load(Ordering::Relaxed) as f64 / 1e9,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .map(|(i, c)| (2f64.powi(i as i32) * 1e-6, c.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A frozen histogram: `(upper_bound_seconds, count)` per bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_s: f64,
    pub max_s: f64,
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or `None` before any.
    pub fn mean_s(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_s / self.count as f64)
    }
}

/// A frozen view of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A named counter's value (0 if never reported).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A named gauge's value (0 if never reported).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Counter deltas relative to an earlier snapshot (saturating: metrics
    /// only move forward, so a negative delta means `earlier` is newer).
    pub fn counters_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect()
    }
}

/// Registry of named metrics. Usually accessed through [`global`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Adds to a counter by name.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Records a histogram observation by name.
    pub fn observe(&self, name: &str, seconds: f64) {
        self.histogram(name).observe(seconds);
    }

    /// Freezes every metric into plain maps.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry every subsystem reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Adds to a global counter by name.
pub fn add(name: &str, n: u64) {
    global().add(name, n);
}

/// Records an observation into a global histogram by name.
pub fn observe(name: &str, seconds: f64) {
    global().observe(name, seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.hits");
        c.add(3);
        reg.add("a.hits", 2);
        reg.add("a.misses", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.hits"), 5);
        assert_eq!(snap.counter("a.misses"), 1);
        assert_eq!(snap.counter("never"), 0);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(reg.snapshot().gauge("depth"), 1);
        g.set(-4);
        assert_eq!(reg.snapshot().gauge("depth"), -4);
    }

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wall_s");
        h.observe(0.5e-6); // bucket 0
        h.observe(3e-6); // 3 µs → bucket 2 ([2,4) µs)
        h.observe(1.0); // 1 s = 2^~19.93 µs → bucket 20
        let snap = reg.snapshot();
        let hs = &snap.histograms["wall_s"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.buckets[0].1, 1);
        assert_eq!(hs.buckets[2].1, 1);
        assert_eq!(hs.buckets[20].1, 1);
        assert!(hs.max_s > 0.99 && hs.max_s <= 1.0);
        let mean = hs.mean_s().unwrap();
        assert!(mean > 0.33 && mean < 0.34, "mean {mean}");
    }

    #[test]
    fn snapshot_deltas() {
        let reg = MetricsRegistry::new();
        reg.add("x", 2);
        let before = reg.snapshot();
        reg.add("x", 5);
        reg.add("y", 1);
        let after = reg.snapshot();
        let d = after.counters_since(&before);
        assert_eq!(d["x"], 5);
        assert_eq!(d["y"], 1);
    }

    #[test]
    fn handles_share_state_with_registry() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("shared"), 2);
    }
}
