//! Per-query traces: a span tree over the query's phases.
//!
//! The mediator assembles one [`QueryTrace`] per threshold / PDF / top-k
//! query. Phase spans (`phase.*`) carry the *modelled* durations of the
//! time breakdown — so the trace is always consistent with the reported
//! `TimeBreakdown` — while per-node spans (`node.*`) carry measured
//! wall-clock plus structured attributes: cache outcome, atoms scanned,
//! buffer-pool hits/misses, bytes charged per device.

use std::fmt;

/// A structured attribute value on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v:.6}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One span: a named phase with a start offset and duration (seconds,
/// relative to the trace origin), attributes, and child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    pub name: String,
    /// Offset from the query's start, seconds.
    pub start_s: f64,
    pub duration_s: f64,
    pub attrs: Vec<(String, AttrValue)>,
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// A leaf span.
    pub fn new(name: impl Into<String>, start_s: f64, duration_s: f64) -> Self {
        Self {
            name: name.into(),
            start_s,
            duration_s,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Adds an attribute in place.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) {
        self.attrs.push((key.into(), value.into()));
    }

    /// Appends a child span.
    pub fn push_child(&mut self, child: TraceSpan) {
        self.children.push(child);
    }

    /// End offset of the span.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// An attribute's value.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first search for the first span named `name` (self included).
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use fmt::Write;
        let indent = "  ".repeat(depth);
        let _ = write!(
            out,
            "{indent}{} [{:.4}s +{:.4}s]",
            self.name, self.start_s, self.duration_s
        );
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// The trace of one query: a span tree rooted at the whole query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    pub root: TraceSpan,
}

impl QueryTrace {
    /// Wraps a root span.
    pub fn new(root: TraceSpan) -> Self {
        Self { root }
    }

    /// Finds a span anywhere in the tree by name.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.root.find(name)
    }

    /// Every span in the tree, depth-first.
    pub fn spans(&self) -> Vec<&TraceSpan> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(s) = stack.pop() {
            out.push(s);
            stack.extend(s.children.iter().rev());
        }
        out
    }

    /// Human-readable indented tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let mut root = TraceSpan::new("query.threshold", 0.0, 2.5)
            .with_attr("points", 42u64)
            .with_attr("wall_s", 0.031);
        root.push_child(TraceSpan::new("phase.cache_lookup", 0.0, 0.01));
        let mut io = TraceSpan::new("phase.io", 0.01, 2.0);
        io.push_child(TraceSpan::new("node.0", 0.01, 1.8).with_attr("cache", "miss"));
        root.push_child(io);
        QueryTrace::new(root)
    }

    #[test]
    fn find_searches_depth_first() {
        let t = sample();
        assert!(t.span("query.threshold").is_some());
        assert_eq!(t.span("node.0").unwrap().duration_s, 1.8);
        assert!(t.span("nope").is_none());
    }

    #[test]
    fn attrs_and_end_offset() {
        let t = sample();
        let root = &t.root;
        assert_eq!(root.attr("points"), Some(&AttrValue::U64(42)));
        assert!(root.attr("missing").is_none());
        let io = t.span("phase.io").unwrap();
        assert!((io.end_s() - 2.01).abs() < 1e-12);
    }

    #[test]
    fn spans_enumerates_whole_tree_depth_first() {
        let t = sample();
        let names: Vec<&str> = t.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "query.threshold",
                "phase.cache_lookup",
                "phase.io",
                "node.0"
            ]
        );
    }

    #[test]
    fn render_shows_tree_and_attrs() {
        let r = sample().render();
        assert!(r.contains("query.threshold"));
        assert!(r.contains("  phase.io"));
        assert!(r.contains("    node.0"));
        assert!(r.contains("cache=miss"));
        assert!(r.contains("points=42"));
    }
}
