//! The central registry of every metric name this workspace reports.
//!
//! `tdb-lint`'s `metrics-registry` rule cross-checks this list against
//! every name passed to a reporting call (`counter`, `gauge`,
//! `histogram`, `add`, `observe`) in non-test code, in both directions:
//! a reported name missing here fails the lint (a typo silently splits a
//! counter), and an entry here that nothing reports fails too (a
//! dashboard that stays at zero forever). Entries ending in `*` declare
//! a dynamic family built with `format!` (the prefix is matched).
//!
//! Keep the list sorted; add the entry in the same commit that adds the
//! reporting call.

/// Every declared metric name (or `*`-suffixed prefix family).
pub const DECLARED_METRICS: &[&str] = &[
    "admission.admitted",
    "admission.queue_depth",
    "admission.shed",
    "admission.wait_s",
    "bufferpool.evictions",
    "bufferpool.hits",
    "bufferpool.misses",
    "cache.pdf.conflicts",
    "cache.pdf.evictions",
    "cache.pdf.hits",
    "cache.pdf.inserts",
    "cache.pdf.misses",
    "cache.semantic.conflicts",
    "cache.semantic.evictions",
    "cache.semantic.hits",
    "cache.semantic.inserts",
    "cache.semantic.misses",
    "cache.semantic.quarantined",
    "cache.semantic.rebuilt",
    "compress.blocks.lossless",
    "compress.blocks.lossy",
    "compress.bytes.logical",
    "compress.bytes.stored",
    "compress.corrections",
    "compress.max_error_micro",
    "compress.reconstruct_s",
    "faults.injected.corrupt",
    "faults.injected.latency",
    "faults.injected.node_down",
    "faults.injected.transient",
    "io.bytes.*",
    "io.ops.*",
    "node.active_subqueries",
    "node.atoms_scanned",
    "node.deadline_exceeded",
    "node.unavailable",
    "qos.admitted.*",
    "qos.evicted",
    "qos.shed.*",
    "query.degraded",
    "query.pdf.count",
    "query.pdf.wall_s",
    "query.points_returned",
    "query.threshold.count",
    "query.threshold.failed",
    "query.threshold.ok",
    "query.threshold.rejected",
    "query.threshold.wall_s",
    "query.topk.count",
    "query.topk.wall_s",
    "replication.failover.chunks",
    "replication.failover.nodes",
    "replication.failover.rounds",
    "replication.lost_chunks",
    "replication.rebalance.atoms_copied",
    "replication.rebalance.chunks_moved",
    "replication.rebalance.joins",
    "replication.rebalance.leaves",
    "scan.atoms_saved",
    "scan.coalesced_queries",
    "scan.shared",
    "scheduler.batches",
    "scheduler.coalesced",
    "storage.read.retries",
    "storage.read.retry_success",
    "wire.connection.timeout",
    "wire.request.oversized",
];

/// The declared metric names, for programmatic consumers (exporters,
/// dashboards, tests).
pub fn declared_metrics() -> &'static [&'static str] {
    DECLARED_METRICS
}

/// Whether `name` is covered by the declared list (exact entry or
/// `*`-prefix family).
pub fn is_declared(name: &str) -> bool {
    DECLARED_METRICS
        .iter()
        .any(|entry| match entry.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => *entry == name,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        for w in DECLARED_METRICS.windows(2) {
            assert!(
                w[0] < w[1],
                "declared metrics out of order: {} >= {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn wildcard_and_exact_matching() {
        assert!(is_declared("bufferpool.hits"));
        assert!(is_declared("io.ops.read_block"));
        assert!(!is_declared("bufferpool.hitz"));
        assert!(!is_declared("io"));
    }
}
