//! Admission control for the front-end server.
//!
//! The paper's mediator serves "a large number of simultaneous users"
//! from a small cluster; an unbounded thread-per-connection server would
//! let a burst of expensive scans oversubscribe the nodes and collapse
//! every query's latency at once. The [`AdmissionQueue`] bounds the
//! number of in-flight data queries (`max_inflight`), parks a bounded
//! backlog (`queue_depth`) and load-sheds anything beyond it with a
//! typed [`Busy`](crate::proto::Response::Busy) response so clients can
//! back off and retry instead of timing out.
//!
//! Admission order is FIFO with fairness across connections: when a slot
//! frees up, the waiter from the connection with the *fewest queries
//! served so far* wins, with arrival order breaking ties. A chatty
//! connection therefore cannot starve a quiet one by keeping the queue
//! stuffed with its own requests.
//!
//! Metrics: `admission.admitted` / `admission.shed` counters, the
//! `admission.queue_depth` gauge and the `admission.wait_s` histogram.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Sizing knobs for the admission queue.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Data queries evaluated concurrently; further ones wait.
    pub max_inflight: usize,
    /// Waiters parked beyond `max_inflight`; further ones are shed.
    pub queue_depth: usize,
    /// Suggested client back-off carried in the `Busy` response, ms.
    pub busy_retry_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_inflight: 8,
            queue_depth: 32,
            busy_retry_ms: 100,
        }
    }
}

#[derive(Default)]
struct Inner {
    inflight: usize,
    /// Parked waiters as `(connection, arrival_seq)`.
    waiting: Vec<(u64, u64)>,
    /// Arrival seqs whose slot has been handed over but not yet claimed.
    granted: HashSet<u64>,
    /// Queries served per connection, for the fairness rule.
    served: HashMap<u64, u64>,
    next_seq: u64,
}

/// The verdict for one query.
pub enum Admission {
    /// Run it; drop the permit when done.
    Granted(Permit),
    /// Shed: the queue is full. Carries the depth seen and a retry hint.
    Busy { queue_depth: usize, retry_ms: u64 },
}

/// Bounded in-flight counter plus a fair bounded wait queue.
pub struct AdmissionQueue {
    config: AdmissionConfig,
    inner: Mutex<Inner>,
    freed: Condvar,
}

impl AdmissionQueue {
    /// A queue with the given sizing.
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(Self {
            config: AdmissionConfig {
                max_inflight: config.max_inflight.max(1),
                ..config
            },
            inner: Mutex::new(Inner::default()),
            freed: Condvar::new(),
        })
    }

    /// Asks to run one data query on behalf of `conn`. Blocks while the
    /// queue has room, sheds with [`Admission::Busy`] when it does not.
    pub fn admit(self: &Arc<Self>, conn: u64) -> Admission {
        let start = Instant::now();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.inflight < self.config.max_inflight {
            inner.inflight += 1;
            *inner.served.entry(conn).or_default() += 1;
            drop(inner);
            tdb_obs::add("admission.admitted", 1);
            tdb_obs::observe("admission.wait_s", 0.0);
            return Admission::Granted(Permit {
                queue: Arc::clone(self),
            });
        }
        if inner.waiting.len() >= self.config.queue_depth {
            let depth = inner.waiting.len();
            drop(inner);
            tdb_obs::add("admission.shed", 1);
            return Admission::Busy {
                queue_depth: depth,
                retry_ms: self.config.busy_retry_ms,
            };
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.waiting.push((conn, seq));
        tdb_obs::global()
            .gauge("admission.queue_depth")
            .set(inner.waiting.len() as i64);
        while !inner.granted.contains(&seq) {
            inner = self.freed.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        inner.granted.remove(&seq);
        *inner.served.entry(conn).or_default() += 1;
        drop(inner);
        tdb_obs::add("admission.admitted", 1);
        tdb_obs::observe("admission.wait_s", start.elapsed().as_secs_f64());
        Admission::Granted(Permit {
            queue: Arc::clone(self),
        })
    }

    fn release(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.inflight -= 1;
        if inner.inflight < self.config.max_inflight && !inner.waiting.is_empty() {
            // fairness: least-served connection first, arrival order as
            // the tie-break
            let Some(winner) = inner
                .waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, &(conn, seq))| {
                    (inner.served.get(&conn).copied().unwrap_or(0), seq)
                })
                .map(|(i, _)| i)
            else {
                return;
            };
            let (_, seq) = inner.waiting.remove(winner);
            inner.granted.insert(seq);
            inner.inflight += 1;
            tdb_obs::global()
                .gauge("admission.queue_depth")
                .set(inner.waiting.len() as i64);
            drop(inner);
            self.freed.notify_all();
        }
    }
}

/// RAII in-flight slot; dropping it admits the next fair waiter.
pub struct Permit {
    queue: Arc<AdmissionQueue>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.queue.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn sheds_beyond_queue_depth() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 1,
            queue_depth: 0,
            busy_retry_ms: 55,
        });
        let Admission::Granted(permit) = q.admit(0) else {
            panic!("first query must be admitted");
        };
        match q.admit(1) {
            Admission::Busy {
                queue_depth,
                retry_ms,
            } => {
                assert_eq!(queue_depth, 0);
                assert_eq!(retry_ms, 55);
            }
            Admission::Granted(_) => panic!("second query must be shed"),
        }
        drop(permit);
        assert!(matches!(q.admit(1), Admission::Granted(_)));
    }

    #[test]
    fn fairness_prefers_least_served_connection() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 1,
            queue_depth: 8,
            busy_retry_ms: 1,
        });
        // connection 0 holds the only slot and has served one query
        let Admission::Granted(first) = q.admit(0) else {
            panic!("first query must be admitted");
        };
        // park A2, A3 (conn 0) then B1 (conn 1), in that arrival order
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for (conn, tag) in [(0u64, "A2"), (0, "A3"), (1, "B1")] {
            // wait until the previous waiter is parked so arrival order
            // is deterministic
            let before = q.inner.lock().unwrap().waiting.len();
            let qc = Arc::clone(&q);
            let txc = tx.clone();
            handles.push(std::thread::spawn(move || {
                let Admission::Granted(p) = qc.admit(conn) else {
                    panic!("waiter should not be shed");
                };
                txc.send(tag).unwrap();
                drop(p);
            }));
            while q.inner.lock().unwrap().waiting.len() <= before {
                std::thread::yield_now();
            }
        }
        drop(first);
        // B1 wins over the earlier-arrived A2/A3 (conn 1 served nothing),
        // then A2 and A3 drain in arrival order
        let order: Vec<_> = (0..3).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(order, ["B1", "A2", "A3"]);
        for h in handles {
            h.join().unwrap();
        }
    }
}
