//! Admission control for the front-end server.
//!
//! The paper's mediator serves "a large number of simultaneous users"
//! from a small cluster; an unbounded thread-per-connection server would
//! let a burst of expensive scans oversubscribe the nodes and collapse
//! every query's latency at once. The [`AdmissionQueue`] bounds the
//! number of in-flight data queries (`max_inflight`), parks a bounded
//! backlog (`queue_depth`) and load-sheds anything beyond it with a
//! typed [`Busy`](crate::proto::Response::Busy) response so clients can
//! back off and retry instead of timing out.
//!
//! Admission is *weighted fair queueing across tenants*: requests carry
//! an API key that maps to a [`TenantSpec`] with a scheduling weight, an
//! in-flight quota and a shed priority. Each tenant keeps a virtual-time
//! accumulator that advances by `1/weight` per admitted query; when a
//! slot frees up the eligible tenant with the smallest virtual time wins,
//! so over any busy interval tenants are served in proportion to their
//! weights and an idle tenant never banks unbounded credit (its clock is
//! floored to the active minimum on re-entry). Within a tenant the waiter
//! from the connection with the *fewest queries served so far* wins, with
//! arrival order breaking ties — a chatty connection cannot starve a
//! quiet one. When the wait queue is full, an arrival from a tenant with
//! a higher shed priority evicts the lowest-priority newest waiter
//! instead of being shed itself.
//!
//! Requests without an API key (and with an unknown one) belong to the
//! built-in anonymous tenant: weight 1, no private quota, shed priority
//! 0. With no tenants configured every request lands there and the queue
//! degenerates to the original single-class fair queue.
//!
//! Metrics: `admission.admitted` / `admission.shed` counters, the
//! `admission.queue_depth` gauge, the `admission.wait_s` histogram, and
//! per-tenant `qos.admitted.*` / `qos.shed.*` families plus the
//! `qos.evicted` count of waiters displaced by higher-priority arrivals.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

/// One tenant's QoS contract, matched by API key.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The key carried in the request envelope's `api_key` field.
    pub api_key: String,
    /// WFQ weight: over a busy interval this tenant gets `weight / Σ
    /// weights` of the admitted queries.
    pub weight: u64,
    /// Private in-flight quota; the global `max_inflight` still applies.
    pub max_inflight: usize,
    /// Queue-full arbitration rank: an arrival evicts a parked waiter of
    /// strictly lower priority instead of being shed. Anonymous traffic
    /// has priority 0.
    pub shed_priority: u8,
}

impl TenantSpec {
    /// A tenant with the given key and weight, no private quota, and
    /// shed priority 1 (above anonymous traffic).
    pub fn new(api_key: impl Into<String>, weight: u64) -> Self {
        Self {
            api_key: api_key.into(),
            weight: weight.max(1),
            max_inflight: usize::MAX,
            shed_priority: 1,
        }
    }

    /// Caps this tenant's concurrently evaluating queries.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Sets the queue-full arbitration rank.
    pub fn with_shed_priority(mut self, priority: u8) -> Self {
        self.shed_priority = priority;
        self
    }
}

/// Sizing knobs for the admission queue.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Data queries evaluated concurrently; further ones wait.
    pub max_inflight: usize,
    /// Waiters parked beyond `max_inflight`; further ones are shed.
    pub queue_depth: usize,
    /// Suggested client back-off carried in the `Busy` response, ms.
    pub busy_retry_ms: u64,
    /// Tenant QoS contracts; unknown or absent API keys map to the
    /// built-in anonymous tenant.
    pub tenants: Vec<TenantSpec>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_inflight: 8,
            queue_depth: 32,
            busy_retry_ms: 100,
            tenants: Vec::new(),
        }
    }
}

/// Per-tenant scheduler state.
struct Tenant {
    spec: TenantSpec,
    /// Metric label: the API key, or `anonymous` for the default tenant.
    label: String,
    /// Queries this tenant has evaluating right now.
    inflight: usize,
    /// WFQ virtual finish time; advances by `1/weight` per grant.
    vtime: f64,
}

/// A parked admission request.
struct Waiter {
    tenant: usize,
    conn: u64,
    seq: u64,
}

#[derive(Default)]
struct Inner {
    inflight: usize,
    waiting: Vec<Waiter>,
    /// Arrival seqs whose slot has been handed over but not yet claimed.
    granted: HashSet<u64>,
    /// Arrival seqs displaced from a full queue by a higher-priority
    /// arrival; they wake to a `Busy` verdict.
    evicted: HashSet<u64>,
    /// Queries served per (tenant, connection), for the fairness rule.
    served: HashMap<(usize, u64), u64>,
    tenants: Vec<Tenant>,
    next_seq: u64,
}

impl Inner {
    /// The tenant at `t` — indices come from [`Inner::tenant_of`] or a
    /// parked [`Waiter`], both bounded by the immutable tenant table.
    fn tenant(&self, t: usize) -> &Tenant {
        // tdb-lint: allow(panic-path) — index provenance per the doc above
        &self.tenants[t]
    }

    /// Mutable access with the same index provenance as [`Inner::tenant`].
    fn tenant_mut(&mut self, t: usize) -> &mut Tenant {
        // tdb-lint: allow(panic-path) — index provenance per the doc above
        &mut self.tenants[t]
    }

    /// Index of the tenant owning `api_key` (anonymous on no match).
    fn tenant_of(&self, api_key: Option<&str>) -> usize {
        api_key
            .and_then(|key| {
                self.tenants
                    .iter()
                    .position(|t| !t.spec.api_key.is_empty() && t.spec.api_key == key)
            })
            .unwrap_or(0)
    }

    /// Advances `t`'s virtual clock for one grant, flooring it to the
    /// minimum over active tenants so an idle tenant re-enters at the
    /// current service frontier instead of with banked credit.
    fn bump_vtime(&mut self, t: usize) {
        let mut floor = f64::INFINITY;
        for (i, tenant) in self.tenants.iter().enumerate() {
            let active = tenant.inflight > 0 || self.waiting.iter().any(|w| w.tenant == i);
            if active && tenant.vtime < floor {
                floor = tenant.vtime;
            }
        }
        if !floor.is_finite() {
            floor = 0.0;
        }
        let tenant = self.tenant_mut(t);
        tenant.vtime = tenant.vtime.max(floor) + 1.0 / tenant.spec.weight as f64;
    }

    /// Whether tenant `t` may start another query under its quota.
    fn under_quota(&self, t: usize) -> bool {
        let tenant = self.tenant(t);
        tenant.inflight < tenant.spec.max_inflight
    }
}

/// The verdict for one query.
pub enum Admission {
    /// Run it; drop the permit when done.
    Granted(Permit),
    /// Shed: the queue is full. Carries the depth seen and a retry hint.
    Busy { queue_depth: usize, retry_ms: u64 },
}

/// Bounded in-flight counter plus a weighted-fair bounded wait queue.
pub struct AdmissionQueue {
    config: AdmissionConfig,
    inner: Mutex<Inner>,
    freed: Condvar,
}

impl AdmissionQueue {
    /// A queue with the given sizing and tenant contracts.
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        let mut tenants = vec![Tenant {
            spec: TenantSpec {
                api_key: String::new(),
                weight: 1,
                max_inflight: usize::MAX,
                shed_priority: 0,
            },
            label: "anonymous".to_string(),
            inflight: 0,
            vtime: 0.0,
        }];
        for spec in &config.tenants {
            tenants.push(Tenant {
                label: spec.api_key.clone(),
                spec: spec.clone(),
                inflight: 0,
                vtime: 0.0,
            });
        }
        Arc::new(Self {
            config: AdmissionConfig {
                max_inflight: config.max_inflight.max(1),
                ..config
            },
            inner: Mutex::new(Inner {
                tenants,
                ..Inner::default()
            }),
            freed: Condvar::new(),
        })
    }

    /// Asks to run one anonymous data query on behalf of `conn`.
    pub fn admit(self: &Arc<Self>, conn: u64) -> Admission {
        self.admit_keyed(conn, None)
    }

    /// Asks to run one data query on behalf of `conn` under the tenant
    /// owning `api_key`. Blocks while the queue has room, sheds with
    /// [`Admission::Busy`] when it does not.
    pub fn admit_keyed(self: &Arc<Self>, conn: u64, api_key: Option<&str>) -> Admission {
        let start = Instant::now();
        let mut inner = self.inner.lock();
        let t = inner.tenant_of(api_key);
        if inner.inflight < self.config.max_inflight && inner.under_quota(t) {
            inner.inflight += 1;
            inner.tenant_mut(t).inflight += 1;
            inner.bump_vtime(t);
            *inner.served.entry((t, conn)).or_default() += 1;
            let label = inner.tenant(t).label.clone();
            drop(inner);
            tdb_obs::add("admission.admitted", 1);
            tdb_obs::add(&format!("qos.admitted.{label}"), 1);
            tdb_obs::observe("admission.wait_s", 0.0);
            return Admission::Granted(Permit {
                queue: Arc::clone(self),
                tenant: t,
            });
        }
        if inner.waiting.len() >= self.config.queue_depth {
            // queue full: displace the lowest-priority newest waiter if
            // it ranks strictly below this arrival, else shed the arrival
            let priority = inner.tenant(t).spec.shed_priority;
            let victim = inner
                .waiting
                .iter()
                .enumerate()
                .filter(|(_, w)| inner.tenant(w.tenant).spec.shed_priority < priority)
                .min_by_key(|(_, w)| {
                    (
                        inner.tenant(w.tenant).spec.shed_priority,
                        std::cmp::Reverse(w.seq),
                    )
                })
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let displaced = inner.waiting.remove(i);
                    inner.evicted.insert(displaced.seq);
                    self.freed.notify_all();
                }
                None => {
                    let depth = inner.waiting.len();
                    let label = inner.tenant(t).label.clone();
                    drop(inner);
                    tdb_obs::add("admission.shed", 1);
                    tdb_obs::add(&format!("qos.shed.{label}"), 1);
                    return Admission::Busy {
                        queue_depth: depth,
                        retry_ms: self.config.busy_retry_ms,
                    };
                }
            }
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.waiting.push(Waiter {
            tenant: t,
            conn,
            seq,
        });
        tdb_obs::global()
            .gauge("admission.queue_depth")
            .set(inner.waiting.len() as i64);
        loop {
            if inner.granted.remove(&seq) {
                break;
            }
            if inner.evicted.remove(&seq) {
                let depth = inner.waiting.len();
                let label = inner.tenant(t).label.clone();
                drop(inner);
                tdb_obs::add("admission.shed", 1);
                tdb_obs::add("qos.evicted", 1);
                tdb_obs::add(&format!("qos.shed.{label}"), 1);
                return Admission::Busy {
                    queue_depth: depth,
                    retry_ms: self.config.busy_retry_ms,
                };
            }
            self.freed.wait(&mut inner);
        }
        *inner.served.entry((t, conn)).or_default() += 1;
        let label = inner.tenant(t).label.clone();
        drop(inner);
        tdb_obs::add("admission.admitted", 1);
        tdb_obs::add(&format!("qos.admitted.{label}"), 1);
        tdb_obs::observe("admission.wait_s", start.elapsed().as_secs_f64());
        Admission::Granted(Permit {
            queue: Arc::clone(self),
            tenant: t,
        })
    }

    fn release(&self, tenant: usize) {
        let mut inner = self.inner.lock();
        inner.inflight -= 1;
        inner.tenant_mut(tenant).inflight -= 1;
        let mut woke = false;
        // A release can unblock more than one waiter: this tenant's quota
        // freed alongside a slot an earlier release left idle for lack of
        // an eligible waiter. Grant until slots or eligible waiters run
        // out.
        while inner.inflight < self.config.max_inflight {
            // WFQ: the eligible tenant with the smallest virtual time
            // wins, index breaking ties deterministically
            let mut best: Option<usize> = None;
            for w in &inner.waiting {
                if !inner.under_quota(w.tenant) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (bv, wv) = (inner.tenant(b).vtime, inner.tenant(w.tenant).vtime);
                        wv < bv || (wv == bv && w.tenant < b)
                    }
                };
                if better {
                    best = Some(w.tenant);
                }
            }
            let Some(winner_tenant) = best else { break };
            // within the tenant: least-served connection first, arrival
            // order as the tie-break
            let Some(winner) = inner
                .waiting
                .iter()
                .enumerate()
                .filter(|(_, w)| w.tenant == winner_tenant)
                .min_by_key(|(_, w)| {
                    (
                        inner.served.get(&(w.tenant, w.conn)).copied().unwrap_or(0),
                        w.seq,
                    )
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let w = inner.waiting.remove(winner);
            inner.granted.insert(w.seq);
            inner.inflight += 1;
            inner.tenant_mut(w.tenant).inflight += 1;
            inner.bump_vtime(w.tenant);
            woke = true;
        }
        if woke {
            tdb_obs::global()
                .gauge("admission.queue_depth")
                .set(inner.waiting.len() as i64);
            drop(inner);
            self.freed.notify_all();
        }
    }
}

/// RAII in-flight slot; dropping it admits the next fair waiter.
pub struct Permit {
    queue: Arc<AdmissionQueue>,
    tenant: usize,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.queue.release(self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn sheds_beyond_queue_depth() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 1,
            queue_depth: 0,
            busy_retry_ms: 55,
            tenants: Vec::new(),
        });
        let Admission::Granted(permit) = q.admit(0) else {
            panic!("first query must be admitted");
        };
        match q.admit(1) {
            Admission::Busy {
                queue_depth,
                retry_ms,
            } => {
                assert_eq!(queue_depth, 0);
                assert_eq!(retry_ms, 55);
            }
            Admission::Granted(_) => panic!("second query must be shed"),
        }
        drop(permit);
        assert!(matches!(q.admit(1), Admission::Granted(_)));
    }

    #[test]
    fn fairness_prefers_least_served_connection() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 1,
            queue_depth: 8,
            busy_retry_ms: 1,
            tenants: Vec::new(),
        });
        // connection 0 holds the only slot and has served one query
        let Admission::Granted(first) = q.admit(0) else {
            panic!("first query must be admitted");
        };
        // park A2, A3 (conn 0) then B1 (conn 1), in that arrival order
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for (conn, tag) in [(0u64, "A2"), (0, "A3"), (1, "B1")] {
            // wait until the previous waiter is parked so arrival order
            // is deterministic
            let before = q.inner.lock().waiting.len();
            let qc = Arc::clone(&q);
            let txc = tx.clone();
            handles.push(std::thread::spawn(move || {
                let Admission::Granted(p) = qc.admit(conn) else {
                    panic!("waiter should not be shed");
                };
                txc.send(tag).unwrap();
                drop(p);
            }));
            while q.inner.lock().waiting.len() <= before {
                std::thread::yield_now();
            }
        }
        drop(first);
        // B1 wins over the earlier-arrived A2/A3 (conn 1 served nothing),
        // then A2 and A3 drain in arrival order
        let order: Vec<_> = (0..3).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(order, ["B1", "A2", "A3"]);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Parks waiters for the given `(conn, key, tag)` arrivals behind one
    /// held slot, then releases it and returns the serial grant order.
    fn drain_order(
        q: &Arc<AdmissionQueue>,
        arrivals: &[(u64, Option<&'static str>, &'static str)],
    ) -> Vec<&'static str> {
        let Admission::Granted(first) = q.admit_keyed(u64::MAX, None) else {
            panic!("pilot query must be admitted");
        };
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for &(conn, key, tag) in arrivals {
            let before = q.inner.lock().waiting.len();
            let qc = Arc::clone(q);
            let txc = tx.clone();
            handles.push(std::thread::spawn(move || {
                let Admission::Granted(p) = qc.admit_keyed(conn, key) else {
                    panic!("waiter should not be shed");
                };
                txc.send(tag).unwrap();
                drop(p);
            }));
            while q.inner.lock().waiting.len() <= before {
                std::thread::yield_now();
            }
        }
        drop(first);
        let order: Vec<_> = (0..arrivals.len()).map(|_| rx.recv().unwrap()).collect();
        for h in handles {
            h.join().unwrap();
        }
        order
    }

    #[test]
    fn wfq_serves_tenants_in_weight_proportion() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 1,
            queue_depth: 16,
            busy_retry_ms: 1,
            tenants: vec![TenantSpec::new("heavy", 3), TenantSpec::new("light", 1)],
        });
        // 4 heavy + 2 light waiters on distinct connections; with one
        // slot draining serially, virtual times (heavy +1/3 per grant,
        // light +1) interleave three heavy grants per light one
        let order = drain_order(
            &q,
            &[
                (1, Some("heavy"), "h1"),
                (2, Some("heavy"), "h2"),
                (3, Some("heavy"), "h3"),
                (4, Some("heavy"), "h4"),
                (5, Some("light"), "l1"),
                (6, Some("light"), "l2"),
            ],
        );
        assert_eq!(order, ["h1", "l1", "h2", "h3", "h4", "l2"]);
    }

    #[test]
    fn per_tenant_quota_caps_inflight() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 4,
            queue_depth: 8,
            busy_retry_ms: 1,
            tenants: vec![TenantSpec::new("capped", 1).with_max_inflight(1)],
        });
        let Admission::Granted(held) = q.admit_keyed(0, Some("capped")) else {
            panic!("first capped query must be admitted");
        };
        // global slots remain, but the tenant's quota is exhausted: the
        // second capped query parks while an anonymous one sails through
        let qc = Arc::clone(&q);
        let parked = std::thread::spawn(move || {
            let Admission::Granted(p) = qc.admit_keyed(1, Some("capped")) else {
                panic!("queued capped query should be granted eventually");
            };
            drop(p);
        });
        while q.inner.lock().waiting.is_empty() {
            std::thread::yield_now();
        }
        assert!(matches!(q.admit(2), Admission::Granted(_)));
        assert_eq!(q.inner.lock().waiting.len(), 1);
        drop(held);
        parked.join().unwrap();
    }

    #[test]
    fn full_queue_evicts_lower_priority_waiter() {
        let q = AdmissionQueue::new(AdmissionConfig {
            max_inflight: 1,
            queue_depth: 1,
            busy_retry_ms: 9,
            tenants: vec![TenantSpec::new("premium", 2).with_shed_priority(5)],
        });
        let Admission::Granted(held) = q.admit(0) else {
            panic!("first query must be admitted");
        };
        // an anonymous waiter fills the queue...
        let qc = Arc::clone(&q);
        let anon = std::thread::spawn(move || qc.admit(1));
        while q.inner.lock().waiting.is_empty() {
            std::thread::yield_now();
        }
        // ...and a premium arrival displaces it instead of being shed
        let qc = Arc::clone(&q);
        let premium = std::thread::spawn(move || {
            let Admission::Granted(p) = qc.admit_keyed(2, Some("premium")) else {
                panic!("premium arrival must take the displaced slot");
            };
            drop(p);
        });
        match anon.join().unwrap() {
            Admission::Busy { retry_ms, .. } => assert_eq!(retry_ms, 9),
            Admission::Granted(_) => panic!("displaced waiter must come back busy"),
        }
        drop(held);
        premium.join().unwrap();
        // anonymous traffic cannot displace anyone: refill and overflow
        let Admission::Granted(_held) = q.admit(3) else {
            panic!("queue should be idle again");
        };
        let qc = Arc::clone(&q);
        let _waiter = std::thread::spawn(move || qc.admit(4));
        while q.inner.lock().waiting.is_empty() {
            std::thread::yield_now();
        }
        assert!(matches!(q.admit(5), Admission::Busy { .. }));
    }
}
