//! A small, strict JSON value type with serializer and parser.
//!
//! Covers the full JSON grammar (RFC 8259) minus one deliberate
//! restriction: numbers are stored as `f64` (protocol messages only carry
//! counts, times and coordinates, all exactly representable).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64 (numeric, integral, non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as &str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice of elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises to a compact single-line string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like browsers do
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            detail: detail.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
        {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // surrogate pairs
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self
                                    .bytes
                                    .get(self.pos..)
                                    .is_some_and(|rest| rest.starts_with(b"\\u"))
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // multi-byte UTF-8: length from the lead byte, then
                    // re-decode exactly that many bytes from the source
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let ch = std::str::from_utf8(chunk)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos = start + len;
                    out.push(ch);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let quad = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(quad).map_err(|_| self.err("invalid hex"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid hex"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_known_values() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(3.5).encode(), "3.5");
        assert_eq!(Json::Str("a\"b\n".into()).encode(), r#""a\"b\n""#);
        let o = Json::obj([("b", Json::Num(1.0)), ("a", Json::Arr(vec![Json::Null]))]);
        assert_eq!(o.encode(), r#"{"a":[null],"b":1}"#);
    }

    #[test]
    fn parse_known_documents() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(
            Json::parse(" [1, 2.5, -3e2] ").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        let v = Json::parse(r#"{"k": "v", "n": {"x": []}}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("v"));
        assert_eq!(v.get("n").unwrap().get("x").unwrap(), &Json::Arr(vec![]));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""aébA\t""#).unwrap(),
            Json::Str("aébA\t".into())
        );
        // surrogate pair: U+1F600
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        // raw multi-byte UTF-8 passes through
        assert_eq!(Json::parse("\"πω\"").unwrap(), Json::Str("πω".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
            "\"bad\\escape\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    fn arb_json() -> impl Strategy<Value = Json> {
        let leaf = prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            (-1e12f64..1e12).prop_map(|n| Json::Num((n * 100.0).round() / 100.0)),
            "[a-zA-Z0-9 _\"\\\\\n\t\u{e9}]{0,20}".prop_map(Json::Str),
        ];
        leaf.prop_recursive(3, 32, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Json::Obj),
            ]
        })
    }

    proptest! {
        #[test]
        fn roundtrip(v in arb_json()) {
            let encoded = v.encode();
            let back = Json::parse(&encoded).unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn parser_never_panics(s in "\\PC{0,64}") {
            let _ = Json::parse(&s);
        }
    }
}
