//! The Web-services front end.
//!
//! "Access to the data is provided by means of Web-services ... The
//! Web-services are hosted on a front-end Web-server, which handles user
//! requests" (paper §2, Fig. 1). This crate is that layer for ThresholDB:
//! a line-delimited JSON protocol served over TCP by [`server::Server`],
//! spoken by [`client::Client`], with two binaries:
//!
//! * `tdb-server` — builds a synthetic archive and serves it,
//! * `tdbql` — a small interactive/scripted query client.
//!
//! The JSON codec ([`json`]) is written in-repo (no external
//! serialization crates) and is also used to persist experiment results.

pub mod admission;
pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionQueue, Permit, TenantSpec};
pub use client::Client;
pub use json::Json;
pub use proto::{Request, Response};
pub use server::Server;
pub use tdb_cluster::{CompressionConfig, CompressionMode};
