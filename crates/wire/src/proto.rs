//! Protocol messages: one JSON object per line in each direction.
//!
//! Mirrors the JHTDB Web-service surface (`GetThreshold`, PDFs, top-k,
//! field statistics) without SOAP's envelope overhead — the modelled
//! user-transfer cost in the cluster still uses the XML inflation the
//! paper reports, this protocol is the *functional* interface.

use std::fmt;

use tdb_cluster::{CompressionConfig, CompressionMode};
use tdb_core::{
    AttrValue, DegradedInfo, DerivedField, FailedNode, QueryTrace, ThresholdPoint, TimeBreakdown,
    TraceSpan,
};
use tdb_zorder::Box3;

use crate::json::Json;

/// A malformed or unsupported message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ProtoError> {
    v.get(key)
        .ok_or_else(|| ProtoError(format!("missing field '{key}'")))
}

fn str_field(v: &Json, key: &str) -> Result<String, ProtoError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ProtoError(format!("field '{key}' must be a string")))
}

fn num_field(v: &Json, key: &str) -> Result<f64, ProtoError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| ProtoError(format!("field '{key}' must be a number")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ProtoError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| ProtoError(format!("field '{key}' must be a non-negative integer")))
}

fn derived_field(v: &Json) -> Result<DerivedField, ProtoError> {
    let name = str_field(v, "derived")?;
    DerivedField::parse(&name).ok_or_else(|| ProtoError(format!("unknown derived field '{name}'")))
}

fn box_to_json(b: &Box3) -> Json {
    Json::Arr(
        b.lo.iter()
            .chain(b.hi.iter())
            .map(|&v| Json::Num(f64::from(v)))
            .collect(),
    )
}

fn box_from_json(v: &Json) -> Result<Box3, ProtoError> {
    let arr = v
        .as_arr()
        .filter(|a| a.len() == 6)
        .ok_or_else(|| ProtoError("box must be [xl,yl,zl,xu,yu,zu]".into()))?;
    let coords = arr
        .iter()
        .map(|item| {
            item.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| ProtoError("box coordinates must be u32".into()))
        })
        .collect::<Result<Vec<u32>, ProtoError>>()?;
    let &[xl, yl, zl, xu, yu, zu] = coords.as_slice() else {
        return Err(ProtoError("box must be [xl,yl,zl,xu,yu,zu]".into()));
    };
    if xl > xu || yl > yu || zl > zu {
        return Err(ProtoError("box lower corner exceeds upper corner".into()));
    }
    Ok(Box3::new([xl, yl, zl], [xu, yu, zu]))
}

fn compression_to_json(c: &CompressionConfig) -> Json {
    Json::obj([
        ("mode", Json::Str(c.mode.as_str().into())),
        ("stride", Json::Num(f64::from(c.stride))),
        ("max_error", Json::Num(c.max_error)),
    ])
}

fn compression_from_json(v: &Json) -> Result<CompressionConfig, ProtoError> {
    let mode = str_field(v, "mode")?;
    let mode = CompressionMode::parse(&mode)
        .ok_or_else(|| ProtoError(format!("unknown compression mode '{mode}'")))?;
    Ok(CompressionConfig {
        mode,
        stride: u64_field(v, "stride")? as u32,
        max_error: num_field(v, "max_error")?,
    })
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Describe the served dataset.
    Info,
    /// Algorithm 1: all points at or above the threshold.
    GetThreshold {
        raw_field: String,
        derived: DerivedField,
        timestep: u32,
        query_box: Option<Box3>,
        threshold: f64,
        use_cache: bool,
    },
    /// PDF of the derived field's norm (paper Fig. 2).
    GetPdf {
        raw_field: String,
        derived: DerivedField,
        timestep: u32,
        origin: f64,
        bin_width: f64,
        nbins: u32,
    },
    /// The k most intense locations.
    GetTopK {
        raw_field: String,
        derived: DerivedField,
        timestep: u32,
        k: u32,
    },
    /// Whole-field statistics (threshold-selection aid).
    GetStats {
        raw_field: String,
        derived: DerivedField,
        timestep: u32,
    },
    /// Lagrange interpolation of a raw field at fractional positions
    /// (grid units) — the `GetVelocity` family.
    GetPoints {
        raw_field: String,
        timestep: u32,
        /// 4-, 6- or 8-point Lagrange interpolation.
        lag_width: u32,
        positions: Vec<[f64; 3]>,
    },
    /// Enqueues a batch threshold job whose result lands in the session's
    /// MyDB (paper §7, CasJobs-style).
    SubmitJob {
        raw_field: String,
        derived: DerivedField,
        timestep: u32,
        threshold: f64,
        output_table: String,
    },
    /// Polls a batch job.
    JobStatus { job: u64 },
    /// Lists MyDB tables.
    ListMyDb,
    /// Reads a MyDB table's points.
    GetMyDbTable { name: String },
    /// Snapshot of the server's process-wide metrics.
    Metrics,
    /// Runs a threshold query but returns its span tree instead of the
    /// points (query-path introspection).
    GetTrace {
        raw_field: String,
        derived: DerivedField,
        timestep: u32,
        query_box: Option<Box3>,
        threshold: f64,
        use_cache: bool,
    },
}

impl Request {
    /// Serialises to a single-line JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("op", Json::Str("ping".into()))]),
            Request::Info => Json::obj([("op", Json::Str("info".into()))]),
            Request::GetThreshold {
                raw_field,
                derived,
                timestep,
                query_box,
                threshold,
                use_cache,
            } => {
                let mut pairs = vec![
                    ("op", Json::Str("get_threshold".into())),
                    ("field", Json::Str(raw_field.clone())),
                    ("derived", Json::Str(derived.name())),
                    ("timestep", Json::Num(f64::from(*timestep))),
                    ("threshold", Json::Num(*threshold)),
                    ("use_cache", Json::Bool(*use_cache)),
                ];
                if let Some(b) = query_box {
                    pairs.push(("box", box_to_json(b)));
                }
                Json::obj(pairs)
            }
            Request::GetPdf {
                raw_field,
                derived,
                timestep,
                origin,
                bin_width,
                nbins,
            } => Json::obj([
                ("op", Json::Str("get_pdf".into())),
                ("field", Json::Str(raw_field.clone())),
                ("derived", Json::Str(derived.name())),
                ("timestep", Json::Num(f64::from(*timestep))),
                ("origin", Json::Num(*origin)),
                ("bin_width", Json::Num(*bin_width)),
                ("nbins", Json::Num(f64::from(*nbins))),
            ]),
            Request::GetTopK {
                raw_field,
                derived,
                timestep,
                k,
            } => Json::obj([
                ("op", Json::Str("get_topk".into())),
                ("field", Json::Str(raw_field.clone())),
                ("derived", Json::Str(derived.name())),
                ("timestep", Json::Num(f64::from(*timestep))),
                ("k", Json::Num(f64::from(*k))),
            ]),
            Request::GetStats {
                raw_field,
                derived,
                timestep,
            } => Json::obj([
                ("op", Json::Str("get_stats".into())),
                ("field", Json::Str(raw_field.clone())),
                ("derived", Json::Str(derived.name())),
                ("timestep", Json::Num(f64::from(*timestep))),
            ]),
            Request::GetPoints {
                raw_field,
                timestep,
                lag_width,
                positions,
            } => Json::obj([
                ("op", Json::Str("get_points".into())),
                ("field", Json::Str(raw_field.clone())),
                ("timestep", Json::Num(f64::from(*timestep))),
                ("lag_width", Json::Num(f64::from(*lag_width))),
                (
                    "positions",
                    Json::Arr(
                        positions
                            .iter()
                            .map(|p| Json::Arr(p.iter().map(|&v| Json::Num(v)).collect()))
                            .collect(),
                    ),
                ),
            ]),
            Request::SubmitJob {
                raw_field,
                derived,
                timestep,
                threshold,
                output_table,
            } => Json::obj([
                ("op", Json::Str("submit_job".into())),
                ("field", Json::Str(raw_field.clone())),
                ("derived", Json::Str(derived.name())),
                ("timestep", Json::Num(f64::from(*timestep))),
                ("threshold", Json::Num(*threshold)),
                ("output_table", Json::Str(output_table.clone())),
            ]),
            Request::JobStatus { job } => Json::obj([
                ("op", Json::Str("job_status".into())),
                ("job", Json::Num(*job as f64)),
            ]),
            Request::ListMyDb => Json::obj([("op", Json::Str("list_mydb".into()))]),
            Request::GetMyDbTable { name } => Json::obj([
                ("op", Json::Str("get_mydb_table".into())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Metrics => Json::obj([("op", Json::Str("metrics".into()))]),
            Request::GetTrace {
                raw_field,
                derived,
                timestep,
                query_box,
                threshold,
                use_cache,
            } => {
                let mut pairs = vec![
                    ("op", Json::Str("get_trace".into())),
                    ("field", Json::Str(raw_field.clone())),
                    ("derived", Json::Str(derived.name())),
                    ("timestep", Json::Num(f64::from(*timestep))),
                    ("threshold", Json::Num(*threshold)),
                    ("use_cache", Json::Bool(*use_cache)),
                ];
                if let Some(b) = query_box {
                    pairs.push(("box", box_to_json(b)));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Parses a request document.
    pub fn from_json(v: &Json) -> Result<Request, ProtoError> {
        let op = str_field(v, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "info" => Ok(Request::Info),
            "get_threshold" => Ok(Request::GetThreshold {
                raw_field: str_field(v, "field")?,
                derived: derived_field(v)?,
                timestep: u64_field(v, "timestep")? as u32,
                query_box: match v.get("box") {
                    Some(b) => Some(box_from_json(b)?),
                    None => None,
                },
                threshold: num_field(v, "threshold")?,
                use_cache: v.get("use_cache").and_then(Json::as_bool).unwrap_or(true),
            }),
            "get_pdf" => Ok(Request::GetPdf {
                raw_field: str_field(v, "field")?,
                derived: derived_field(v)?,
                timestep: u64_field(v, "timestep")? as u32,
                origin: num_field(v, "origin")?,
                bin_width: num_field(v, "bin_width")?,
                nbins: u64_field(v, "nbins")? as u32,
            }),
            "get_topk" => Ok(Request::GetTopK {
                raw_field: str_field(v, "field")?,
                derived: derived_field(v)?,
                timestep: u64_field(v, "timestep")? as u32,
                k: u64_field(v, "k")? as u32,
            }),
            "get_stats" => Ok(Request::GetStats {
                raw_field: str_field(v, "field")?,
                derived: derived_field(v)?,
                timestep: u64_field(v, "timestep")? as u32,
            }),
            "get_points" => {
                let positions = v
                    .get("positions")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError("positions must be an array".into()))?
                    .iter()
                    .map(|p| {
                        let a = p
                            .as_arr()
                            .filter(|a| a.len() == 3)
                            .ok_or_else(|| ProtoError("position must be [x,y,z]".into()))?;
                        let c = |i: usize| {
                            a.get(i)
                                .and_then(Json::as_f64)
                                .filter(|v| v.is_finite())
                                .ok_or_else(|| ProtoError("coordinate must be finite".into()))
                        };
                        Ok([c(0)?, c(1)?, c(2)?])
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Request::GetPoints {
                    raw_field: str_field(v, "field")?,
                    timestep: u64_field(v, "timestep")? as u32,
                    lag_width: u64_field(v, "lag_width")? as u32,
                    positions,
                })
            }
            "submit_job" => Ok(Request::SubmitJob {
                raw_field: str_field(v, "field")?,
                derived: derived_field(v)?,
                timestep: u64_field(v, "timestep")? as u32,
                threshold: num_field(v, "threshold")?,
                output_table: str_field(v, "output_table")?,
            }),
            "job_status" => Ok(Request::JobStatus {
                job: u64_field(v, "job")?,
            }),
            "list_mydb" => Ok(Request::ListMyDb),
            "get_mydb_table" => Ok(Request::GetMyDbTable {
                name: str_field(v, "name")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "get_trace" => Ok(Request::GetTrace {
                raw_field: str_field(v, "field")?,
                derived: derived_field(v)?,
                timestep: u64_field(v, "timestep")? as u32,
                query_box: match v.get("box") {
                    Some(b) => Some(box_from_json(b)?),
                    None => None,
                },
                threshold: num_field(v, "threshold")?,
                use_cache: v.get("use_cache").and_then(Json::as_bool).unwrap_or(true),
            }),
            other => Err(ProtoError(format!("unknown op '{other}'"))),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    Info {
        dataset: String,
        dims: (u32, u32, u32),
        timesteps: u32,
        fields: Vec<(String, u8)>,
        /// Block codec of the raw-field tier. Absent on the wire when
        /// compression is off, so uncompressed servers keep the original
        /// wire format.
        compression: CompressionConfig,
    },
    Threshold {
        points: Vec<ThresholdPoint>,
        breakdown: TimeBreakdown,
        cache_hits: u32,
        nodes: u32,
        /// Present when nodes failed and the answer is partial.
        degraded: Option<DegradedInfo>,
    },
    Pdf {
        origin: f64,
        bin_width: f64,
        counts: Vec<u64>,
        /// Present when nodes failed and the answer is partial.
        degraded: Option<DegradedInfo>,
    },
    TopK {
        points: Vec<ThresholdPoint>,
        /// Present when nodes failed and the answer is partial.
        degraded: Option<DegradedInfo>,
    },
    Stats {
        count: u64,
        mean: f64,
        rms: f64,
        min: f64,
        max: f64,
    },
    /// Interpolated values, one `[vx, vy, vz]` per requested position.
    Points {
        values: Vec<[f32; 3]>,
    },
    /// Batch job accepted.
    JobAccepted {
        job: u64,
    },
    /// Batch job state: "queued", "running", "done" or "failed".
    JobState {
        state: String,
        /// Rows written (done) or error detail (failed).
        detail: String,
        rows: u64,
    },
    /// MyDB table names.
    MyDbList {
        tables: Vec<String>,
    },
    /// A MyDB table's contents.
    MyDbTable {
        provenance: String,
        points: Vec<ThresholdPoint>,
    },
    /// Process-wide metric values (sorted by name).
    Metrics {
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, i64)>,
    },
    /// A query's span tree. Attribute values arrive as display strings.
    Trace {
        trace: QueryTrace,
    },
    /// The server shed this data query: its admission queue is full.
    /// Retry after roughly `retry_ms` milliseconds.
    Busy {
        queue_depth: u64,
        retry_ms: u64,
    },
    Error {
        message: String,
    },
}

fn span_to_json(s: &TraceSpan) -> Json {
    Json::obj([
        ("name", Json::Str(s.name.clone())),
        ("start_s", Json::Num(s.start_s)),
        ("duration_s", Json::Num(s.duration_s)),
        (
            "attrs",
            Json::Arr(
                s.attrs
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.to_string())]))
                    .collect(),
            ),
        ),
        (
            "children",
            Json::Arr(s.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn span_from_json(v: &Json) -> Result<TraceSpan, ProtoError> {
    let attrs = v
        .get("attrs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError("span attrs must be an array".into()))?
        .iter()
        .map(|pair| {
            let a = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| ProtoError("span attr must be [key, value]".into()))?;
            let key = a
                .first()
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError("attr key must be a string".into()))?;
            let val = a
                .get(1)
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError("attr value must be a string".into()))?;
            Ok((key.to_string(), AttrValue::Str(val.to_string())))
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    let children = v
        .get("children")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError("span children must be an array".into()))?
        .iter()
        .map(span_from_json)
        .collect::<Result<Vec<_>, ProtoError>>()?;
    Ok(TraceSpan {
        name: str_field(v, "name")?,
        start_s: num_field(v, "start_s")?,
        duration_s: num_field(v, "duration_s")?,
        attrs,
        children,
    })
}

fn points_to_json(points: &[ThresholdPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                let (x, y, z) = p.coords();
                Json::Arr(vec![
                    Json::Num(f64::from(x)),
                    Json::Num(f64::from(y)),
                    Json::Num(f64::from(z)),
                    Json::Num(f64::from(p.value)),
                ])
            })
            .collect(),
    )
}

fn points_from_json(v: &Json) -> Result<Vec<ThresholdPoint>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| ProtoError("points must be an array".into()))?
        .iter()
        .map(|item| {
            let a = item
                .as_arr()
                .filter(|a| a.len() == 4)
                .ok_or_else(|| ProtoError("point must be [x,y,z,value]".into()))?;
            let coord = |i: usize| -> Result<u32, ProtoError> {
                a.get(i)
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| ProtoError("point coordinate must be u32".into()))
            };
            let value = a
                .get(3)
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtoError("point value must be a number".into()))?;
            Ok(ThresholdPoint::at(
                coord(0)?,
                coord(1)?,
                coord(2)?,
                value as f32,
            ))
        })
        .collect()
}

fn degraded_to_json(d: &DegradedInfo) -> Json {
    Json::obj([
        (
            "failed_nodes",
            Json::Arr(
                d.failed_nodes
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("node", Json::Num(f.node as f64)),
                            ("reason", Json::Str(f.reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "missing_boxes",
            Json::Arr(d.missing_boxes.iter().map(box_to_json).collect()),
        ),
    ])
}

fn degraded_from_json(v: &Json) -> Result<DegradedInfo, ProtoError> {
    let failed_nodes = v
        .get("failed_nodes")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError("failed_nodes must be an array".into()))?
        .iter()
        .map(|f| {
            Ok(FailedNode {
                node: u64_field(f, "node")? as usize,
                reason: str_field(f, "reason")?,
            })
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    let missing_boxes = v
        .get("missing_boxes")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError("missing_boxes must be an array".into()))?
        .iter()
        .map(box_from_json)
        .collect::<Result<Vec<_>, ProtoError>>()?;
    Ok(DegradedInfo {
        failed_nodes,
        missing_boxes,
    })
}

/// Parses the optional `degraded` member of a response document.
fn opt_degraded(v: &Json) -> Result<Option<DegradedInfo>, ProtoError> {
    v.get("degraded").map(degraded_from_json).transpose()
}

fn breakdown_to_json(b: &TimeBreakdown) -> Json {
    Json::obj([
        ("cache_lookup_s", Json::Num(b.cache_lookup_s)),
        ("io_s", Json::Num(b.io_s)),
        ("compute_s", Json::Num(b.compute_s)),
        ("mediator_db_s", Json::Num(b.mediator_db_s)),
        ("mediator_user_s", Json::Num(b.mediator_user_s)),
    ])
}

fn breakdown_from_json(v: &Json) -> Result<TimeBreakdown, ProtoError> {
    Ok(TimeBreakdown {
        cache_lookup_s: num_field(v, "cache_lookup_s")?,
        io_s: num_field(v, "io_s")?,
        compute_s: num_field(v, "compute_s")?,
        mediator_db_s: num_field(v, "mediator_db_s")?,
        mediator_user_s: num_field(v, "mediator_user_s")?,
    })
}

impl Response {
    /// Serialises to a single-line JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::obj([("ok", Json::Str("pong".into()))]),
            Response::Info {
                dataset,
                dims,
                timesteps,
                fields,
                compression,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Str("info".into())),
                    ("dataset", Json::Str(dataset.clone())),
                    (
                        "dims",
                        Json::Arr(vec![
                            Json::Num(f64::from(dims.0)),
                            Json::Num(f64::from(dims.1)),
                            Json::Num(f64::from(dims.2)),
                        ]),
                    ),
                    ("timesteps", Json::Num(f64::from(*timesteps))),
                    (
                        "fields",
                        Json::Arr(
                            fields
                                .iter()
                                .map(|(n, c)| {
                                    Json::obj([
                                        ("name", Json::Str(n.clone())),
                                        ("ncomp", Json::Num(f64::from(*c))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if compression.is_active() {
                    pairs.push(("compression", compression_to_json(compression)));
                }
                Json::obj(pairs)
            }
            Response::Threshold {
                points,
                breakdown,
                cache_hits,
                nodes,
                degraded,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Str("threshold".into())),
                    ("points", points_to_json(points)),
                    ("breakdown", breakdown_to_json(breakdown)),
                    ("cache_hits", Json::Num(f64::from(*cache_hits))),
                    ("nodes", Json::Num(f64::from(*nodes))),
                ];
                if let Some(d) = degraded {
                    pairs.push(("degraded", degraded_to_json(d)));
                }
                Json::obj(pairs)
            }
            Response::Pdf {
                origin,
                bin_width,
                counts,
                degraded,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Str("pdf".into())),
                    ("origin", Json::Num(*origin)),
                    ("bin_width", Json::Num(*bin_width)),
                    (
                        "counts",
                        Json::Arr(counts.iter().map(|&c| Json::Num(c as f64)).collect()),
                    ),
                ];
                if let Some(d) = degraded {
                    pairs.push(("degraded", degraded_to_json(d)));
                }
                Json::obj(pairs)
            }
            Response::TopK { points, degraded } => {
                let mut pairs = vec![
                    ("ok", Json::Str("topk".into())),
                    ("points", points_to_json(points)),
                ];
                if let Some(d) = degraded {
                    pairs.push(("degraded", degraded_to_json(d)));
                }
                Json::obj(pairs)
            }
            Response::Stats {
                count,
                mean,
                rms,
                min,
                max,
            } => Json::obj([
                ("ok", Json::Str("stats".into())),
                ("count", Json::Num(*count as f64)),
                ("mean", Json::Num(*mean)),
                ("rms", Json::Num(*rms)),
                ("min", Json::Num(*min)),
                ("max", Json::Num(*max)),
            ]),
            Response::Points { values } => Json::obj([
                ("ok", Json::Str("points".into())),
                (
                    "values",
                    Json::Arr(
                        values
                            .iter()
                            .map(|v| {
                                Json::Arr(v.iter().map(|&c| Json::Num(f64::from(c))).collect())
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::JobAccepted { job } => Json::obj([
                ("ok", Json::Str("job_accepted".into())),
                ("job", Json::Num(*job as f64)),
            ]),
            Response::JobState {
                state,
                detail,
                rows,
            } => Json::obj([
                ("ok", Json::Str("job_state".into())),
                ("state", Json::Str(state.clone())),
                ("detail", Json::Str(detail.clone())),
                ("rows", Json::Num(*rows as f64)),
            ]),
            Response::MyDbList { tables } => Json::obj([
                ("ok", Json::Str("mydb_list".into())),
                (
                    "tables",
                    Json::Arr(tables.iter().map(|t| Json::Str(t.clone())).collect()),
                ),
            ]),
            Response::MyDbTable { provenance, points } => Json::obj([
                ("ok", Json::Str("mydb_table".into())),
                ("provenance", Json::Str(provenance.clone())),
                ("points", points_to_json(points)),
            ]),
            Response::Metrics { counters, gauges } => Json::obj([
                ("ok", Json::Str("metrics".into())),
                (
                    "counters",
                    Json::Arr(
                        counters
                            .iter()
                            .map(|(k, v)| {
                                Json::Arr(vec![Json::Str(k.clone()), Json::Num(*v as f64)])
                            })
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    Json::Arr(
                        gauges
                            .iter()
                            .map(|(k, v)| {
                                Json::Arr(vec![Json::Str(k.clone()), Json::Num(*v as f64)])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Trace { trace } => Json::obj([
                ("ok", Json::Str("trace".into())),
                ("root", span_to_json(&trace.root)),
            ]),
            Response::Busy {
                queue_depth,
                retry_ms,
            } => Json::obj([
                ("ok", Json::Str("busy".into())),
                ("queue_depth", Json::Num(*queue_depth as f64)),
                ("retry_ms", Json::Num(*retry_ms as f64)),
            ]),
            Response::Error { message } => Json::obj([("error", Json::Str(message.clone()))]),
        }
    }

    /// Parses a response document.
    pub fn from_json(v: &Json) -> Result<Response, ProtoError> {
        if let Some(msg) = v.get("error").and_then(Json::as_str) {
            return Ok(Response::Error {
                message: msg.to_string(),
            });
        }
        let ok = str_field(v, "ok")?;
        match ok.as_str() {
            "pong" => Ok(Response::Pong),
            "info" => {
                let dims = v
                    .get("dims")
                    .and_then(Json::as_arr)
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| ProtoError("dims must be [nx,ny,nz]".into()))?;
                let d = |i: usize| dims.get(i).and_then(Json::as_u64).unwrap_or(0) as u32;
                let fields = v
                    .get("fields")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError("fields must be an array".into()))?
                    .iter()
                    .map(|f| Ok((str_field(f, "name")?, u64_field(f, "ncomp")? as u8)))
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::Info {
                    dataset: str_field(v, "dataset")?,
                    dims: (d(0), d(1), d(2)),
                    timesteps: u64_field(v, "timesteps")? as u32,
                    fields,
                    compression: match v.get("compression") {
                        Some(c) => compression_from_json(c)?,
                        None => CompressionConfig::default(),
                    },
                })
            }
            "threshold" => Ok(Response::Threshold {
                points: points_from_json(field(v, "points")?)?,
                breakdown: breakdown_from_json(field(v, "breakdown")?)?,
                cache_hits: u64_field(v, "cache_hits")? as u32,
                nodes: u64_field(v, "nodes")? as u32,
                degraded: opt_degraded(v)?,
            }),
            "pdf" => Ok(Response::Pdf {
                origin: num_field(v, "origin")?,
                bin_width: num_field(v, "bin_width")?,
                counts: v
                    .get("counts")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError("counts must be an array".into()))?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .ok_or_else(|| ProtoError("count must be u64".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                degraded: opt_degraded(v)?,
            }),
            "topk" => Ok(Response::TopK {
                points: points_from_json(field(v, "points")?)?,
                degraded: opt_degraded(v)?,
            }),
            "stats" => Ok(Response::Stats {
                count: u64_field(v, "count")?,
                mean: num_field(v, "mean")?,
                rms: num_field(v, "rms")?,
                min: num_field(v, "min")?,
                max: num_field(v, "max")?,
            }),
            "job_accepted" => Ok(Response::JobAccepted {
                job: u64_field(v, "job")?,
            }),
            "job_state" => Ok(Response::JobState {
                state: str_field(v, "state")?,
                detail: str_field(v, "detail")?,
                rows: u64_field(v, "rows")?,
            }),
            "mydb_list" => Ok(Response::MyDbList {
                tables: v
                    .get("tables")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError("tables must be an array".into()))?
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ProtoError("table name must be a string".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "mydb_table" => Ok(Response::MyDbTable {
                provenance: str_field(v, "provenance")?,
                points: points_from_json(field(v, "points")?)?,
            }),
            "metrics" => {
                let pairs = |key: &str| -> Result<Vec<(String, f64)>, ProtoError> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| ProtoError(format!("{key} must be an array")))?
                        .iter()
                        .map(|pair| {
                            let a = pair
                                .as_arr()
                                .filter(|a| a.len() == 2)
                                .ok_or_else(|| ProtoError("metric must be [name, value]".into()))?;
                            let name = a
                                .first()
                                .and_then(Json::as_str)
                                .ok_or_else(|| ProtoError("metric name must be a string".into()))?;
                            let val = a.get(1).and_then(Json::as_f64).ok_or_else(|| {
                                ProtoError("metric value must be a number".into())
                            })?;
                            Ok((name.to_string(), val))
                        })
                        .collect()
                };
                Ok(Response::Metrics {
                    counters: pairs("counters")?
                        .into_iter()
                        .map(|(k, v)| (k, v as u64))
                        .collect(),
                    gauges: pairs("gauges")?
                        .into_iter()
                        .map(|(k, v)| (k, v as i64))
                        .collect(),
                })
            }
            "trace" => Ok(Response::Trace {
                trace: QueryTrace::new(span_from_json(field(v, "root")?)?),
            }),
            "busy" => Ok(Response::Busy {
                queue_depth: u64_field(v, "queue_depth")?,
                retry_ms: u64_field(v, "retry_ms")?,
            }),
            "points" => {
                let values = v
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError("values must be an array".into()))?
                    .iter()
                    .map(|p| {
                        let a = p
                            .as_arr()
                            .filter(|a| a.len() == 3)
                            .ok_or_else(|| ProtoError("value must be [x,y,z]".into()))?;
                        let c = |i: usize| {
                            a.get(i)
                                .and_then(Json::as_f64)
                                .map(|v| v as f32)
                                .ok_or_else(|| ProtoError("component must be a number".into()))
                        };
                        Ok([c(0)?, c(1)?, c(2)?])
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::Points { values })
            }
            other => Err(ProtoError(format!("unknown response kind '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let encoded = r.to_json().encode();
        let back = Request::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(back, r, "request roundtrip via {encoded}");
    }

    fn roundtrip_resp(r: Response) {
        let encoded = r.to_json().encode();
        let back = Response::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(back, r, "response roundtrip via {encoded}");
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Info);
        roundtrip_req(Request::GetThreshold {
            raw_field: "velocity".into(),
            derived: DerivedField::CurlNorm,
            timestep: 3,
            query_box: Some(Box3::new([0, 1, 2], [10, 11, 12])),
            threshold: 44.5,
            use_cache: true,
        });
        roundtrip_req(Request::GetThreshold {
            raw_field: "magnetic".into(),
            derived: DerivedField::Norm,
            timestep: 0,
            query_box: None,
            threshold: -1.25,
            use_cache: false,
        });
        roundtrip_req(Request::GetPdf {
            raw_field: "velocity".into(),
            derived: DerivedField::QCriterion,
            timestep: 1,
            origin: 0.0,
            bin_width: 10.0,
            nbins: 9,
        });
        roundtrip_req(Request::GetTopK {
            raw_field: "velocity".into(),
            derived: DerivedField::RInvariant,
            timestep: 2,
            k: 100,
        });
        roundtrip_req(Request::GetStats {
            raw_field: "pressure".into(),
            derived: DerivedField::Norm,
            timestep: 0,
        });
        roundtrip_req(Request::GetPoints {
            raw_field: "velocity".into(),
            timestep: 1,
            lag_width: 6,
            positions: vec![[1.5, 2.25, 3.0], [0.0, 63.75, 31.5]],
        });
        roundtrip_req(Request::SubmitJob {
            raw_field: "velocity".into(),
            derived: DerivedField::CurlNorm,
            timestep: 2,
            threshold: 44.0,
            output_table: "intense_t2".into(),
        });
        roundtrip_req(Request::JobStatus { job: 17 });
        roundtrip_req(Request::ListMyDb);
        roundtrip_req(Request::GetMyDbTable { name: "t".into() });
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::GetTrace {
            raw_field: "velocity".into(),
            derived: DerivedField::CurlNorm,
            timestep: 1,
            query_box: Some(Box3::new([0, 0, 0], [15, 15, 15])),
            threshold: 30.5,
            use_cache: true,
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Info {
            dataset: "mhd64".into(),
            dims: (64, 64, 64),
            timesteps: 4,
            fields: vec![("velocity".into(), 3), ("pressure".into(), 1)],
            compression: CompressionConfig::default(),
        });
        roundtrip_resp(Response::Info {
            dataset: "mhd64".into(),
            dims: (64, 64, 64),
            timesteps: 4,
            fields: vec![("velocity".into(), 3)],
            compression: CompressionConfig::lossless(),
        });
        roundtrip_resp(Response::Info {
            dataset: "mhd64".into(),
            dims: (64, 64, 64),
            timesteps: 4,
            fields: vec![("velocity".into(), 3)],
            compression: CompressionConfig::lossy(2, 1e-3),
        });
        roundtrip_resp(Response::Threshold {
            points: vec![
                ThresholdPoint::at(1, 2, 3, 45.5),
                ThresholdPoint::at(63, 0, 9, 101.25),
            ],
            breakdown: TimeBreakdown {
                cache_lookup_s: 0.001,
                io_s: 0.5,
                compute_s: 0.25,
                mediator_db_s: 0.004,
                mediator_user_s: 0.02,
            },
            cache_hits: 2,
            nodes: 4,
            degraded: None,
        });
        roundtrip_resp(Response::Pdf {
            origin: 0.0,
            bin_width: 10.0,
            counts: vec![100, 10, 1, 0],
            degraded: None,
        });
        roundtrip_resp(Response::TopK {
            points: vec![ThresholdPoint::at(5, 5, 5, 99.0)],
            degraded: None,
        });
        roundtrip_resp(Response::Stats {
            count: 262144,
            mean: 9.1,
            rms: 10.0,
            min: 0.01,
            max: 111.5,
        });
        roundtrip_resp(Response::Points {
            values: vec![[1.5, -2.25, 0.0], [100.125, 0.5, -7.75]],
        });
        roundtrip_resp(Response::JobAccepted { job: 3 });
        roundtrip_resp(Response::JobState {
            state: "done".into(),
            detail: String::new(),
            rows: 4200,
        });
        roundtrip_resp(Response::MyDbList {
            tables: vec!["a".into(), "b".into()],
        });
        roundtrip_resp(Response::MyDbTable {
            provenance: "threshold velocity/curl_norm t=0 k=44".into(),
            points: vec![ThresholdPoint::at(1, 2, 3, 50.0)],
        });
        roundtrip_resp(Response::Busy {
            queue_depth: 32,
            retry_ms: 100,
        });
        roundtrip_resp(Response::Error {
            message: "threshold too low: 2000000 locations".into(),
        });
        roundtrip_resp(Response::Metrics {
            counters: vec![
                ("bufferpool.hits".into(), 42),
                ("cache.semantic.hits".into(), 3),
            ],
            gauges: vec![("node.active_subqueries".into(), -1)],
        });
        // attr values are display strings on the wire, so a trace built
        // with Str attrs roundtrips exactly
        let mut root = TraceSpan::new("query.threshold", 0.0, 1.5)
            .with_attr("points", "42")
            .with_attr("wall_s", "0.03");
        let mut io = TraceSpan::new("phase.io", 0.0, 1.25);
        io.push_child(TraceSpan::new("node.0", 0.0, 1.1).with_attr("cache", "miss"));
        root.push_child(io);
        roundtrip_resp(Response::Trace {
            trace: QueryTrace::new(root),
        });
    }

    #[test]
    fn degraded_status_roundtrips() {
        let degraded = Some(DegradedInfo {
            failed_nodes: vec![FailedNode {
                node: 1,
                reason: "node 1 unavailable: injected node failure".into(),
            }],
            missing_boxes: vec![Box3::new([0, 16, 0], [63, 31, 63])],
        });
        roundtrip_resp(Response::Threshold {
            points: vec![ThresholdPoint::at(1, 2, 3, 45.5)],
            breakdown: TimeBreakdown {
                cache_lookup_s: 0.001,
                io_s: 0.5,
                compute_s: 0.25,
                mediator_db_s: 0.004,
                mediator_user_s: 0.02,
            },
            cache_hits: 0,
            nodes: 3,
            degraded: degraded.clone(),
        });
        roundtrip_resp(Response::Pdf {
            origin: 0.0,
            bin_width: 1.0,
            counts: vec![4, 2],
            degraded: degraded.clone(),
        });
        roundtrip_resp(Response::TopK {
            points: vec![],
            degraded,
        });
        // absent on the wire decodes as None, not an error
        let clean = Response::TopK {
            points: vec![],
            degraded: None,
        };
        let back = Response::from_json(&Json::parse(&clean.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, clean);
    }

    #[test]
    fn trace_attrs_serialize_as_display_strings() {
        let root = TraceSpan::new("query.threshold", 0.0, 1.0).with_attr("points", 7u64);
        let r = Response::Trace {
            trace: QueryTrace::new(root),
        };
        let back = Response::from_json(&Json::parse(&r.to_json().encode()).unwrap()).unwrap();
        let Response::Trace { trace } = back else {
            panic!()
        };
        assert_eq!(trace.root.attr("points"), Some(&AttrValue::Str("7".into())));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            r#"{"op":"nope"}"#,
            r#"{"op":"get_threshold","field":"v"}"#,
            r#"{"op":"get_threshold","field":"v","derived":"bogus","timestep":0,"threshold":1}"#,
            r#"{"op":"get_threshold","field":"v","derived":"norm","timestep":0,"threshold":1,"box":[1,2]}"#,
            r#"{"op":"get_threshold","field":"v","derived":"norm","timestep":0,"threshold":1,"box":[9,0,0,1,1,1]}"#,
            r#"{"op":"get_pdf","field":"v","derived":"norm","timestep":-1,"origin":0,"bin_width":1,"nbins":4}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn info_without_compression_member_decodes_as_off() {
        // a pre-compression server's info document still parses
        let legacy = r#"{"ok":"info","dataset":"d","dims":[8,8,8],"timesteps":1,"fields":[]}"#;
        let back = Response::from_json(&Json::parse(legacy).unwrap()).unwrap();
        let Response::Info { compression, .. } = back else {
            panic!()
        };
        assert_eq!(compression.mode, CompressionMode::Off);
        // and an off-mode server emits exactly that legacy document shape
        let off = Response::Info {
            dataset: "d".into(),
            dims: (8, 8, 8),
            timesteps: 1,
            fields: vec![],
            compression: CompressionConfig::default(),
        };
        assert!(!off.to_json().encode().contains("compression"));
    }

    #[test]
    fn threshold_points_preserve_morton_identity() {
        let p = ThresholdPoint::at(100, 200, 300, 7.5);
        let r = Response::TopK {
            points: vec![p],
            degraded: None,
        };
        let back = Response::from_json(&Json::parse(&r.to_json().encode()).unwrap()).unwrap();
        let Response::TopK { points, .. } = back else {
            panic!()
        };
        assert_eq!(points[0].zindex, p.zindex);
    }
}
