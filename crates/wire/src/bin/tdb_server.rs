//! Stands up a ThresholDB service over TCP.
//!
//! ```sh
//! cargo run --release -p tdb-wire --bin tdb-server -- \
//!     --listen 127.0.0.1:7411 --grid 64 --timesteps 4 --nodes 4
//! ```

use std::sync::Arc;

use tdb_cluster::ClusterConfig;
use tdb_core::{ServiceConfig, TurbulenceService};
use tdb_turbgen::SyntheticDataset;
use tdb_wire::server::{Server, ServerConfig};

struct Args {
    listen: String,
    grid: usize,
    timesteps: u32,
    nodes: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7411".into(),
        grid: 64,
        timesteps: 4,
        nodes: 4,
        seed: 0x7db,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--grid" => {
                args.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--timesteps" => {
                args.timesteps = value("--timesteps")?
                    .parse()
                    .map_err(|e| format!("--timesteps: {e}"))?
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: tdb-server [--listen ADDR] [--grid N] [--timesteps T] \
                     [--nodes N] [--seed S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "building {0}³ MHD archive, {1} time-steps, {2} nodes ...",
        args.grid, args.timesteps, args.nodes
    );
    let config = ServiceConfig {
        dataset: SyntheticDataset::mhd(args.grid, args.timesteps, args.seed),
        cluster: ClusterConfig {
            num_nodes: args.nodes,
            chunk_atoms: if args.grid >= 128 { 4 } else { 2 },
            ..ClusterConfig::default()
        },
        limits: Default::default(),
        data_dir: std::env::temp_dir().join(format!("thresholdb_server_{}", args.seed)),
    };
    let service = match TurbulenceService::build(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("failed to build service: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::start(service, &args.listen, ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    eprintln!("serving on {}", server.addr());
    // serve until killed
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
