//! Command-line query client.
//!
//! ```sh
//! tdbql --connect 127.0.0.1:7411 info
//! tdbql --connect 127.0.0.1:7411 stats velocity curl_norm 0
//! tdbql --connect 127.0.0.1:7411 threshold velocity curl_norm 0 44.0
//! tdbql --connect 127.0.0.1:7411 pdf velocity curl_norm 0 0 10 9
//! tdbql --connect 127.0.0.1:7411 topk velocity q_criterion 0 10
//! tdbql --connect 127.0.0.1:7411 points velocity 0 6 3.5,4.25,5.0 10,20,30
//! ```

use tdb_core::DerivedField;
use tdb_wire::Client;
use tdb_wire::CompressionMode;

/// Renders a byte count in binary units (`1.5 MiB`).
fn human_bytes(v: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut val = v as f64;
    let mut unit = "B";
    for u in UNITS {
        unit = u;
        if val < 1024.0 {
            break;
        }
        val /= 1024.0;
    }
    if unit == "B" {
        format!("{v} B")
    } else {
        format!("{val:.1} {unit}")
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: tdbql --connect ADDR [--api-key KEY] <command>\n\
         \x20 (TDB_API_KEY in the environment also sets the tenant key)\n\
         commands:\n\
         \x20 info\n\
         \x20 ping\n\
         \x20 stats FIELD DERIVED TIMESTEP\n\
         \x20 threshold FIELD DERIVED TIMESTEP K\n\
         \x20 pdf FIELD DERIVED TIMESTEP ORIGIN WIDTH NBINS\n\
         \x20 topk FIELD DERIVED TIMESTEP K\n\
         \x20 points FIELD TIMESTEP LAGWIDTH X,Y,Z [X,Y,Z ...]\n\
         \x20 metrics\n\
         \x20 trace FIELD DERIVED TIMESTEP K"
    );
    std::process::exit(2);
}

fn derived(name: &str) -> DerivedField {
    DerivedField::parse(name).unwrap_or_else(|| {
        eprintln!(
            "unknown derived field '{name}' (expected one of: {})",
            DerivedField::all()
                .iter()
                .map(|d| d.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // the tenant key is an envelope concern: strip it wherever it
    // appears, with the flag overriding the TDB_API_KEY environment
    let mut api_key = std::env::var("TDB_API_KEY").ok().filter(|k| !k.is_empty());
    if let Some(i) = args.iter().position(|a| a == "--api-key") {
        if i + 1 >= args.len() {
            usage();
        }
        api_key = Some(args.remove(i + 1));
        args.remove(i);
    }
    let (addr, cmd) = match (args.first(), args.get(1), args.get(2)) {
        (Some(flag), Some(addr), Some(cmd)) if flag == "--connect" => (addr, cmd.as_str()),
        _ => usage(),
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(key) = api_key {
        client.set_api_key(Some(key));
    }
    let rest = args.get(3..).unwrap_or(&[]);
    let result = run(&mut client, cmd, rest);
    if let Err(e) = result {
        if let Some(tdb_wire::client::ClientError::Busy { retry_ms, .. }) =
            e.downcast_ref::<tdb_wire::client::ClientError>()
        {
            eprintln!("server is at capacity; retry in ~{retry_ms} ms");
            std::process::exit(3);
        }
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(client: &mut Client, cmd: &str, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match (cmd, rest) {
        ("ping", []) => {
            client.ping()?;
            println!("pong");
        }
        ("info", []) => {
            let info = client.info()?;
            println!(
                "dataset {} — grid {}x{}x{}, {} time-steps",
                info.dataset, info.dims.0, info.dims.1, info.dims.2, info.timesteps
            );
            for (name, ncomp) in info.fields {
                println!("  field {name} ({ncomp} components)");
            }
            let c = info.compression;
            match c.mode {
                CompressionMode::Off => println!("  compression off"),
                CompressionMode::Lossless => println!("  compression lossless"),
                CompressionMode::Lossy => println!(
                    "  compression lossy (keyframe stride {}, max error {:e})",
                    c.stride, c.max_error
                ),
            }
        }
        ("stats", [f, d, t]) => {
            let (count, mean, rms, min, max) = client.get_stats(f, derived(d), t.parse()?)?;
            println!("count {count}  mean {mean:.4}  rms {rms:.4}  min {min:.4}  max {max:.4}");
        }
        ("threshold", [f, d, t, k]) => {
            let a = client.get_threshold(f, derived(d), t.parse()?, None, k.parse()?)?;
            println!(
                "{} points ({}/{} nodes hit cache); modelled {}",
                a.points.len(),
                a.cache_hits,
                a.nodes,
                a.breakdown
            );
            if let Some(d) = &a.degraded {
                eprintln!(
                    "WARNING: partial answer — {} node(s) failed, {} box(es) missing:",
                    d.failed_nodes.len(),
                    d.missing_boxes.len()
                );
                for f in &d.failed_nodes {
                    eprintln!("  node {}: {}", f.node, f.reason);
                }
                for b in &d.missing_boxes {
                    eprintln!("  missing {b:?}");
                }
            }
            for p in a.points.iter().take(10) {
                let (x, y, z) = p.coords();
                println!("  ({x:4},{y:4},{z:4})  {:.3}", p.value);
            }
            if a.points.len() > 10 {
                println!("  ... {} more", a.points.len() - 10);
            }
        }
        ("pdf", [f, d, t, origin, width, nbins]) => {
            let counts = client.get_pdf(
                f,
                derived(d),
                t.parse()?,
                origin.parse()?,
                width.parse()?,
                nbins.parse()?,
            )?;
            let origin: f64 = origin.parse()?;
            let width: f64 = width.parse()?;
            for (i, c) in counts.iter().enumerate() {
                let lo = origin + width * i as f64;
                if i + 1 == counts.len() {
                    println!("  [{lo:8.1},      ..)  {c}");
                } else {
                    println!("  [{lo:8.1},{:8.1})  {c}", lo + width);
                }
            }
        }
        ("topk", [f, d, t, k]) => {
            let points = client.get_topk(f, derived(d), t.parse()?, k.parse()?)?;
            for p in points {
                let (x, y, z) = p.coords();
                println!("  ({x:4},{y:4},{z:4})  {:.3}", p.value);
            }
        }
        ("points", [f, t, w, rest @ ..]) if !rest.is_empty() => {
            let positions = rest
                .iter()
                .map(|s| {
                    let parts: Vec<f64> = s.split(',').map(str::parse).collect::<Result<_, _>>()?;
                    match parts.as_slice() {
                        &[x, y, z] => Ok([x, y, z]),
                        _ => Err::<[f64; 3], Box<dyn std::error::Error>>(
                            format!("position '{s}' must be X,Y,Z").into(),
                        ),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            let values = client.get_points(f, t.parse()?, w.parse()?, &positions)?;
            for (&[px, py, pz], [vx, vy, vz]) in positions.iter().zip(values) {
                println!("  ({px:8.3},{py:8.3},{pz:8.3})  [{vx:10.4}, {vy:10.4}, {vz:10.4}]");
            }
        }
        ("metrics", []) => {
            let (counters, gauges) = client.metrics()?;
            for (name, v) in counters {
                // byte counters (io.bytes.*, compress.bytes.*) get a
                // human-readable rendering next to the exact count
                if name.contains("bytes") {
                    println!("  {name} = {v} ({})", human_bytes(v));
                } else {
                    println!("  {name} = {v}");
                }
            }
            for (name, v) in gauges {
                println!("  {name} = {v} (gauge)");
            }
        }
        ("trace", [f, d, t, k]) => {
            let trace = client.get_trace(f, derived(d), t.parse()?, None, k.parse()?)?;
            print!("{}", trace.render());
        }
        _ => usage(),
    }
    Ok(())
}
