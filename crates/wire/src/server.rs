//! The front-end server: "the Web-server acts as a mediator sending the
//! users' requests to the database nodes and initiating their distributed
//! evaluation" (paper §2).
//!
//! Transport: TCP, one JSON document per `\n`-terminated line in each
//! direction, thread per connection with a connection cap.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdb_core::batch::{BatchSession, JobId, JobSpec, JobState};
use tdb_core::{QueryError, ThresholdQuery, TurbulenceService};

use crate::admission::{Admission, AdmissionConfig, AdmissionQueue};
use crate::json::Json;
use crate::proto::{Request, Response};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent connections (excess are refused politely).
    pub max_connections: usize,
    /// Admission control for data queries: bounded in-flight evaluation,
    /// a fair bounded wait queue, and `Busy` load-shedding beyond it.
    pub admission: AdmissionConfig,
    /// MyDB quota for the server's shared batch session.
    pub mydb_quota_bytes: u64,
    /// Socket read timeout. An idle connection is closed (and counted in
    /// `wire.connection.timeout`) instead of pinning its thread forever.
    /// `None` waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; a client that stops draining its responses
    /// cannot stall the handler thread indefinitely.
    pub write_timeout: Option<Duration>,
    /// Largest accepted request line in bytes; longer requests get an
    /// error response and the connection is closed (the remainder of the
    /// line is never buffered).
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            admission: AdmissionConfig::default(),
            mydb_quota_bytes: 256 << 20,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_request_bytes: 1 << 20,
        }
    }
}

/// Shared per-server state: the service plus one batch session (the
/// paper's MyDB "resides on the servers near the data").
pub struct ServerState {
    pub service: Arc<TurbulenceService>,
    pub batch: BatchSession,
    pub admission: Arc<AdmissionQueue>,
}

impl ServerState {
    /// Builds the state with a MyDB quota and default admission sizing.
    pub fn new(service: Arc<TurbulenceService>, mydb_quota_bytes: u64) -> Self {
        Self::with_admission(service, mydb_quota_bytes, AdmissionConfig::default())
    }

    /// Builds the state with explicit admission sizing.
    pub fn with_admission(
        service: Arc<TurbulenceService>,
        mydb_quota_bytes: u64,
        admission: AdmissionConfig,
    ) -> Self {
        let batch = BatchSession::open(Arc::clone(&service), mydb_quota_bytes);
        Self {
            service,
            batch,
            admission: AdmissionQueue::new(admission),
        }
    }
}

/// A running front-end server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    pub fn start(
        service: Arc<TurbulenceService>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let state = Arc::new(ServerState::with_admission(
            service,
            config.mydb_quota_bytes,
            config.admission.clone(),
        ));
        let handle = std::thread::spawn(move || accept_loop(listener, state, config, flag));
        Ok(Server {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the accept loop to finish.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // poke the listener so accept() returns
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if live.load(Ordering::SeqCst) >= config.max_connections {
            let mut w = BufWriter::new(&stream);
            let _ = writeln!(
                w,
                "{}",
                Response::Error {
                    message: "server at connection capacity".into()
                }
                .to_json()
                .encode()
            );
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let conn = next_conn;
        next_conn += 1;
        let _ = stream.set_read_timeout(config.read_timeout);
        let _ = stream.set_write_timeout(config.write_timeout);
        let st = Arc::clone(&state);
        let counter = Arc::clone(&live);
        let max_request_bytes = config.max_request_bytes;
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &st, max_request_bytes, conn);
            counter.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn serve_connection(
    stream: TcpStream,
    state: &ServerState,
    max_request_bytes: usize,
    conn: u64,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // read at most cap + '\n' + 1 sentinel byte: a line that hits the
        // take() limit is over the cap without the rest ever being buffered
        let n = match (&mut reader)
            .take(max_request_bytes as u64 + 2)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                tdb_obs::add("wire.connection.timeout", 1);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(()); // clean EOF
        }
        while buf.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
            buf.pop();
        }
        if buf.len() > max_request_bytes {
            tdb_obs::add("wire.request.oversized", 1);
            let resp = Response::Error {
                message: format!("request exceeds the {max_request_bytes}-byte limit"),
            };
            let _ = writeln!(writer, "{}", resp.to_json().encode());
            let _ = writer.flush();
            // the rest of the line was never read; resync is impossible
            return Ok(());
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line_admitted(&line, state, conn);
        writeln!(writer, "{}", response.to_json().encode())?;
        writer.flush()?;
    }
}

/// True for requests that run a data query against the cluster — the
/// ones admission control gates. Cheap control-plane requests (ping,
/// info, metrics, job polling, MyDB reads) always pass.
fn is_data_query(request: &Request) -> bool {
    matches!(
        request,
        Request::GetThreshold { .. }
            | Request::GetPdf { .. }
            | Request::GetTopK { .. }
            | Request::GetStats { .. }
            | Request::GetPoints { .. }
            | Request::GetTrace { .. }
    )
}

/// Parses one request line, passes data queries through admission
/// control on behalf of connection `conn`, and executes.
pub fn handle_line_admitted(line: &str, state: &ServerState, conn: u64) -> Response {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    let request = match Request::from_json(&doc) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    if is_data_query(&request) {
        // the API key travels in the request envelope, outside the typed
        // request, so tenancy never alters query semantics
        let api_key = doc.get("api_key").and_then(Json::as_str);
        match state.admission.admit_keyed(conn, api_key) {
            Admission::Granted(_permit) => execute_with_state(&request, state),
            Admission::Busy {
                queue_depth,
                retry_ms,
            } => Response::Busy {
                queue_depth: queue_depth as u64,
                retry_ms,
            },
        }
    } else {
        execute_with_state(&request, state)
    }
}

/// Parses one request line and executes it against a full server state
/// (batch operations included), bypassing admission control — kept for
/// direct handler testing.
pub fn handle_line_with_state(line: &str, state: &ServerState) -> Response {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    match Request::from_json(&doc) {
        Ok(r) => execute_with_state(&r, state),
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

/// Parses one request line and executes it against a bare service (batch
/// operations report an error) — kept for direct handler testing.
pub fn handle_line(line: &str, service: &TurbulenceService) -> Response {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    let request = match Request::from_json(&doc) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                message: e.to_string(),
            }
        }
    };
    execute(&request, service)
}

fn query_error(e: QueryError) -> Response {
    Response::Error {
        message: e.to_string(),
    }
}

/// Executes a parsed request against full server state.
pub fn execute_with_state(request: &Request, state: &ServerState) -> Response {
    match request {
        Request::SubmitJob {
            raw_field,
            derived,
            timestep,
            threshold,
            output_table,
        } => {
            let query = ThresholdQuery::whole_timestep(raw_field, *derived, *timestep, *threshold);
            let JobId(id) = state.batch.submit(JobSpec::Threshold {
                query,
                output_table: output_table.clone(),
            });
            Response::JobAccepted { job: id }
        }
        Request::JobStatus { job } => match state.batch.status(JobId(*job)) {
            Some(JobState::Queued) => Response::JobState {
                state: "queued".into(),
                detail: String::new(),
                rows: 0,
            },
            Some(JobState::Running) => Response::JobState {
                state: "running".into(),
                detail: String::new(),
                rows: 0,
            },
            Some(JobState::Done { rows, modelled_s }) => Response::JobState {
                state: "done".into(),
                detail: format!("{modelled_s:.3}s modelled"),
                rows: rows as u64,
            },
            Some(JobState::Failed(msg)) => Response::JobState {
                state: "failed".into(),
                detail: msg,
                rows: 0,
            },
            None => Response::Error {
                message: format!("unknown job {job}"),
            },
        },
        Request::ListMyDb => Response::MyDbList {
            tables: state.batch.mydb().list(),
        },
        Request::GetMyDbTable { name } => match state.batch.mydb().get(name) {
            Some(t) => Response::MyDbTable {
                provenance: t.provenance,
                points: t.points,
            },
            None => Response::Error {
                message: format!("no MyDB table '{name}'"),
            },
        },
        other => execute(other, &state.service),
    }
}

/// Executes a parsed non-batch request against the service.
pub fn execute(request: &Request, service: &TurbulenceService) -> Response {
    match request {
        Request::SubmitJob { .. }
        | Request::JobStatus { .. }
        | Request::ListMyDb
        | Request::GetMyDbTable { .. } => Response::Error {
            message: "batch operations need a server session".into(),
        },
        Request::Ping => Response::Pong,
        Request::Info => {
            let d = service.dataset();
            let (nx, ny, nz) = d.grid.dims();
            Response::Info {
                dataset: d.name.clone(),
                dims: (nx as u32, ny as u32, nz as u32),
                timesteps: d.timesteps,
                fields: d
                    .raw_fields()
                    .into_iter()
                    .map(|f| (f.name.to_string(), f.ncomp as u8))
                    .collect(),
                compression: service.cluster().config().compression,
            }
        }
        Request::GetThreshold {
            raw_field,
            derived,
            timestep,
            query_box,
            threshold,
            use_cache,
        } => {
            let mut q = ThresholdQuery::whole_timestep(raw_field, *derived, *timestep, *threshold);
            q.query_box = *query_box;
            q.use_cache = *use_cache;
            match service.get_threshold(&q) {
                Ok(r) => Response::Threshold {
                    points: r.points,
                    breakdown: r.breakdown,
                    cache_hits: r.cache_hits as u32,
                    nodes: r.nodes as u32,
                    degraded: r.degraded,
                },
                Err(e) => query_error(e),
            }
        }
        Request::GetPdf {
            raw_field,
            derived,
            timestep,
            origin,
            bin_width,
            nbins,
        } => {
            if *bin_width <= 0.0 || *nbins == 0 || *nbins > 4096 {
                return Response::Error {
                    message: "pdf bins must satisfy 0 < nbins <= 4096 and bin_width > 0".into(),
                };
            }
            let q = ThresholdQuery::whole_timestep(raw_field, *derived, *timestep, 0.0);
            match service.get_pdf(&q, *origin, *bin_width, *nbins as usize) {
                Ok(r) => Response::Pdf {
                    origin: *origin,
                    bin_width: *bin_width,
                    counts: r.histogram.counts().to_vec(),
                    degraded: r.degraded,
                },
                Err(e) => query_error(e),
            }
        }
        Request::GetTopK {
            raw_field,
            derived,
            timestep,
            k,
        } => {
            if *k == 0 || *k > 100_000 {
                return Response::Error {
                    message: "k must satisfy 0 < k <= 100000".into(),
                };
            }
            let q = ThresholdQuery::whole_timestep(raw_field, *derived, *timestep, 0.0);
            match service.get_topk(&q, *k as usize) {
                Ok(r) => Response::TopK {
                    points: r.points,
                    degraded: r.degraded,
                },
                Err(e) => query_error(e),
            }
        }
        Request::GetStats {
            raw_field,
            derived,
            timestep,
        } => match service.derived_stats(raw_field, *derived, *timestep) {
            Ok(s) => Response::Stats {
                count: s.count,
                mean: s.mean,
                rms: s.rms,
                min: s.min,
                max: s.max,
            },
            Err(e) => query_error(e),
        },
        Request::GetPoints {
            raw_field,
            timestep,
            lag_width,
            positions,
        } => {
            let order = match lag_width {
                4 => tdb_core::LagOrder::Lag4,
                6 => tdb_core::LagOrder::Lag6,
                8 => tdb_core::LagOrder::Lag8,
                other => {
                    return Response::Error {
                        message: format!("lag_width must be 4, 6 or 8 (got {other})"),
                    }
                }
            };
            if positions.is_empty() || positions.len() > 100_000 {
                return Response::Error {
                    message: "positions must contain 1..=100000 entries".into(),
                };
            }
            match service.interpolate_at(raw_field, *timestep, positions, order) {
                Ok((values, _)) => Response::Points { values },
                Err(e) => query_error(e),
            }
        }
        Request::Metrics => {
            let snap = service.metrics_snapshot();
            Response::Metrics {
                counters: snap.counters.into_iter().collect(),
                gauges: snap.gauges.into_iter().collect(),
            }
        }
        Request::GetTrace {
            raw_field,
            derived,
            timestep,
            query_box,
            threshold,
            use_cache,
        } => {
            let mut q = ThresholdQuery::whole_timestep(raw_field, *derived, *timestep, *threshold);
            q.query_box = *query_box;
            q.use_cache = *use_cache;
            match service.get_threshold(&q) {
                Ok(r) => match r.trace {
                    Some(trace) => Response::Trace { trace },
                    None => Response::Error {
                        message: "query produced no trace".into(),
                    },
                },
                Err(e) => query_error(e),
            }
        }
    }
}
