//! Blocking client for the ThresholDB wire protocol — the Rust analogue
//! of the C/Fortran/Matlab client libraries the JHTDB ships (paper §7).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tdb_cluster::CompressionConfig;
use tdb_core::{DegradedInfo, DerivedField, ThresholdPoint, TimeBreakdown};
use tdb_zorder::Box3;

use crate::json::Json;
use crate::proto::{ProtoError, Request, Response};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Protocol(ProtoError),
    /// The server reported an error for this request.
    Server(String),
    /// The server shed the query under load; retry after `retry_ms`.
    Busy {
        queue_depth: u64,
        retry_ms: u64,
    },
    /// The server answered with the wrong response kind.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Busy {
                queue_depth,
                retry_ms,
            } => write!(
                f,
                "server busy (admission queue depth {queue_depth}), retry in ~{retry_ms} ms"
            ),
            ClientError::UnexpectedResponse(kind) => {
                write!(f, "unexpected response (wanted {kind})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Dataset description returned by [`Client::info`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    pub dataset: String,
    pub dims: (u32, u32, u32),
    pub timesteps: u32,
    pub fields: Vec<(String, u8)>,
    /// Block codec of the server's raw-field tier (`Off` for servers that
    /// predate compression).
    pub compression: CompressionConfig,
}

/// Threshold answer returned by [`Client::get_threshold`].
#[derive(Debug, Clone)]
pub struct ThresholdAnswer {
    pub points: Vec<ThresholdPoint>,
    pub breakdown: TimeBreakdown,
    pub cache_hits: u32,
    pub nodes: u32,
    /// Present when the server answered from a partial cluster: names the
    /// failed nodes and the boxes whose data is missing from `points`.
    pub degraded: Option<DegradedInfo>,
}

/// Metrics snapshot as name-sorted `(counters, gauges)` pairs.
pub type MetricsPairs = (Vec<(String, u64)>, Vec<(String, i64)>);

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Tenant API key stamped into every request envelope, for the
    /// server's per-tenant QoS (weighted fair queueing).
    api_key: Option<String>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            api_key: None,
        })
    }

    /// Tags this client's requests with a tenant API key.
    pub fn with_api_key(mut self, api_key: impl Into<String>) -> Self {
        self.api_key = Some(api_key.into());
        self
    }

    /// Changes (or clears) the tenant API key on a live connection.
    pub fn set_api_key(&mut self, api_key: Option<String>) {
        self.api_key = api_key;
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut doc = request.to_json();
        if let (Some(key), Json::Obj(fields)) = (&self.api_key, &mut doc) {
            fields.insert("api_key".to_string(), Json::Str(key.clone()));
        }
        writeln!(self.writer, "{}", doc.encode())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let doc = Json::parse(line.trim_end()).map_err(|e| ProtoError(e.to_string()))?;
        let resp = Response::from_json(&doc)?;
        match resp {
            Response::Error { message } => Err(ClientError::Server(message)),
            Response::Busy {
                queue_depth,
                retry_ms,
            } => Err(ClientError::Busy {
                queue_depth,
                retry_ms,
            }),
            other => Ok(other),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("pong")),
        }
    }

    /// Describes the served dataset.
    pub fn info(&mut self) -> Result<DatasetInfo, ClientError> {
        match self.call(&Request::Info)? {
            Response::Info {
                dataset,
                dims,
                timesteps,
                fields,
                compression,
            } => Ok(DatasetInfo {
                dataset,
                dims,
                timesteps,
                fields,
                compression,
            }),
            _ => Err(ClientError::UnexpectedResponse("info")),
        }
    }

    /// `GetThreshold` over the wire.
    pub fn get_threshold(
        &mut self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        query_box: Option<Box3>,
        threshold: f64,
    ) -> Result<ThresholdAnswer, ClientError> {
        match self.call(&Request::GetThreshold {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
            query_box,
            threshold,
            use_cache: true,
        })? {
            Response::Threshold {
                points,
                breakdown,
                cache_hits,
                nodes,
                degraded,
            } => Ok(ThresholdAnswer {
                points,
                breakdown,
                cache_hits,
                nodes,
                degraded,
            }),
            _ => Err(ClientError::UnexpectedResponse("threshold")),
        }
    }

    /// PDF of a derived field's norm.
    pub fn get_pdf(
        &mut self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        origin: f64,
        bin_width: f64,
        nbins: u32,
    ) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::GetPdf {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
            origin,
            bin_width,
            nbins,
        })? {
            Response::Pdf { counts, .. } => Ok(counts),
            _ => Err(ClientError::UnexpectedResponse("pdf")),
        }
    }

    /// The k most intense locations.
    pub fn get_topk(
        &mut self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        k: u32,
    ) -> Result<Vec<ThresholdPoint>, ClientError> {
        match self.call(&Request::GetTopK {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
            k,
        })? {
            Response::TopK { points, .. } => Ok(points),
            _ => Err(ClientError::UnexpectedResponse("topk")),
        }
    }

    /// Lagrange point interpolation (`GetVelocity`-style).
    pub fn get_points(
        &mut self,
        raw_field: &str,
        timestep: u32,
        lag_width: u32,
        positions: &[[f64; 3]],
    ) -> Result<Vec<[f32; 3]>, ClientError> {
        match self.call(&Request::GetPoints {
            raw_field: raw_field.to_string(),
            timestep,
            lag_width,
            positions: positions.to_vec(),
        })? {
            Response::Points { values } => Ok(values),
            _ => Err(ClientError::UnexpectedResponse("points")),
        }
    }

    /// Submits a batch threshold job; returns the job id.
    pub fn submit_job(
        &mut self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        threshold: f64,
        output_table: &str,
    ) -> Result<u64, ClientError> {
        match self.call(&Request::SubmitJob {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
            threshold,
            output_table: output_table.to_string(),
        })? {
            Response::JobAccepted { job } => Ok(job),
            _ => Err(ClientError::UnexpectedResponse("job_accepted")),
        }
    }

    /// Polls a batch job: `(state, detail, rows)`.
    pub fn job_status(&mut self, job: u64) -> Result<(String, String, u64), ClientError> {
        match self.call(&Request::JobStatus { job })? {
            Response::JobState {
                state,
                detail,
                rows,
            } => Ok((state, detail, rows)),
            _ => Err(ClientError::UnexpectedResponse("job_state")),
        }
    }

    /// Lists the MyDB tables of the server's batch session.
    pub fn list_mydb(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::ListMyDb)? {
            Response::MyDbList { tables } => Ok(tables),
            _ => Err(ClientError::UnexpectedResponse("mydb_list")),
        }
    }

    /// Reads a MyDB table.
    pub fn get_mydb_table(
        &mut self,
        name: &str,
    ) -> Result<(String, Vec<ThresholdPoint>), ClientError> {
        match self.call(&Request::GetMyDbTable {
            name: name.to_string(),
        })? {
            Response::MyDbTable { provenance, points } => Ok((provenance, points)),
            _ => Err(ClientError::UnexpectedResponse("mydb_table")),
        }
    }

    /// Snapshot of the server's process-wide metrics: `(counters, gauges)`
    /// sorted by name.
    pub fn metrics(&mut self) -> Result<MetricsPairs, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { counters, gauges } => Ok((counters, gauges)),
            _ => Err(ClientError::UnexpectedResponse("metrics")),
        }
    }

    /// Runs a threshold query and returns its span tree.
    pub fn get_trace(
        &mut self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
        query_box: Option<Box3>,
        threshold: f64,
    ) -> Result<tdb_core::QueryTrace, ClientError> {
        match self.call(&Request::GetTrace {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
            query_box,
            threshold,
            use_cache: true,
        })? {
            Response::Trace { trace } => Ok(trace),
            _ => Err(ClientError::UnexpectedResponse("trace")),
        }
    }

    /// Whole-field statistics.
    pub fn get_stats(
        &mut self,
        raw_field: &str,
        derived: DerivedField,
        timestep: u32,
    ) -> Result<(u64, f64, f64, f64, f64), ClientError> {
        match self.call(&Request::GetStats {
            raw_field: raw_field.to_string(),
            derived,
            timestep,
        })? {
            Response::Stats {
                count,
                mean,
                rms,
                min,
                max,
            } => Ok((count, mean, rms, min, max)),
            _ => Err(ClientError::UnexpectedResponse("stats")),
        }
    }
}
