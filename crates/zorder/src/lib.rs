//! Morton (z-order) space-filling-curve utilities for ThresholDB.
//!
//! The JHTDB partitions every simulation time-step into 8³ *database atoms*
//! and indexes each atom by the Morton code of its lower-left corner
//! (Kanov et al., EDBT 2015, §2). This crate provides:
//!
//! * 3-D (and 4-D) Morton encoding/decoding ([`morton`]),
//! * atom-lattice addressing ([`atom`]),
//! * axis-aligned integer boxes with periodic-domain helpers ([`boxes`]),
//! * exact decomposition of a box into contiguous z-order ranges
//!   ([`range`]), used for partition pruning during clustered index scans.

pub mod atom;
pub mod bigmin;
pub mod boxes;
pub mod morton;
pub mod range;

pub use atom::{AtomCoord, ATOM_POINTS, ATOM_WIDTH};
pub use bigmin::{bigmin, litmax, ZScanCursor};
pub use boxes::Box3;
pub use morton::{decode3, decode4, encode3, encode4, MortonBlockDecoder, MortonRow, MAX_COORD3};
pub use range::{decompose_box, ZRange};
