//! Exact decomposition of an atom-lattice box into contiguous z-order ranges.
//!
//! The JHTDB stores atoms in a clustered index keyed by Morton code and
//! partitions tables "along contiguous ranges of the Morton z-curve" (§5.1).
//! To evaluate a spatial query as a small number of clustered index range
//! scans, the query's atom box is decomposed octree-style: any octree cell
//! fully inside the box contributes the single contiguous code range it
//! occupies; partially covered cells recurse. Adjacent output ranges are
//! merged, so the result is the *minimal* exact set of contiguous ranges.

use crate::boxes::Box3;
use crate::morton::encode3;

/// An inclusive range of Morton codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZRange {
    pub start: u64,
    pub end: u64,
}

impl ZRange {
    /// Creates a range; `start` must not exceed `end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "invalid z-range [{start}, {end}]");
        Self { start, end }
    }

    /// Number of codes covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Always false: a range covers at least one code.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `code` falls inside.
    #[inline]
    pub fn contains(&self, code: u64) -> bool {
        code >= self.start && code <= self.end
    }

    /// Whether this range overlaps `other`.
    #[inline]
    pub fn overlaps(&self, other: &ZRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Decomposes an **atom-lattice** box into the minimal exact set of
/// contiguous Morton-code ranges, sorted ascending.
///
/// `level_bits` is the number of bits per dimension of the enclosing octree
/// (the lattice must satisfy `hi < 2^level_bits`).
pub fn decompose_box(atom_box: &Box3, level_bits: u32) -> Vec<ZRange> {
    let n = 1u32 << level_bits;
    assert!(
        atom_box.hi.iter().all(|&h| h < n),
        "box {atom_box:?} exceeds 2^{level_bits} lattice"
    );
    let mut out = Vec::new();
    recurse(atom_box, [0, 0, 0], level_bits, &mut out);
    merge_adjacent(&mut out);
    out
}

fn recurse(query: &Box3, cell_lo: [u32; 3], level_bits: u32, out: &mut Vec<ZRange>) {
    let size = 1u32 << level_bits;
    let cell = Box3::new(
        cell_lo,
        [
            cell_lo[0] + size - 1,
            cell_lo[1] + size - 1,
            cell_lo[2] + size - 1,
        ],
    );
    let Some(overlap) = query.intersect(&cell) else {
        return;
    };
    if overlap == cell {
        // Fully covered cell: contiguous code block of 8^level_bits codes.
        let start = encode3(cell_lo[0], cell_lo[1], cell_lo[2]);
        let span = 1u64 << (3 * level_bits);
        out.push(ZRange::new(start, start + span - 1));
        return;
    }
    debug_assert!(level_bits > 0, "single-cell overlap must be full");
    let half = size / 2;
    for oct in 0..8u32 {
        let lo = [
            cell_lo[0] + if oct & 1 != 0 { half } else { 0 },
            cell_lo[1] + if oct & 2 != 0 { half } else { 0 },
            cell_lo[2] + if oct & 4 != 0 { half } else { 0 },
        ];
        recurse(query, lo, level_bits - 1, out);
    }
}

fn merge_adjacent(ranges: &mut Vec<ZRange>) {
    // Octree recursion in child order 0..8 emits ranges already sorted.
    debug_assert!(ranges.windows(2).all(|w| w[0].end < w[1].start));
    let mut merged: Vec<ZRange> = Vec::with_capacity(ranges.len());
    for r in ranges.drain(..) {
        match merged.last_mut() {
            Some(last) if last.end + 1 == r.start => last.end = r.end,
            _ => merged.push(r),
        }
    }
    *ranges = merged;
}

/// Coalesces `ranges` (sorted, disjoint) down to at most `max_ranges` by
/// bridging the smallest gaps. The result is a **superset**: scans must
/// post-filter by the query box, which threshold evaluation does anyway.
pub fn coalesce(ranges: &[ZRange], max_ranges: usize) -> Vec<ZRange> {
    assert!(max_ranges >= 1);
    if ranges.len() <= max_ranges {
        return ranges.to_vec();
    }
    // gap i sits between ranges[i] and ranges[i+1]
    let mut gaps: Vec<(u64, usize)> = ranges
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[1].start - w[0].end - 1, i))
        .collect();
    gaps.sort_unstable();
    let keep = ranges.len() - max_ranges; // number of gaps to bridge
    let mut bridged = vec![false; ranges.len() - 1];
    for &(_, i) in gaps.iter().take(keep) {
        bridged[i] = true;
    }
    let mut out = Vec::with_capacity(max_ranges);
    let mut cur = ranges[0];
    for (i, r) in ranges.iter().enumerate().skip(1) {
        if bridged[i - 1] {
            cur.end = r.end;
        } else {
            out.push(cur);
            cur = *r;
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::decode3;
    use proptest::prelude::*;

    fn codes_in(ranges: &[ZRange]) -> Vec<u64> {
        ranges
            .iter()
            .flat_map(|r| r.start..=r.end)
            .collect::<Vec<_>>()
    }

    #[test]
    fn full_lattice_is_one_range() {
        let b = Box3::cube(8);
        let r = decompose_box(&b, 3);
        assert_eq!(r, vec![ZRange::new(0, 511)]);
    }

    #[test]
    fn single_cell() {
        let b = Box3::new([3, 1, 2], [3, 1, 2]);
        let code = encode3(3, 1, 2);
        assert_eq!(decompose_box(&b, 4), vec![ZRange::new(code, code)]);
    }

    #[test]
    fn octant_is_one_range() {
        // upper-z half of a 4^3 lattice = octants 4..8 = codes 32..63
        let b = Box3::new([0, 0, 2], [3, 3, 3]);
        assert_eq!(decompose_box(&b, 2), vec![ZRange::new(32, 63)]);
    }

    #[test]
    fn slab_decomposition_is_exact() {
        let b = Box3::new([0, 0, 1], [7, 7, 2]); // z-slab crossing octant rows
        let ranges = decompose_box(&b, 3);
        let mut expect: Vec<u64> = b.points().map(|(x, y, z)| encode3(x, y, z)).collect();
        expect.sort_unstable();
        assert_eq!(codes_in(&ranges), expect);
    }

    #[test]
    fn coalesce_caps_count_and_supersets() {
        let b = Box3::new([0, 0, 1], [7, 7, 2]);
        let ranges = decompose_box(&b, 3);
        assert!(ranges.len() > 4);
        let few = coalesce(&ranges, 4);
        assert_eq!(few.len(), 4);
        for r in &ranges {
            assert!(few.iter().any(|f| f.start <= r.start && r.end <= f.end));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn decomposition_is_exact_and_minimal(
            lo in prop::array::uniform3(0u32..16),
            ext in prop::array::uniform3(1u32..16),
        ) {
            let hi = [
                (lo[0] + ext[0] - 1).min(31),
                (lo[1] + ext[1] - 1).min(31),
                (lo[2] + ext[2] - 1).min(31),
            ];
            let b = Box3::new(lo, hi);
            let ranges = decompose_box(&b, 5);
            // sorted & disjoint with real gaps (minimality of merging)
            for w in ranges.windows(2) {
                prop_assert!(w[0].end + 1 < w[1].start);
            }
            // exact cover
            let total: u64 = ranges.iter().map(ZRange::len).sum();
            prop_assert_eq!(total, b.num_points());
            for r in &ranges {
                for code in [r.start, r.end] {
                    let (x, y, z) = decode3(code);
                    prop_assert!(b.contains_point(x, y, z));
                }
            }
        }

        #[test]
        fn membership_matches_box(
            lo in prop::array::uniform3(0u32..8),
            ext in prop::array::uniform3(1u32..8),
            px in 0u32..16, py in 0u32..16, pz in 0u32..16,
        ) {
            let hi = [
                (lo[0] + ext[0] - 1).min(15),
                (lo[1] + ext[1] - 1).min(15),
                (lo[2] + ext[2] - 1).min(15),
            ];
            let b = Box3::new(lo, hi);
            let ranges = decompose_box(&b, 4);
            let code = encode3(px, py, pz);
            let in_ranges = ranges.iter().any(|r| r.contains(code));
            prop_assert_eq!(in_ranges, b.contains_point(px, py, pz));
        }
    }
}
