//! Axis-aligned integer boxes.
//!
//! Threshold queries carry a query box `q = [xl, yl, zl, xu, yu, zu]`
//! (Algorithm 1 of the paper). Bounds are *inclusive* on both ends, matching
//! the paper's `q ∈ [start, end]` containment test. Periodic domains are
//! handled by splitting a wrapped request into non-wrapped pieces.

use crate::atom::{AtomCoord, ATOM_WIDTH};

/// Inclusive axis-aligned box on the integer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Box3 {
    pub lo: [u32; 3],
    pub hi: [u32; 3],
}

impl Box3 {
    /// Creates a box from inclusive corner points.
    ///
    /// # Panics
    /// Panics if any `lo` component exceeds the matching `hi` component.
    pub fn new(lo: [u32; 3], hi: [u32; 3]) -> Self {
        assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "invalid box: lo {lo:?} > hi {hi:?}"
        );
        Self { lo, hi }
    }

    /// The box covering an entire cubic grid of edge `n`.
    pub fn cube(n: u32) -> Self {
        assert!(n > 0);
        Self::new([0, 0, 0], [n - 1, n - 1, n - 1])
    }

    /// The box covering a grid with edges `(nx, ny, nz)`.
    pub fn grid(nx: u32, ny: u32, nz: u32) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Self::new([0, 0, 0], [nx - 1, ny - 1, nz - 1])
    }

    /// Extent along each axis (number of points).
    #[inline]
    pub fn extent(&self) -> [u64; 3] {
        [
            u64::from(self.hi[0] - self.lo[0]) + 1,
            u64::from(self.hi[1] - self.lo[1]) + 1,
            u64::from(self.hi[2] - self.lo[2]) + 1,
        ]
    }

    /// Number of grid points contained.
    #[inline]
    pub fn num_points(&self) -> u64 {
        let e = self.extent();
        e[0] * e[1] * e[2]
    }

    /// The lower corner as a tuple (avoids index-slot access at call sites).
    #[inline]
    pub fn lo3(&self) -> (u32, u32, u32) {
        (self.lo[0], self.lo[1], self.lo[2])
    }

    /// The upper corner as a tuple.
    #[inline]
    pub fn hi3(&self) -> (u32, u32, u32) {
        (self.hi[0], self.hi[1], self.hi[2])
    }

    /// Extent along each axis as `usize` (number of points per axis).
    #[inline]
    pub fn extent3(&self) -> (usize, usize, usize) {
        (
            (self.hi[0] - self.lo[0]) as usize + 1,
            (self.hi[1] - self.lo[1]) as usize + 1,
            (self.hi[2] - self.lo[2]) as usize + 1,
        )
    }

    /// Whether the point is inside (inclusive).
    #[inline]
    pub fn contains_point(&self, x: u32, y: u32, z: u32) -> bool {
        x >= self.lo[0]
            && x <= self.hi[0]
            && y >= self.lo[1]
            && y <= self.hi[1]
            && z >= self.lo[2]
            && z <= self.hi[2]
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &Box3) -> bool {
        (0..3).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Box3) -> Option<Box3> {
        let mut lo = [0u32; 3];
        let mut hi = [0u32; 3];
        for i in 0..3 {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
            if lo[i] > hi[i] {
                return None;
            }
        }
        Some(Box3 { lo, hi })
    }

    /// Smallest box containing both.
    pub fn hull(&self, other: &Box3) -> Box3 {
        let mut lo = [0u32; 3];
        let mut hi = [0u32; 3];
        for i in 0..3 {
            lo[i] = self.lo[i].min(other.lo[i]);
            hi[i] = self.hi[i].max(other.hi[i]);
        }
        Box3 { lo, hi }
    }

    /// Grows the box by `h` points on every side, clamped to `domain`.
    pub fn dilate_clamped(&self, h: u32, domain: &Box3) -> Box3 {
        let mut lo = [0u32; 3];
        let mut hi = [0u32; 3];
        for i in 0..3 {
            lo[i] = self.lo[i].saturating_sub(h).max(domain.lo[i]);
            hi[i] = (self.hi[i].saturating_add(h)).min(domain.hi[i]);
        }
        Box3 { lo, hi }
    }

    /// The box on the atom lattice covering every atom that overlaps `self`.
    pub fn atom_box(&self) -> Box3 {
        let w = ATOM_WIDTH as u32;
        Box3 {
            lo: [self.lo[0] / w, self.lo[1] / w, self.lo[2] / w],
            hi: [self.hi[0] / w, self.hi[1] / w, self.hi[2] / w],
        }
    }

    /// Iterates the atoms overlapping this (grid-space) box.
    pub fn atoms(&self) -> impl Iterator<Item = AtomCoord> {
        let ab = self.atom_box();
        (ab.lo[2]..=ab.hi[2]).flat_map(move |z| {
            (ab.lo[1]..=ab.hi[1])
                .flat_map(move |y| (ab.lo[0]..=ab.hi[0]).map(move |x| AtomCoord::new(x, y, z)))
        })
    }

    /// Iterates all points in the box, x fastest.
    pub fn points(&self) -> impl Iterator<Item = (u32, u32, u32)> {
        let b = *self;
        (b.lo[2]..=b.hi[2]).flat_map(move |z| {
            (b.lo[1]..=b.hi[1]).flat_map(move |y| (b.lo[0]..=b.hi[0]).map(move |x| (x, y, z)))
        })
    }
}

/// Splits a possibly-wrapping request `[lo, lo+len)` on a periodic axis of
/// size `n` into at most two non-wrapping inclusive intervals.
///
/// `lo` may be negative (expressed as an offset below zero) via `i64`.
pub fn split_periodic_interval(lo: i64, len: u32, n: u32) -> Vec<(u32, u32)> {
    assert!(n > 0 && len > 0 && u64::from(len) <= u64::from(n));
    let n64 = i64::from(n);
    let start = lo.rem_euclid(n64) as u32;
    let end = u64::from(start) + u64::from(len) - 1;
    if end < u64::from(n) {
        vec![(start, end as u32)]
    } else {
        vec![(start, n - 1), (0, (end - u64::from(n)) as u32)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cube_counts_points() {
        let b = Box3::cube(8);
        assert_eq!(b.num_points(), 512);
        assert_eq!(b.extent(), [8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "invalid box")]
    fn new_rejects_inverted_bounds() {
        let _ = Box3::new([1, 0, 0], [0, 5, 5]);
    }

    #[test]
    fn intersect_and_containment() {
        let a = Box3::new([0, 0, 0], [9, 9, 9]);
        let b = Box3::new([5, 5, 5], [15, 15, 15]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Box3::new([5, 5, 5], [9, 9, 9]));
        assert!(a.contains_box(&i));
        assert!(b.contains_box(&i));
        let far = Box3::new([20, 20, 20], [30, 30, 30]);
        assert!(a.intersect(&far).is_none());
    }

    #[test]
    fn dilate_clamps_to_domain() {
        let d = Box3::cube(64);
        let b = Box3::new([0, 10, 60], [3, 20, 63]);
        let g = b.dilate_clamped(4, &d);
        assert_eq!(g, Box3::new([0, 6, 56], [7, 24, 63]));
    }

    #[test]
    fn atoms_cover_partial_overlap() {
        let b = Box3::new([6, 0, 0], [9, 7, 7]);
        let atoms: Vec<_> = b.atoms().collect();
        assert_eq!(
            atoms,
            vec![AtomCoord::new(0, 0, 0), AtomCoord::new(1, 0, 0)]
        );
    }

    #[test]
    fn periodic_split_wraps() {
        assert_eq!(split_periodic_interval(5, 3, 8), vec![(5, 7)]);
        assert_eq!(split_periodic_interval(6, 4, 8), vec![(6, 7), (0, 1)]);
        assert_eq!(split_periodic_interval(-2, 3, 8), vec![(6, 7), (0, 0)]);
        assert_eq!(split_periodic_interval(8, 2, 8), vec![(0, 1)]);
    }

    proptest! {
        #[test]
        fn intersect_is_commutative_and_contained(
            alo in prop::array::uniform3(0u32..50), aext in prop::array::uniform3(1u32..20),
            blo in prop::array::uniform3(0u32..50), bext in prop::array::uniform3(1u32..20),
        ) {
            let a = Box3::new(alo, [alo[0]+aext[0], alo[1]+aext[1], alo[2]+aext[2]]);
            let b = Box3::new(blo, [blo[0]+bext[0], blo[1]+bext[1], blo[2]+bext[2]]);
            let ab = a.intersect(&b);
            prop_assert_eq!(ab, b.intersect(&a));
            if let Some(i) = ab {
                prop_assert!(a.contains_box(&i) && b.contains_box(&i));
                // every point of i is in both
                prop_assert!(i.points().take(64).all(|(x,y,z)|
                    a.contains_point(x,y,z) && b.contains_point(x,y,z)));
            }
        }

        #[test]
        fn periodic_split_preserves_length(lo in -64i64..128, len in 1u32..64) {
            let n = 64;
            let parts = split_periodic_interval(lo, len, n);
            let total: u64 = parts.iter().map(|(a, b)| u64::from(b - a) + 1).sum();
            prop_assert_eq!(total, u64::from(len));
            prop_assert!(parts.len() <= 2);
            for (a, b) in parts {
                prop_assert!(a <= b && b < n);
            }
        }

        #[test]
        fn num_points_matches_iteration(
            lo in prop::array::uniform3(0u32..20), ext in prop::array::uniform3(1u32..8),
        ) {
            let b = Box3::new(lo, [lo[0]+ext[0]-1, lo[1]+ext[1]-1, lo[2]+ext[2]-1]);
            prop_assert_eq!(b.points().count() as u64, b.num_points());
        }
    }
}
