//! Database-atom addressing.
//!
//! A time-step is subdivided into cubes of 8³ grid points — the *database
//! atoms* of the JHTDB. An atom is addressed by the coordinates of its
//! lower-left corner on the *atom lattice* (grid coordinates divided by 8),
//! and keyed in storage by the Morton code of that lattice position.

use crate::morton::{decode3, encode3};

/// Edge length of a database atom in grid points.
pub const ATOM_WIDTH: usize = 8;

/// Number of grid points per atom (8³ = 512).
pub const ATOM_POINTS: usize = ATOM_WIDTH * ATOM_WIDTH * ATOM_WIDTH;

/// Position of an atom on the atom lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomCoord {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl AtomCoord {
    /// Creates an atom coordinate.
    #[inline]
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// The atom containing grid point `(gx, gy, gz)`.
    #[inline]
    pub fn containing(gx: u32, gy: u32, gz: u32) -> Self {
        let w = ATOM_WIDTH as u32;
        Self::new(gx / w, gy / w, gz / w)
    }

    /// Morton code of this atom (the storage key within a time-step).
    #[inline]
    pub fn zindex(&self) -> u64 {
        encode3(self.x, self.y, self.z)
    }

    /// Inverse of [`AtomCoord::zindex`].
    #[inline]
    pub fn from_zindex(code: u64) -> Self {
        let (x, y, z) = decode3(code);
        Self::new(x, y, z)
    }

    /// Grid coordinates of this atom's lower-left corner.
    #[inline]
    pub fn grid_origin(&self) -> (u32, u32, u32) {
        let w = ATOM_WIDTH as u32;
        (self.x * w, self.y * w, self.z * w)
    }

    /// Iterates over the grid points covered by this atom, in the
    /// `x`-fastest order used by the storage record layout.
    pub fn grid_points(&self) -> impl Iterator<Item = (u32, u32, u32)> {
        let (ox, oy, oz) = self.grid_origin();
        let w = ATOM_WIDTH as u32;
        (0..w).flat_map(move |dz| {
            (0..w).flat_map(move |dy| (0..w).map(move |dx| (ox + dx, oy + dy, oz + dz)))
        })
    }

    /// Offset of grid point `(gx, gy, gz)` inside this atom's record payload
    /// (x-fastest layout), or `None` if the point is outside the atom.
    pub fn point_offset(&self, gx: u32, gy: u32, gz: u32) -> Option<usize> {
        let (ox, oy, oz) = self.grid_origin();
        let w = ATOM_WIDTH as u32;
        if gx < ox || gy < oy || gz < oz || gx >= ox + w || gy >= oy + w || gz >= oz + w {
            return None;
        }
        let (dx, dy, dz) = (gx - ox, gy - oy, gz - oz);
        Some((dx + w * (dy + w * dz)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn containing_maps_grid_points_to_atoms() {
        assert_eq!(AtomCoord::containing(0, 0, 0), AtomCoord::new(0, 0, 0));
        assert_eq!(AtomCoord::containing(7, 7, 7), AtomCoord::new(0, 0, 0));
        assert_eq!(AtomCoord::containing(8, 0, 0), AtomCoord::new(1, 0, 0));
        assert_eq!(AtomCoord::containing(17, 9, 25), AtomCoord::new(2, 1, 3));
    }

    #[test]
    fn grid_points_covers_exactly_the_atom() {
        let atom = AtomCoord::new(1, 2, 3);
        let pts: Vec<_> = atom.grid_points().collect();
        assert_eq!(pts.len(), ATOM_POINTS);
        assert_eq!(pts[0], (8, 16, 24));
        assert_eq!(*pts.last().unwrap(), (15, 23, 31));
        // every point maps back to the atom and to a unique offset
        let mut seen = vec![false; ATOM_POINTS];
        for (gx, gy, gz) in pts {
            assert_eq!(AtomCoord::containing(gx, gy, gz), atom);
            let off = atom.point_offset(gx, gy, gz).unwrap();
            assert!(!seen[off]);
            seen[off] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn point_offset_rejects_outside_points() {
        let atom = AtomCoord::new(1, 1, 1);
        assert_eq!(atom.point_offset(0, 8, 8), None);
        assert_eq!(atom.point_offset(16, 8, 8), None);
        assert_eq!(atom.point_offset(8, 8, 8), Some(0));
    }

    proptest! {
        #[test]
        fn zindex_roundtrip(x in 0u32..1 << 20, y in 0u32..1 << 20, z in 0u32..1 << 20) {
            let a = AtomCoord::new(x, y, z);
            prop_assert_eq!(AtomCoord::from_zindex(a.zindex()), a);
        }

        #[test]
        fn offsets_are_x_fastest(gx in 0u32..64, gy in 0u32..64, gz in 0u32..64) {
            let atom = AtomCoord::containing(gx, gy, gz);
            let off = atom.point_offset(gx, gy, gz).unwrap();
            let w = ATOM_WIDTH as u32;
            let expect = (gx % w) + w * ((gy % w) + w * (gz % w));
            prop_assert_eq!(off, expect as usize);
        }
    }
}
